"""Setup shim so ``pip install -e .`` works without the ``wheel`` package.

The environment has setuptools but no ``wheel`` module, so the PEP 660
editable-install path (which builds a wheel) fails.  Keeping a ``setup.py``
lets ``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) install the package in editable mode.
"""

from setuptools import setup

setup()
