"""Compressed-sparse-row graph container.

The container is NumPy-backed so the algorithm implementations and the
partition analysis can be vectorized; graphs with a few million edges are
processed in well under a second, which keeps the Tesseract benchmark
harness fast.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np


class CsrGraph:
    """A directed graph in compressed-sparse-row form.

    Args:
        indptr: Row-pointer array of length ``num_vertices + 1``.
        indices: Column (destination) indices of length ``num_edges``.
        weights: Optional per-edge weights (defaults to 1.0).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if self.indptr.ndim != 1 or self.indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if self.indptr.size == 0 or self.indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if self.indptr[-1] != self.indices.size:
            raise ValueError("indptr[-1] must equal the number of edges")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= self.num_vertices
        ):
            raise ValueError("edge destination out of range")
        if weights is None:
            self.weights = np.ones(self.indices.size, dtype=np.float64)
        else:
            self.weights = np.asarray(weights, dtype=np.float64)
            if self.weights.shape != self.indices.shape:
                raise ValueError("weights must have one entry per edge")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[Tuple[int, int]],
        weights: Optional[Iterable[float]] = None,
    ) -> "CsrGraph":
        """Build a graph from an iterable of (source, destination) pairs."""
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            return cls(np.zeros(num_vertices + 1, dtype=np.int64), np.zeros(0, dtype=np.int64))
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be (source, destination) pairs")
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(list(weights), dtype=np.float64)
        return cls.from_arrays(num_vertices, edge_array[:, 0], edge_array[:, 1], weight_array)

    @classmethod
    def from_arrays(
        cls,
        num_vertices: int,
        sources: np.ndarray,
        destinations: np.ndarray,
        weights: Optional[np.ndarray] = None,
    ) -> "CsrGraph":
        """Build a graph from parallel source/destination index arrays.

        This is the fast path used by the synthetic generators; it avoids
        materializing Python tuples for multi-million-edge graphs.
        """
        sources = np.asarray(sources, dtype=np.int64).ravel()
        destinations = np.asarray(destinations, dtype=np.int64).ravel()
        if sources.shape != destinations.shape:
            raise ValueError("sources and destinations must have the same length")
        if sources.size == 0:
            return cls(np.zeros(num_vertices + 1, dtype=np.int64), np.zeros(0, dtype=np.int64))
        if sources.min() < 0 or sources.max() >= num_vertices:
            raise ValueError("edge source out of range")
        if destinations.min() < 0 or destinations.max() >= num_vertices:
            raise ValueError("edge destination out of range")
        order = np.argsort(sources, kind="stable")
        sources = sources[order]
        destinations = destinations[order]
        weight_array = None
        if weights is not None:
            weight_array = np.asarray(weights, dtype=np.float64).ravel()[order]
        counts = np.bincount(sources, minlength=num_vertices)
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, destinations, weight_array)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.indices.size

    def out_degree(self, vertex: Optional[int] = None) -> np.ndarray:
        """Out-degree of one vertex, or the full out-degree array."""
        degrees = np.diff(self.indptr)
        if vertex is None:
            return degrees
        return degrees[vertex]

    def in_degree(self) -> np.ndarray:
        """In-degree array (computed on demand)."""
        return np.bincount(self.indices, minlength=self.num_vertices)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Destination vertices of ``vertex``'s out-edges."""
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} out of range")
        return self.indices[self.indptr[vertex] : self.indptr[vertex + 1]]

    def edge_weights(self, vertex: int) -> np.ndarray:
        """Weights of ``vertex``'s out-edges."""
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} out of range")
        return self.weights[self.indptr[vertex] : self.indptr[vertex + 1]]

    def edge_sources(self) -> np.ndarray:
        """Per-edge source-vertex array (expanded from indptr)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64), np.diff(self.indptr))

    def reverse(self) -> "CsrGraph":
        """Return the graph with every edge direction flipped."""
        sources = self.edge_sources()
        return CsrGraph.from_arrays(self.num_vertices, self.indices, sources, self.weights)

    def memory_footprint_bytes(self, bytes_per_vertex: int = 16, bytes_per_edge: int = 8) -> int:
        """Approximate in-memory size of the graph plus per-vertex state.

        Used by the performance models to size data movement: CSR offsets
        and per-vertex algorithm state (rank, level, component id) cost
        ``bytes_per_vertex``; each adjacency entry costs ``bytes_per_edge``.
        """
        return self.num_vertices * bytes_per_vertex + self.num_edges * bytes_per_edge

    def describe(self) -> str:
        """One-line summary used in benchmark output."""
        avg_degree = self.num_edges / max(1, self.num_vertices)
        return (
            f"{self.num_vertices} vertices, {self.num_edges} edges, "
            f"avg out-degree {avg_degree:.1f}"
        )
