"""Synthetic graph generators.

The Tesseract evaluation uses large real-world graphs (social networks,
web crawls) whose defining structural property is a heavy-tailed degree
distribution.  The R-MAT generator reproduces that skew with controllable
size and average degree; the Erdős–Rényi and grid generators provide
un-skewed and regular counterpoints for tests and ablations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.graph import CsrGraph


def rmat(
    scale: int,
    avg_degree: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: Optional[int] = None,
) -> CsrGraph:
    """Generate an R-MAT graph with ``2**scale`` vertices.

    Args:
        scale: log2 of the number of vertices.
        avg_degree: Average out-degree (total edges = vertices * avg_degree).
        a: Probability mass of the top-left partition quadrant.
        b: Probability mass of the top-right quadrant.
        c: Probability mass of the bottom-left quadrant
            (the remaining mass goes to the bottom-right quadrant).
        seed: RNG seed.

    Returns:
        A directed :class:`CsrGraph` with a heavy-tailed degree distribution.
    """
    if scale <= 0 or scale > 30:
        raise ValueError("scale must be in (0, 30]")
    if avg_degree <= 0:
        raise ValueError("avg_degree must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0:
        raise ValueError("quadrant probabilities must be non-negative and sum to <= 1")
    num_vertices = 1 << scale
    num_edges = num_vertices * avg_degree
    rng = np.random.default_rng(seed)

    sources = np.zeros(num_edges, dtype=np.int64)
    destinations = np.zeros(num_edges, dtype=np.int64)
    # Recursively pick a quadrant for every bit of the vertex ids.
    for bit in range(scale):
        r = rng.random(num_edges)
        src_bit = (r >= a + b).astype(np.int64)
        # Destination bit is 1 in quadrants b and d.
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(np.int64)
        sources = (sources << 1) | src_bit
        destinations = (destinations << 1) | dst_bit

    # Permute vertex ids so the skew is not correlated with the id order.
    permutation = rng.permutation(num_vertices)
    sources = permutation[sources]
    destinations = permutation[destinations]
    return CsrGraph.from_arrays(num_vertices, sources, destinations)


def erdos_renyi(
    num_vertices: int,
    avg_degree: int = 16,
    seed: Optional[int] = None,
) -> CsrGraph:
    """Generate a uniform random directed graph (G(n, m) model)."""
    if num_vertices <= 0 or avg_degree <= 0:
        raise ValueError("num_vertices and avg_degree must be positive")
    rng = np.random.default_rng(seed)
    num_edges = num_vertices * avg_degree
    sources = rng.integers(0, num_vertices, size=num_edges)
    destinations = rng.integers(0, num_vertices, size=num_edges)
    return CsrGraph.from_arrays(num_vertices, sources, destinations)


def regular_grid(side: int) -> CsrGraph:
    """Generate a ``side x side`` 4-neighbour grid (each edge both ways).

    Useful for tests: degrees, components, and shortest paths all have
    closed-form expectations on a grid.
    """
    if side <= 0:
        raise ValueError("side must be positive")
    num_vertices = side * side
    edges = []
    for row in range(side):
        for column in range(side):
            vertex = row * side + column
            if column + 1 < side:
                right = vertex + 1
                edges.append((vertex, right))
                edges.append((right, vertex))
            if row + 1 < side:
                down = vertex + side
                edges.append((vertex, down))
                edges.append((down, vertex))
    return CsrGraph.from_edges(num_vertices, edges)
