"""Graph container, synthetic generators, and the five Tesseract workloads.

Tesseract is evaluated on five graph-processing workloads over large
real-world graphs.  The graphs themselves are not redistributable, so this
subpackage provides synthetic generators with the same structural knobs
(size, average degree, skew) and reference implementations of the five
algorithms, each of which also exposes the *work profile* (iterations,
active vertices, traversed edges) that the performance models consume.
"""

from repro.graph.graph import CsrGraph
from repro.graph.generators import erdos_renyi, regular_grid, rmat
from repro.graph.algorithms import (
    WorkProfile,
    average_teenage_follower,
    breadth_first_search,
    pagerank,
    single_source_shortest_paths,
    weakly_connected_components,
)
from repro.graph.partition import GraphPartition, partition_graph

__all__ = [
    "CsrGraph",
    "GraphPartition",
    "WorkProfile",
    "average_teenage_follower",
    "breadth_first_search",
    "erdos_renyi",
    "pagerank",
    "partition_graph",
    "regular_grid",
    "rmat",
    "single_source_shortest_paths",
    "weakly_connected_components",
]
