"""The five Tesseract graph workloads, with work profiles.

Each algorithm returns both its numerical result and a
:class:`WorkProfile` describing how much work each iteration performed —
the number of active vertices and the number of edges traversed.  The
Tesseract and conventional-baseline performance models consume these
profiles; using the *actual* per-iteration edge counts (rather than
assuming every edge is touched every iteration) is what lets the frontier
algorithms (BFS, SSSP) behave differently from the all-active algorithms
(PageRank), as they do in the paper.

The five workloads follow the Tesseract evaluation:

* PageRank (``pagerank``)
* Breadth-first search (``breadth_first_search``)
* Single-source shortest paths (``single_source_shortest_paths``)
* Weakly connected components (``weakly_connected_components``)
* Average teenage followers (``average_teenage_follower``) — the
  conditional neighbour-counting workload used by Tesseract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.graph import CsrGraph


@dataclass
class WorkProfile:
    """Per-iteration work performed by one algorithm run.

    Attributes:
        name: Algorithm name.
        active_vertices: Vertices processed in each iteration.
        traversed_edges: Edges traversed in each iteration.
        vertex_state_bytes: Bytes of per-vertex state the algorithm keeps.
        ops_per_edge: Arithmetic/compare operations per traversed edge.
    """

    name: str
    active_vertices: List[int] = field(default_factory=list)
    traversed_edges: List[int] = field(default_factory=list)
    vertex_state_bytes: int = 8
    ops_per_edge: int = 4

    @property
    def iterations(self) -> int:
        """Number of iterations executed."""
        return len(self.traversed_edges)

    @property
    def total_edges_traversed(self) -> int:
        """Total edges traversed over the whole run."""
        return int(sum(self.traversed_edges))

    @property
    def total_active_vertices(self) -> int:
        """Total vertex activations over the whole run."""
        return int(sum(self.active_vertices))

    def record(self, active: int, edges: int) -> None:
        """Append one iteration's work."""
        self.active_vertices.append(int(active))
        self.traversed_edges.append(int(edges))

    def scaled(self, factor: float) -> "WorkProfile":
        """Return a copy with every per-iteration count multiplied by ``factor``.

        The performance models are analytical, so a work profile measured on
        a moderate synthetic graph can be scaled up to represent the
        multi-gigabyte graphs of the paper's evaluation without paying the
        host-memory cost of materializing them.  The per-iteration *shape*
        (frontier growth, convergence) is preserved; only the magnitudes
        scale.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        copy = WorkProfile(
            self.name,
            vertex_state_bytes=self.vertex_state_bytes,
            ops_per_edge=self.ops_per_edge,
        )
        for active, edges in zip(self.active_vertices, self.traversed_edges):
            copy.record(int(active * factor), int(edges * factor))
        return copy


def pagerank(
    graph: CsrGraph,
    damping: float = 0.85,
    max_iterations: int = 20,
    tolerance: float = 1e-6,
) -> Tuple[np.ndarray, WorkProfile]:
    """Power-iteration PageRank.

    Returns the rank vector and the work profile.  Every vertex is active
    in every iteration and every edge is traversed, which is what makes
    PageRank the most bandwidth-hungry of the five workloads.
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    n = graph.num_vertices
    profile = WorkProfile("pagerank", vertex_state_bytes=16, ops_per_edge=3)
    if n == 0:
        return np.zeros(0), profile
    ranks = np.full(n, 1.0 / n)
    out_degree = graph.out_degree().astype(np.float64)
    sources = graph.edge_sources()
    dangling = out_degree == 0
    for _ in range(max_iterations):
        contributions = np.where(dangling, 0.0, ranks / np.maximum(out_degree, 1))
        new_ranks = np.bincount(
            graph.indices, weights=contributions[sources], minlength=n
        ).astype(np.float64)
        dangling_mass = ranks[dangling].sum() / n
        new_ranks = (1.0 - damping) / n + damping * (new_ranks + dangling_mass)
        profile.record(active=n, edges=graph.num_edges)
        delta = np.abs(new_ranks - ranks).sum()
        ranks = new_ranks
        if delta < tolerance:
            break
    return ranks, profile


def breadth_first_search(
    graph: CsrGraph, source: Optional[int] = None
) -> Tuple[np.ndarray, WorkProfile]:
    """Level-synchronous BFS from ``source``.

    Returns the level of every vertex (-1 when unreachable) and the work
    profile (one iteration per BFS level; edges traversed are the out-edges
    of the frontier).  When ``source`` is omitted, the highest-out-degree
    vertex is used so that synthetic graphs with isolated low-degree
    vertices still produce a meaningful traversal.
    """
    n = graph.num_vertices
    if source is None:
        source = int(np.argmax(graph.out_degree())) if n else 0
    if not 0 <= source < n:
        raise IndexError("source vertex out of range")
    profile = WorkProfile("bfs", vertex_state_bytes=8, ops_per_edge=2)
    levels = np.full(n, -1, dtype=np.int64)
    levels[source] = 0
    frontier = np.array([source], dtype=np.int64)
    degrees = graph.out_degree()
    level = 0
    while frontier.size:
        edges = int(degrees[frontier].sum())
        profile.record(active=frontier.size, edges=edges)
        # Gather all out-neighbours of the frontier in one vectorized pass.
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        lengths = ends - starts
        if lengths.sum() == 0:
            break
        offsets = np.repeat(starts, lengths) + _ragged_arange(lengths)
        neighbors = np.unique(graph.indices[offsets])
        new_frontier = neighbors[levels[neighbors] == -1]
        level += 1
        levels[new_frontier] = level
        frontier = new_frontier
    return levels, profile


def _ragged_arange(lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(l)`` for every l in ``lengths`` (vectorized)."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    ends = np.cumsum(lengths)
    starts = ends - lengths
    return np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)


def single_source_shortest_paths(
    graph: CsrGraph, source: Optional[int] = None, max_iterations: Optional[int] = None
) -> Tuple[np.ndarray, WorkProfile]:
    """Frontier-based Bellman-Ford shortest paths from ``source``.

    Edge weights come from ``graph.weights``.  Returns the distance array
    (``inf`` when unreachable) and the work profile.  When ``source`` is
    omitted, the highest-out-degree vertex is used.
    """
    n = graph.num_vertices
    if source is None:
        source = int(np.argmax(graph.out_degree())) if n else 0
    if not 0 <= source < n:
        raise IndexError("source vertex out of range")
    if max_iterations is None:
        max_iterations = n
    profile = WorkProfile("sssp", vertex_state_bytes=8, ops_per_edge=4)
    distances = np.full(n, np.inf)
    distances[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    degrees = graph.out_degree()
    iteration = 0
    while frontier.size and iteration < max_iterations:
        edges = int(degrees[frontier].sum())
        profile.record(active=frontier.size, edges=edges)
        if edges == 0:
            break
        # Relax every out-edge of the frontier in one vectorized pass.
        starts = graph.indptr[frontier]
        lengths = degrees[frontier]
        offsets = np.repeat(starts, lengths) + _ragged_arange(lengths)
        targets = graph.indices[offsets]
        candidates = np.repeat(distances[frontier], lengths) + graph.weights[offsets]
        improved_mask = candidates < distances[targets]
        improved_targets = targets[improved_mask]
        np.minimum.at(distances, improved_targets, candidates[improved_mask])
        frontier = np.unique(improved_targets)
        iteration += 1
    return distances, profile


def weakly_connected_components(
    graph: CsrGraph, max_iterations: Optional[int] = None
) -> Tuple[np.ndarray, WorkProfile]:
    """Label-propagation weakly connected components.

    Every vertex starts with its own id as label; each iteration every
    vertex adopts the minimum label among itself and its neighbours (over
    the undirected view of the graph) until no label changes.
    """
    n = graph.num_vertices
    profile = WorkProfile("wcc", vertex_state_bytes=8, ops_per_edge=2)
    labels = np.arange(n, dtype=np.int64)
    if n == 0:
        return labels, profile
    if max_iterations is None:
        max_iterations = n
    sources = graph.edge_sources()
    destinations = graph.indices
    iteration = 0
    changed = True
    while changed and iteration < max_iterations:
        new_labels = labels.copy()
        # Propagate both ways so direction does not matter.
        np.minimum.at(new_labels, destinations, labels[sources])
        np.minimum.at(new_labels, sources, labels[destinations])
        changed = bool(np.any(new_labels != labels))
        profile.record(active=n, edges=2 * graph.num_edges)
        labels = new_labels
        iteration += 1
    return labels, profile


def average_teenage_follower(
    graph: CsrGraph,
    teenage_mask: Optional[np.ndarray] = None,
    teen_fraction: float = 0.2,
    seed: int = 7,
) -> Tuple[float, WorkProfile]:
    """Average-teenage-followers workload from the Tesseract evaluation.

    Counts, for every vertex, how many of its followers (in-edges) belong
    to a designated subset ("teenagers"), then averages the count.  A
    single pass over every edge with a conditional increment — the lowest
    compute intensity of the five workloads.

    Args:
        graph: Input graph (edges point follower -> followee).
        teenage_mask: Boolean per-vertex mask; generated randomly if omitted.
        teen_fraction: Fraction of vertices marked as teenagers when the
            mask is generated.
        seed: RNG seed for mask generation.
    """
    n = graph.num_vertices
    profile = WorkProfile("atf", vertex_state_bytes=8, ops_per_edge=2)
    if n == 0:
        return 0.0, profile
    if teenage_mask is None:
        rng = np.random.default_rng(seed)
        teenage_mask = rng.random(n) < teen_fraction
    teenage_mask = np.asarray(teenage_mask, dtype=bool)
    if teenage_mask.shape != (n,):
        raise ValueError("teenage_mask must have one entry per vertex")
    sources = graph.edge_sources()
    follower_is_teen = teenage_mask[sources]
    counts = np.zeros(n, dtype=np.int64)
    np.add.at(counts, graph.indices, follower_is_teen.astype(np.int64))
    profile.record(active=n, edges=graph.num_edges)
    return float(counts.mean()), profile
