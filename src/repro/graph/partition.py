"""Partitioning graphs across memory vaults.

Tesseract assigns each vertex (and its outgoing edge list and state) to one
vault; a PIM core only touches its own vault's memory directly and uses
remote function calls for edges that cross partitions.  The partition
therefore determines three quantities the performance model needs:

* per-vault vertex and edge counts (load balance),
* the number of *local* edges (destination in the same vault), and
* the number of *remote* edges, split by whether the destination vault is
  in the same cube or a different cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graph.graph import CsrGraph


@dataclass
class GraphPartition:
    """A vertex-to-vault assignment plus the derived traffic statistics.

    Attributes:
        num_vaults: Number of partitions (vaults).
        vaults_per_cube: Vaults per memory cube (for remote-edge locality).
        assignment: Per-vertex vault index.
        vertex_counts: Vertices per vault.
        edge_counts: Out-edges whose source is in each vault.
        local_edges: Edges whose source and destination share a vault.
        intra_cube_remote_edges: Edges crossing vaults within one cube.
        inter_cube_remote_edges: Edges crossing cubes.
    """

    num_vaults: int
    vaults_per_cube: int
    assignment: np.ndarray
    vertex_counts: np.ndarray
    edge_counts: np.ndarray
    local_edges: int
    intra_cube_remote_edges: int
    inter_cube_remote_edges: int

    @property
    def total_edges(self) -> int:
        """Total edges across all vaults."""
        return int(self.edge_counts.sum())

    @property
    def remote_edges(self) -> int:
        """Edges whose destination lives in a different vault."""
        return self.intra_cube_remote_edges + self.inter_cube_remote_edges

    @property
    def remote_fraction(self) -> float:
        """Fraction of edges that require a remote function call."""
        total = self.total_edges
        return self.remote_edges / total if total else 0.0

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean edge load across vaults (1.0 is perfectly balanced)."""
        if self.edge_counts.size == 0 or self.edge_counts.sum() == 0:
            return 1.0
        mean = self.edge_counts.mean()
        return float(self.edge_counts.max() / mean) if mean else 1.0


def partition_graph(
    graph: CsrGraph,
    num_vaults: int,
    vaults_per_cube: int = 32,
    strategy: str = "hash",
    seed: Optional[int] = None,
) -> GraphPartition:
    """Partition ``graph`` over ``num_vaults`` vaults.

    Args:
        graph: The graph to partition.
        num_vaults: Number of vaults (partitions).
        vaults_per_cube: How many consecutive vault indices share a cube.
        strategy: ``"hash"`` (pseudo-random assignment, the Tesseract
            default), ``"range"`` (contiguous vertex ranges, better locality
            for meshes), or ``"degree_balanced"`` (greedy assignment that
            balances out-edge counts).
        seed: RNG seed for the hash strategy.
    """
    if num_vaults <= 0:
        raise ValueError("num_vaults must be positive")
    if vaults_per_cube <= 0:
        raise ValueError("vaults_per_cube must be positive")
    n = graph.num_vertices
    degrees = graph.out_degree()

    if strategy == "hash":
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, num_vaults, size=n, dtype=np.int64)
    elif strategy == "range":
        assignment = np.minimum(
            (np.arange(n, dtype=np.int64) * num_vaults) // max(1, n), num_vaults - 1
        )
    elif strategy == "degree_balanced":
        order = np.argsort(degrees)[::-1]
        loads = np.zeros(num_vaults, dtype=np.int64)
        assignment = np.zeros(n, dtype=np.int64)
        for vertex in order:
            target = int(np.argmin(loads))
            assignment[vertex] = target
            loads[target] += degrees[vertex]
    else:
        raise ValueError(f"unknown partition strategy {strategy!r}")

    sources = graph.edge_sources()
    source_vaults = assignment[sources]
    destination_vaults = assignment[graph.indices]
    local_mask = source_vaults == destination_vaults
    same_cube_mask = (source_vaults // vaults_per_cube) == (
        destination_vaults // vaults_per_cube
    )
    local_edges = int(local_mask.sum())
    intra_cube_remote = int((~local_mask & same_cube_mask).sum())
    inter_cube_remote = int((~local_mask & ~same_cube_mask).sum())

    vertex_counts = np.bincount(assignment, minlength=num_vaults)
    edge_counts = np.bincount(source_vaults, minlength=num_vaults)

    return GraphPartition(
        num_vaults=num_vaults,
        vaults_per_cube=vaults_per_cube,
        assignment=assignment,
        vertex_counts=vertex_counts,
        edge_counts=edge_counts,
        local_edges=local_edges,
        intra_cube_remote_edges=intra_cube_remote,
        inter_cube_remote_edges=inter_cube_remote,
    )
