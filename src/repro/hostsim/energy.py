"""Energy parameters of the host system (cores, hierarchy, interconnect).

These per-byte and per-operation energies calibrate the processor-centric
cost of computing on data that lives in DRAM: each byte that an application
touches is charged for the levels of the hierarchy it traverses, plus the
core energy of the instructions that operate on it.  This is the accounting
behind the paper's "62.7% of system energy is data movement" observation and
behind the baseline side of every PIM comparison.

Default values are first-order figures for a ~14 nm mobile/desktop-class SoC
drawn from published architecture-survey numbers (register/ALU operations
cost on the order of a pJ, SRAM accesses tens of pJ per line, off-chip DRAM
accesses on the order of ten pJ per bit).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HostEnergyModel:
    """Per-event energies for host-side execution.

    Attributes:
        core_op_energy_j: Energy of one simple ALU micro-op (scalar).
        simd_op_energy_j: Energy of one 256-bit SIMD micro-op.
        l1_access_energy_j: Energy per 64 B L1 access.
        l2_access_energy_j: Energy per 64 B L2 access.
        llc_access_energy_j: Energy per 64 B LLC access.
        interconnect_energy_per_byte_j: On-chip interconnect (core<->LLC<->MC)
            energy per byte moved.
        dram_energy_per_byte_j: Off-chip DRAM energy per byte moved on the
            channel (activation share + burst + I/O), kept here so host-only
            models do not need a full DRAM device.
        static_power_w: Combined static/leakage power of the host chip, used
            by workload models that integrate power over execution time.
    """

    core_op_energy_j: float = 1.5e-12
    simd_op_energy_j: float = 9.0e-12
    l1_access_energy_j: float = 5.0e-12
    l2_access_energy_j: float = 2.0e-11
    llc_access_energy_j: float = 6.0e-11
    interconnect_energy_per_byte_j: float = 3.0e-12
    dram_energy_per_byte_j: float = 1.6e-10
    static_power_w: float = 1.5

    def hierarchy_energy_per_byte_j(self, *, reaches_memory: bool = True) -> float:
        """Average energy to move one byte from DRAM to the core registers.

        The byte is charged one L1, one L2, and one LLC line-access share,
        the on-chip interconnect, and (when ``reaches_memory``) the off-chip
        DRAM cost.  Cache accesses are per 64 B line, so the per-byte share
        divides by the line size.
        """
        per_byte = (
            self.l1_access_energy_j / 64.0
            + self.l2_access_energy_j / 64.0
            + self.llc_access_energy_j / 64.0
            + self.interconnect_energy_per_byte_j
        )
        if reaches_memory:
            per_byte += self.dram_energy_per_byte_j
        return per_byte

    def data_movement_energy_j(self, bytes_from_memory: int, bytes_on_chip_only: int = 0) -> float:
        """Total data-movement energy for a phase of execution.

        Args:
            bytes_from_memory: Bytes that had to come from (or go to) DRAM.
            bytes_on_chip_only: Bytes served entirely by the on-chip caches.
        """
        if bytes_from_memory < 0 or bytes_on_chip_only < 0:
            raise ValueError("byte counts must be non-negative")
        return bytes_from_memory * self.hierarchy_energy_per_byte_j(
            reaches_memory=True
        ) + bytes_on_chip_only * self.hierarchy_energy_per_byte_j(reaches_memory=False)

    def compute_energy_j(self, scalar_ops: int = 0, simd_ops: int = 0) -> float:
        """Core energy for a number of scalar and SIMD micro-ops."""
        if scalar_ops < 0 or simd_ops < 0:
            raise ValueError("operation counts must be non-negative")
        return scalar_ops * self.core_op_energy_j + simd_ops * self.simd_op_energy_j

    @classmethod
    def desktop(cls) -> "HostEnergyModel":
        """Skylake-class desktop parameters (the Ambit baseline system)."""
        return cls()

    @classmethod
    def mobile(cls) -> "HostEnergyModel":
        """Mobile-SoC parameters (the consumer-workload study's systems).

        Mobile SoCs have smaller caches and a lower-power memory interface
        (LPDDR), but also far lower-power cores, so data movement is a
        *larger* fraction of total energy than on desktops.
        """
        return cls(
            core_op_energy_j=0.8e-12,
            simd_op_energy_j=4.0e-12,
            l1_access_energy_j=3.0e-12,
            l2_access_energy_j=1.5e-11,
            llc_access_energy_j=4.0e-11,
            interconnect_energy_per_byte_j=2.5e-12,
            dram_energy_per_byte_j=1.2e-10,
            static_power_w=0.25,
        )
