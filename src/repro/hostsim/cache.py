"""Functional set-associative caches and a multi-level hierarchy.

The functional model is used by tests and by the small end-to-end examples;
the analytical paths of the CPU model only need the per-level latencies and
energies, which live in :class:`CacheConfig`.

The cache model captures the behaviour the paper's motivation rests on:
much of the data brought into the caches by data-intensive workloads is
never reused, so the energy of moving it through the hierarchy is wasted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of one cache level.

    Attributes:
        name: Level name ("L1", "L2", "LLC", ...).
        size_bytes: Total capacity.
        associativity: Ways per set.
        line_size_bytes: Cache line size.
        hit_latency_ns: Latency of a hit at this level.
        energy_per_access_j: Dynamic energy of one access (tag + data).
    """

    name: str
    size_bytes: int
    associativity: int
    line_size_bytes: int = 64
    hit_latency_ns: float = 1.0
    energy_per_access_j: float = 1.0e-11

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.associativity <= 0 or self.line_size_bytes <= 0:
            raise ValueError("cache sizes and associativity must be positive")
        if self.size_bytes % (self.associativity * self.line_size_bytes) != 0:
            raise ValueError("size must be divisible by associativity * line size")

    @property
    def num_sets(self) -> int:
        """Number of sets."""
        return self.size_bytes // (self.associativity * self.line_size_bytes)

    @classmethod
    def skylake_l1(cls) -> "CacheConfig":
        """32 KiB, 8-way L1 data cache."""
        return cls("L1", 32 * 1024, 8, hit_latency_ns=1.0, energy_per_access_j=0.5e-11)

    @classmethod
    def skylake_l2(cls) -> "CacheConfig":
        """256 KiB, 4-way private L2."""
        return cls("L2", 256 * 1024, 4, hit_latency_ns=3.5, energy_per_access_j=2.0e-11)

    @classmethod
    def skylake_llc(cls) -> "CacheConfig":
        """8 MiB, 16-way shared last-level cache."""
        return cls("LLC", 8 * 1024 * 1024, 16, hit_latency_ns=12.0, energy_per_access_j=6.0e-11)


@dataclass
class CacheLevelStats:
    """Hit/miss counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        """Total accesses at this level."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0 when never accessed)."""
        return self.hits / self.accesses if self.accesses else 0.0


class Cache:
    """One set-associative, write-back, write-allocate cache with LRU."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheLevelStats()
        # sets[set_index] maps tag -> dirty flag, ordered by recency (LRU first).
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.num_sets)]

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address // self.config.line_size_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access ``address``; returns True on hit.

        On a miss the line is allocated (write-allocate); the caller is
        responsible for modelling the fill from the next level.  Evictions
        of dirty lines increment the ``writebacks`` counter.
        """
        set_index, tag = self._locate(address)
        cache_set = self._sets[set_index]
        if tag in cache_set:
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(cache_set) >= self.config.associativity:
            _, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if dirty:
                self.stats.writebacks += 1
        cache_set[tag] = is_write
        return False

    def contains(self, address: int) -> bool:
        """True when the line holding ``address`` is currently resident."""
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines dropped."""
        dirty = 0
        for cache_set in self._sets:
            dirty += sum(1 for flag in cache_set.values() if flag)
            cache_set.clear()
        return dirty

    @property
    def resident_lines(self) -> int:
        """Number of lines currently cached."""
        return sum(len(s) for s in self._sets)


class CacheHierarchy:
    """A chain of cache levels backed by main memory.

    Args:
        levels: Cache configurations ordered from closest (L1) to farthest.
        memory_latency_ns: Latency of a fill from main memory.
        memory_energy_per_access_j: Energy of one 64 B main-memory access
            (activation share + burst + I/O), used for the functional path.
    """

    def __init__(
        self,
        levels: Optional[List[CacheConfig]] = None,
        memory_latency_ns: float = 80.0,
        memory_energy_per_access_j: float = 1.5e-8,
    ) -> None:
        if levels is None:
            levels = [
                CacheConfig.skylake_l1(),
                CacheConfig.skylake_l2(),
                CacheConfig.skylake_llc(),
            ]
        if not levels:
            raise ValueError("at least one cache level is required")
        self.caches = [Cache(config) for config in levels]
        self.memory_latency_ns = memory_latency_ns
        self.memory_energy_per_access_j = memory_energy_per_access_j
        self.memory_accesses = 0
        self.total_latency_ns = 0.0
        self.total_energy_j = 0.0

    def access(self, address: int, is_write: bool = False) -> str:
        """Access the hierarchy; returns the name of the level that hit.

        Returns ``"MEM"`` when every level missed.  Latency and energy of
        the walk are accumulated on the hierarchy object.
        """
        latency = 0.0
        energy = 0.0
        hit_level = "MEM"
        for cache in self.caches:
            latency += cache.config.hit_latency_ns
            energy += cache.config.energy_per_access_j
            if cache.access(address, is_write):
                hit_level = cache.config.name
                break
        else:
            latency += self.memory_latency_ns
            energy += self.memory_energy_per_access_j
            self.memory_accesses += 1
        self.total_latency_ns += latency
        self.total_energy_j += energy
        return hit_level

    def stats_by_level(self) -> Dict[str, CacheLevelStats]:
        """Return per-level statistics keyed by level name."""
        return {cache.config.name: cache.stats for cache in self.caches}

    def flush(self) -> None:
        """Invalidate every level."""
        for cache in self.caches:
            cache.flush()
