"""Host-processor baselines: caches, a Skylake-like CPU, and a GPU model.

The paper compares every PIM mechanism against processor-centric execution
on a conventional system.  This subpackage provides those baselines:

* :mod:`repro.hostsim.cache` — functional set-associative caches and a
  cache hierarchy with latency/energy accounting,
* :mod:`repro.hostsim.cpu` — an analytical multi-core CPU model for bulk
  (streaming) and irregular (random-access) workloads,
* :mod:`repro.hostsim.gpu` — an analytical discrete-GPU throughput model
  (the GTX-745-class comparison point used by Ambit),
* :mod:`repro.hostsim.energy` — per-access/per-byte energy parameters of
  the on-chip hierarchy and the off-chip channel.
"""

from repro.hostsim.cache import Cache, CacheConfig, CacheHierarchy, CacheLevelStats
from repro.hostsim.cpu import CpuParameters, HostCpu
from repro.hostsim.energy import HostEnergyModel
from repro.hostsim.gpu import GpuParameters, HostGpu

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CacheLevelStats",
    "CpuParameters",
    "HostCpu",
    "HostEnergyModel",
    "GpuParameters",
    "HostGpu",
]
