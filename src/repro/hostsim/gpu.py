"""Analytical model of a discrete GPU baseline.

The Ambit comparison point is an NVIDIA GTX 745: a small Maxwell-class card
whose bulk-bitwise throughput, like the CPU's, is bound by its memory
bandwidth (28.8 GB/s on a 128-bit DDR3 interface).  GPUs avoid the
read-for-ownership traffic of write-allocate CPU caches (stores stream
directly to memory), so their traffic factor is one less than the CPU's for
two-input operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.metrics import OperationMetrics

#: Bytes moved on the GPU memory interface per byte of result.
GPU_TRAFFIC_FACTORS: Dict[str, float] = {
    "not": 2.0,   # read A, write C
    "and": 3.0,   # read A, read B, write C
    "or": 3.0,
    "nand": 3.0,
    "nor": 3.0,
    "xor": 3.0,
    "xnor": 3.0,
    "copy": 2.0,
    "fill": 1.0,
}


@dataclass(frozen=True)
class GpuParameters:
    """GPU configuration.

    Attributes:
        name: Label for reports.
        memory_bandwidth_bytes_per_s: Peak DRAM bandwidth of the card.
        streaming_efficiency: Sustained fraction of peak for bulk kernels.
        sm_count: Streaming multiprocessors.
        frequency_ghz: SM clock.
        int_ops_per_cycle_per_sm: 32-bit integer ops per cycle per SM.
        energy_per_byte_moved_j: DRAM + on-card interconnect energy per byte.
        energy_per_op_j: Energy of one 32-bit ALU op.
        board_static_power_w: Idle/static power of the card.
    """

    name: str = "gtx745"
    memory_bandwidth_bytes_per_s: float = 28.8e9
    streaming_efficiency: float = 0.65
    sm_count: int = 3
    frequency_ghz: float = 1.03
    int_ops_per_cycle_per_sm: int = 128
    energy_per_byte_moved_j: float = 1.1e-10
    energy_per_op_j: float = 1.0e-12
    board_static_power_w: float = 10.0

    @classmethod
    def gtx745(cls) -> "GpuParameters":
        """The GTX 745 card used as the Ambit GPU comparison point."""
        return cls()


class HostGpu:
    """Analytical GPU execution model for bulk operations."""

    def __init__(self, parameters: Optional[GpuParameters] = None) -> None:
        self.parameters = parameters or GpuParameters.gtx745()

    def effective_bandwidth_bytes_per_s(self) -> float:
        """Sustained memory bandwidth for streaming kernels."""
        return (
            self.parameters.memory_bandwidth_bytes_per_s
            * self.parameters.streaming_efficiency
        )

    def compute_throughput_bytes_per_s(self, op: str) -> float:
        """Rate at which the SMs can produce result bytes for ``op``."""
        p = self.parameters
        # One 32-bit op produces 4 result bytes for single-input ops; two-input
        # ops need roughly two ops (two loads folded) per 4 bytes.
        ops_per_4bytes = 1 if op in ("not", "fill", "copy") else 2
        ops_per_s = p.sm_count * p.frequency_ghz * 1e9 * p.int_ops_per_cycle_per_sm
        return ops_per_s / ops_per_4bytes * 4

    def bulk_bitwise(self, op: str, num_bytes: int) -> OperationMetrics:
        """Execute a bulk bitwise operation producing ``num_bytes`` of result."""
        if op not in GPU_TRAFFIC_FACTORS:
            raise ValueError(f"unknown bulk operation {op!r}")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        traffic = GPU_TRAFFIC_FACTORS[op] * num_bytes
        bandwidth_time_s = traffic / self.effective_bandwidth_bytes_per_s()
        compute_time_s = num_bytes / self.compute_throughput_bytes_per_s(op)
        latency_s = max(bandwidth_time_s, compute_time_s)
        energy = (
            traffic * self.parameters.energy_per_byte_moved_j
            + (num_bytes // 4) * self.parameters.energy_per_op_j
            + self.parameters.board_static_power_w * latency_s
        )
        return OperationMetrics(
            name=f"gpu_{op}",
            latency_ns=latency_s * 1e9,
            energy_j=energy,
            bytes_moved_on_channel=int(traffic),
            bytes_produced=num_bytes,
            notes=self.parameters.name,
        )
