"""Analytical model of a conventional multi-core host CPU.

For the bulk operations the paper studies (bulk bitwise logic, bulk copy,
bulk initialization, streaming scans), a modern CPU is memory-bandwidth
bound: the SIMD units can consume data far faster than the memory channel
can deliver it.  The model therefore computes, for each operation, both the
compute-bound time (SIMD throughput) and the bandwidth-bound time (channel
traffic divided by effective bandwidth) and takes the maximum — a standard
roofline treatment.

The crucial modelling choice, taken directly from the Ambit evaluation, is
the *traffic factor*: a bulk ``C = A op B`` on a write-allocate cache
hierarchy moves four bytes on the channel for every result byte (read A,
read B, read-for-ownership of C, write-back C), and a bulk ``B = not A``
moves three.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analysis.metrics import OperationMetrics
from repro.dram.device import DramDevice
from repro.hostsim.energy import HostEnergyModel

#: Channel traffic (bytes moved per byte of result) for each bulk operation
#: class on a write-allocate, write-back cache hierarchy.
TRAFFIC_FACTORS: Dict[str, float] = {
    "not": 3.0,      # read A, RFO C, write back C
    "and": 4.0,      # read A, read B, RFO C, write back C
    "or": 4.0,
    "nand": 4.0,
    "nor": 4.0,
    "xor": 4.0,
    "xnor": 4.0,
    "copy": 3.0,     # read src, RFO dst, write back dst
    "fill": 2.0,     # RFO dst, write back dst
}

#: SIMD micro-ops needed per 32 B of result for each operation (AVX2 lanes).
SIMD_OPS_PER_CHUNK: Dict[str, int] = {
    "not": 2,        # load + xor-with-ones / store folded into load/store ops
    "and": 3,
    "or": 3,
    "nand": 4,
    "nor": 4,
    "xor": 3,
    "xnor": 4,
    "copy": 2,
    "fill": 1,
}


@dataclass(frozen=True)
class CpuParameters:
    """Host CPU configuration.

    Attributes:
        name: Label for reports.
        cores: Physical core count.
        frequency_ghz: Core clock.
        simd_width_bytes: Vector register width (32 for AVX2).
        ipc_simd: Sustained SIMD micro-ops per cycle per core.
        streaming_efficiency: Fraction of peak DRAM bandwidth a mixed
            read/RFO/write-back stream sustains (bus turnarounds, refresh,
            imperfect prefetch).  Measured values for bulk bitwise loops on
            desktop parts are 0.6–0.75 of peak.
        random_access_bytes_used: Useful bytes per 64 B line for irregular
            access patterns (graph workloads use 8–16 of the 64).
    """

    name: str = "skylake-4core"
    cores: int = 4
    frequency_ghz: float = 3.5
    simd_width_bytes: int = 32
    ipc_simd: float = 2.0
    streaming_efficiency: float = 0.70
    random_access_bytes_used: int = 16

    @classmethod
    def skylake(cls) -> "CpuParameters":
        """The 4-core Skylake configuration used as the Ambit baseline."""
        return cls()

    @classmethod
    def server_32core(cls) -> "CpuParameters":
        """A 32-core out-of-order server, the Tesseract baseline host."""
        return cls(
            name="server-32core",
            cores=32,
            frequency_ghz=2.6,
            simd_width_bytes=32,
            ipc_simd=2.0,
            streaming_efficiency=0.75,
            random_access_bytes_used=16,
        )


class HostCpu:
    """Analytical host-CPU execution model bound to a DRAM device.

    Args:
        parameters: CPU configuration.
        dram: The memory system the CPU is attached to (defaults to the
            dual-channel DDR3-1600 device).
        energy_model: Host-side energy parameters.
    """

    def __init__(
        self,
        parameters: Optional[CpuParameters] = None,
        dram: Optional[DramDevice] = None,
        energy_model: Optional[HostEnergyModel] = None,
    ) -> None:
        self.parameters = parameters or CpuParameters.skylake()
        self.dram = dram or DramDevice.ddr3()
        self.energy_model = energy_model or HostEnergyModel.desktop()

    # ------------------------------------------------------------------
    # Bandwidth / compute ceilings
    # ------------------------------------------------------------------
    def effective_bandwidth_bytes_per_s(self) -> float:
        """Sustained streaming bandwidth of the memory system."""
        return (
            self.dram.peak_bandwidth_bytes_per_s()
            * self.parameters.streaming_efficiency
        )

    def simd_throughput_bytes_per_s(self, op: str) -> float:
        """Peak rate at which the cores can produce result bytes for ``op``."""
        ops_per_chunk = SIMD_OPS_PER_CHUNK[op]
        p = self.parameters
        chunks_per_s = (
            p.cores * p.frequency_ghz * 1e9 * p.ipc_simd / ops_per_chunk
        )
        return chunks_per_s * p.simd_width_bytes

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------
    def bulk_bitwise(self, op: str, num_bytes: int) -> OperationMetrics:
        """Execute a bulk bitwise operation producing ``num_bytes`` of result.

        Args:
            op: One of ``not, and, or, nand, nor, xor, xnor``.
            num_bytes: Size of the result vector in bytes.
        """
        if op not in TRAFFIC_FACTORS:
            raise ValueError(f"unknown bulk operation {op!r}")
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        traffic = TRAFFIC_FACTORS[op] * num_bytes
        bandwidth_time_s = traffic / self.effective_bandwidth_bytes_per_s()
        compute_time_s = num_bytes / self.simd_throughput_bytes_per_s(op)
        latency_s = max(bandwidth_time_s, compute_time_s)

        simd_ops = (num_bytes // self.parameters.simd_width_bytes + 1) * SIMD_OPS_PER_CHUNK[op]
        energy = (
            self.energy_model.data_movement_energy_j(int(traffic))
            + self.energy_model.compute_energy_j(simd_ops=simd_ops)
            + self.energy_model.static_power_w * latency_s
        )
        return OperationMetrics(
            name=f"cpu_{op}",
            latency_ns=latency_s * 1e9,
            energy_j=energy,
            bytes_moved_on_channel=int(traffic),
            bytes_produced=num_bytes,
            notes=self.parameters.name,
        )

    def bulk_copy(self, num_bytes: int) -> OperationMetrics:
        """memcpy of ``num_bytes`` through the cache hierarchy."""
        return self._bulk_move("copy", num_bytes)

    def bulk_fill(self, num_bytes: int) -> OperationMetrics:
        """memset of ``num_bytes`` through the cache hierarchy."""
        return self._bulk_move("fill", num_bytes)

    def _bulk_move(self, op: str, num_bytes: int) -> OperationMetrics:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        traffic = TRAFFIC_FACTORS[op] * num_bytes
        bandwidth_time_s = traffic / self.effective_bandwidth_bytes_per_s()
        compute_time_s = num_bytes / self.simd_throughput_bytes_per_s(op)
        latency_s = max(bandwidth_time_s, compute_time_s)
        simd_ops = (num_bytes // self.parameters.simd_width_bytes + 1) * SIMD_OPS_PER_CHUNK[op]
        energy = (
            self.energy_model.data_movement_energy_j(int(traffic))
            + self.energy_model.compute_energy_j(simd_ops=simd_ops)
            + self.energy_model.static_power_w * latency_s
        )
        return OperationMetrics(
            name=f"cpu_{op}",
            latency_ns=latency_s * 1e9,
            energy_j=energy,
            bytes_moved_on_channel=int(traffic),
            bytes_produced=num_bytes,
            notes=self.parameters.name,
        )

    # ------------------------------------------------------------------
    # Irregular (pointer-chasing / graph) access patterns
    # ------------------------------------------------------------------
    def random_access_workload(
        self,
        num_accesses: int,
        compute_ops_per_access: int = 4,
        bytes_per_access: int = 64,
    ) -> OperationMetrics:
        """Latency/energy of a workload dominated by random memory accesses.

        Used as the conventional-system cost model for graph analytics: each
        edge traversal touches a cache line essentially at random, uses only
        ``random_access_bytes_used`` bytes of it, and performs a handful of
        ALU operations.
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        memory_time_ns = self.dram.random_access_time_ns(num_accesses, bytes_per_access)
        p = self.parameters
        compute_time_ns = (
            num_accesses * compute_ops_per_access / (p.cores * p.frequency_ghz * 1e9 * 2.0)
        ) * 1e9
        latency_ns = max(memory_time_ns, compute_time_ns)
        traffic = num_accesses * bytes_per_access
        energy = (
            self.energy_model.data_movement_energy_j(traffic)
            + self.energy_model.compute_energy_j(scalar_ops=num_accesses * compute_ops_per_access)
            + self.energy_model.static_power_w * latency_ns * 1e-9
        )
        return OperationMetrics(
            name="cpu_random_access",
            latency_ns=latency_ns,
            energy_j=energy,
            bytes_moved_on_channel=traffic,
            bytes_produced=num_accesses * p.random_access_bytes_used,
            notes=self.parameters.name,
        )
