"""Canonical structural keys for predicate sub-chains.

Common-subexpression elimination works on *structure*: two sub-chains may
be shared when they compute the same bitmap from the same source planes.
This module assigns every sub-chain a canonical, hashable key such that
structurally equal chains — up to the algebraic identities the bulk
bitwise op set guarantees — collide:

* **Commutative reordering** — AND/OR/XOR (and their complements) are
  commutative and associative over bitmaps, so operand keys are sorted
  before keying; ``a AND b`` and ``b AND a`` share.  The optimizer also
  lowers each conjunction's predicates in canonical-key order, so two
  requests listing the same predicates in different order build the same
  left-deep AND spine key by key.
* **Fused-NOT normalization** — a double complement is the identity:
  ``NOT (NOT x)`` keys as ``x``, so a chain reaching through a fused
  complement shares with the chain that never complemented at all.
* **Value-set normalization** — a predicate ``col IN values`` keys on the
  *sorted* value tuple: the OR of value bitmaps is order-insensitive.
  The multiset is preserved (no deduplication), so the unoptimized cost
  model of a single request is untouched by keying alone.

Keys are plain nested tuples (hashable, comparable by ``repr``), scoped
by the identity of the bitmap source so two different indexes never
share a chain.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

#: A canonical sub-chain key: a nested tuple of op names, source ids,
#: column names and value tuples.  Only equality/hashing semantics
#: matter; the structure is an implementation detail.
Key = Tuple[Any, ...]

#: Ops whose operand order never changes the result bitmap.
COMMUTATIVE_OPS = frozenset({"and", "or", "xor", "nand", "nor", "xnor"})


def predicate_key(index: object, column: str, values: Sequence[int]) -> Key:
    """Canonical key of one ``col IN values`` predicate sub-chain.

    Scoped by the bitmap source's identity (two indexes never share),
    with the value multiset sorted (OR is order-insensitive).
    """
    return ("in", id(index), column, tuple(sorted(values)))


def canonical_key(op: str, operands: Sequence[Key]) -> Key:
    """Canonical key of one op over already-keyed operands.

    Sorts operand keys for commutative ops and collapses the fused
    double complement ``NOT (NOT x)`` to ``x``.
    """
    if op == "not":
        (operand,) = operands
        if len(operand) == 2 and operand[0] == "not":
            inner: Key = operand[1]
            return inner
        return ("not", operand)
    if op in COMMUTATIVE_OPS:
        ordered: Tuple[Key, ...] = tuple(sorted(operands, key=repr))
    else:
        ordered = tuple(operands)
    return (op,) + ordered


def sort_token(key: Key) -> str:
    """Deterministic total-order token for heterogeneous keys."""
    return repr(key)
