"""Batch plan optimizer: cross-request CSE and sub-chain splitting.

The passes here rewrite one batch's lowered plans between the
:class:`~repro.service.planner.BatchPlanner` closing the batch and the
:class:`~repro.service.executor.BatchExecutor` dispatching it.  Enable
them with ``optimize=True`` (or an explicit :class:`OptimizerConfig`) on
:class:`~repro.service.frontend.ServiceFrontend`,
:class:`~repro.cluster.frontend.ClusterFrontend`, or the
:class:`~repro.api.session.PimSession` constructors.
"""

from repro.optimizer.canonical import canonical_key, predicate_key
from repro.optimizer.passes import BatchOptimizer, OptimizerConfig

__all__ = [
    "BatchOptimizer",
    "OptimizerConfig",
    "canonical_key",
    "predicate_key",
]
