"""The batch plan optimizer: CSE and sub-chain splitting over one batch.

:class:`BatchOptimizer` sits between the
:class:`~repro.service.planner.BatchPlanner` closing a batch and the
:class:`~repro.service.executor.BatchExecutor` dispatching it.  Instead of
lowering each :class:`~repro.service.requests.BitmapConjunctionRequest`
into its own isolated chain, the optimizer lowers the whole batch into one
shared step DAG:

* **Cross-request CSE** — every predicate sub-chain (``col IN values``)
  is keyed canonically (:mod:`repro.optimizer.canonical`: sorted value
  multisets, commutative AND reordering, fused-NOT normalization); a
  sub-chain another request of the batch already lowered is *consumed*
  rather than re-emitted, and the consumer rides the producer's result
  vector.  In unsplit mode the left-deep AND spine is CSE'd too (the
  predicates are lowered in canonical order, so equal conjunction
  prefixes share step for step — a fully duplicate request emits zero
  device ops).
* **Sub-chain splitting** — a conjunction's predicate sub-chains are
  mutually independent, so in split mode each lands on its own bank
  offset, chosen cheapest-horizon-first from the executor's persistent
  :class:`~repro.service.lanes.LaneSchedule`; the request overlaps with
  *itself* across lanes.  The cross-predicate AND then happens host-side
  in the group's finalize, charged as a pairwise merge tree
  (``ceil(log2(fan_in))`` levels of ``merge_ns_per_op``) — the identical
  model the cluster gather path charges.
* **Cost ledger** — every request's charged ops are its *owned* steps
  plus its host joins; the difference to the unoptimized plan total is
  recorded as ``ops_eliminated`` (and every shared sub-chain as
  ``shared_subchains``).  Under ``sanitize=True`` the whole batch DAG is
  certified by :func:`repro.verify.plan_lint.lint_optimized_batch`
  before a single step executes.

Emitted steps carry ``after`` dependencies (batch-local producer
indices), so the executor's schedule keeps cross-lane consumers behind
their producers' finish times — causality the schedule race detector
then independently replays.

The optimizer never changes *what* is computed: AND/OR are commutative
and associative over bitmaps, sharing only reuses an identical result
vector, and splitting only moves sub-chains between lanes.  Property
tests pin bit-exactness against unoptimized lowering on both tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.analysis.metrics import OperationMetrics
from repro.api.plans import lower_predicate_steps
from repro.cache.result_cache import ResultCache
from repro.optimizer.canonical import Key, canonical_key, predicate_key, sort_token
from repro.service.planner import LoweredGroup
from repro.service.requests import (
    BitmapConjunctionRequest,
    BulkOpRequest,
    QueuedRequest,
    RequestResult,
    ServiceRequest,
)
from repro.verify.plan_lint import (
    ChainStep,
    OptimizedBatchReport,
    OptimizedRequestView,
    lint_optimized_batch,
)


@dataclass(frozen=True)
class OptimizerConfig:
    """Knobs of the batch plan optimizer.

    Attributes:
        cse: Share identical predicate sub-chains (and, in unsplit mode,
            equal AND prefixes) across the batch's requests.
        split_subchains: Spread one conjunction's independent sub-chains
            across bank lanes and join them host-side, instead of
            pinning the whole chain to one bank offset.
        max_split_lanes: Most distinct bank offsets one request may fan
            its sub-chains across (further sub-chains reuse the
            cheapest of those offsets).
        merge_ns_per_op: Host cost per level of the split join's pairwise
            merge tree (the cluster gather path's model and default).
    """

    cse: bool = True
    split_subchains: bool = True
    max_split_lanes: int = 4
    merge_ns_per_op: float = 250.0

    def __post_init__(self) -> None:
        if self.max_split_lanes < 1:
            raise ValueError("max_split_lanes must be at least 1")
        if self.merge_ns_per_op < 0.0:
            raise ValueError("merge_ns_per_op must be non-negative")


@dataclass
class _Node:
    """One materialized sub-chain result in the batch DAG.

    Attributes:
        key: Canonical structural key (the CSE cache key).
        vector: The vector holding the sub-chain's result bitmap.
        cone: Batch-step indices of every step producing the result
            (sorted; empty when the vector is a source bitmap).
        producer: The step producing ``vector`` (None for a source).
    """

    key: Key
    vector: BulkBitVector
    cone: Tuple[int, ...]
    producer: Optional[int]


class BatchOptimizer:
    """Lowers one batch's conjunctions into a shared, lane-spread DAG.

    One optimizer instance lives on a :class:`BatchPlanner`; its CSE
    cache and lane-load tracker are *batch-scoped* (reset by
    :meth:`open_batch`), so sharing never reaches across dispatches —
    a result vector only exists while its batch executes.

    Args:
        config: Optimizer knobs (all passes on by default).
        result_cache: Cross-batch :class:`~repro.cache.ResultCache` to
            consult before emitting a sub-chain and to fill (epoch-guarded,
            after the batch executes) with finished result bitmaps.  None
            keeps the optimizer batch-scoped, as in PR 7.
    """

    def __init__(
        self,
        config: Optional[OptimizerConfig] = None,
        result_cache: Optional[ResultCache] = None,
    ) -> None:
        self.config = config or OptimizerConfig()
        self.result_cache = result_cache
        self._executor: Any = None
        self._cache: Dict[Key, _Node] = {}
        # Dependency columns per CSE cache key: key -> (id(index), columns).
        # A write lowered mid-batch invalidates the overlapping entries
        # (see invalidate_writes) so no later request of the same batch
        # rides a vector materialized from pre-write planes.
        self._node_columns: Dict[Key, Tuple[int, FrozenSet[str]]] = {}
        self._steps: Dict[int, ChainStep] = {}
        self._views: List[OptimizedRequestView] = []
        self._assigned: Dict[int, float] = {}
        # Pending cache fills of the open batch: (key, index, dep columns,
        # result vector, packed bytes, plan-time write epoch, num_rows).
        self._fills: List[Tuple[Key, Any, Tuple[str, ...], BulkBitVector, int, int, int]] = []
        self._fill_keys: Set[Key] = set()
        #: Batches optimized across the optimizer's lifetime.
        self.batches = 0
        #: Device ops eliminated across the optimizer's lifetime.
        self.ops_eliminated = 0
        #: Sub-chains served from a shared producer across the lifetime.
        self.shared_subchains = 0

    # ------------------------------------------------------------------
    # Batch lifecycle
    # ------------------------------------------------------------------
    def open_batch(self, executor: Any) -> None:
        """Reset the batch-scoped state; subsequent lowerings share."""
        self._executor = executor
        self._cache = {}
        self._node_columns = {}
        self._steps = {}
        self._views = []
        self._assigned = {}
        self._fills = []
        self._fill_keys = set()
        self.batches += 1

    def commit_fills(self) -> int:
        """Park the executed batch's finished bitmaps in the result cache.

        Must run *after* the executor ran the batch — the recorded vectors
        only hold result data post-execution.  Each fill is epoch-guarded:
        if a write invalidated one of its dependency columns since plan
        time (a same-batch write lowered after the read), the fill is
        bypassed rather than caching a stale bitmap.  Returns the number
        of entries written.
        """
        cache = self.result_cache
        committed = 0
        if cache is None:
            self._fills = []
            return 0
        for key, index, columns, vector, packed_bytes, epoch, num_rows in self._fills:
            if cache.write_epoch(index, columns) != epoch:
                cache.bypasses += 1
                continue
            cache.put(key, index, columns, vector.data[:packed_bytes], num_rows)
            committed += 1
        self._fills = []
        return committed

    def invalidate_writes(
        self,
        index: Any,
        columns: Optional[Iterable[str]] = None,
        invalidate_all: bool = False,
    ) -> int:
        """Drop batch-local CSE entries a write just made stale.

        The cross-batch :class:`ResultCache` is protected at two points
        (invalidation at write lowering, epoch guards at fill commit),
        but the batch-scoped CSE table would otherwise still hand a
        request lowered *after* an in-batch write a result vector
        materialized from pre-write planes.  Called by the planner's
        write lowering with the write's invalidation footprint; entries
        whose dependency columns intersect it (all of the index's
        entries under ``invalidate_all``) are forgotten, so later
        requests of the batch re-emit them against the mutated planes.
        Returns the number of entries dropped.
        """
        index_id = id(index)
        written = None if invalidate_all else frozenset(columns or ())
        stale = [
            key
            for key, (owner, deps) in self._node_columns.items()
            if owner == index_id and (written is None or deps & written)
        ]
        for key in stale:
            self._cache.pop(key, None)
            del self._node_columns[key]
        return len(stale)

    def lint_batch(self, row_size_bytes: Optional[int] = None) -> Optional[OptimizedBatchReport]:
        """Certify the open batch's DAG (None when nothing was lowered)."""
        if not self._views:
            return None
        return lint_optimized_batch(self._steps, self._views, row_size_bytes=row_size_bytes)

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def lower_conjunction(
        self, queued: QueuedRequest, primitives: List[ServiceRequest]
    ) -> LoweredGroup:
        """Lower one conjunction into the open batch's shared DAG.

        Appends the request's fresh steps to ``primitives`` and returns
        the :class:`LoweredGroup` carrying its cost ledger and finalize.
        """
        request = queued.request
        assert isinstance(request, BitmapConjunctionRequest)
        executor = self._executor
        index = request.index
        num_rows: int = index.num_rows
        row_size: int = executor.engine.device.geometry.row_size_bytes
        packed_bytes = (num_rows + 7) // 8
        rows = max(1, -(-packed_bytes // row_size))
        plan_total = sum(len(values) - 1 for _c, values in request.predicates) + (
            len(request.predicates) - 1
        )

        own: List[int] = []
        shared = 0
        # Canonical commutative reordering: lowering predicates in key
        # order makes equal conjunctions build identical AND spines.
        keyed = sorted(
            (
                (predicate_key(index, column, values), column, values)
                for column, values in request.predicates
            ),
            key=lambda item: sort_token(item[0]),
        )

        base: int = executor.stable_offset(index)
        cache_hits = 0
        cache_misses = 0
        # Whole-conjunction consult first (unsplit mode): a repeated
        # request across batches is then one host-memory read — zero
        # device ops, no per-predicate reassembly.
        full_key: Optional[Key] = None
        full_node: Optional[_Node] = None
        if (
            self.result_cache is not None
            and not self.config.split_subchains
            and len(keyed) > 1
        ):
            full_key = canonical_key("and", tuple(item[0] for item in keyed))
            full_node = self._cached_node(full_key, index, num_rows, row_size)
            if full_node is not None:
                cache_hits += 1
            else:
                cache_misses += 1

        if full_node is not None:
            finals = [full_node]
            host_join_ops = 0
            host_merge_ns = 0.0
        else:
            parts: List[_Node] = []
            part_cols: List[FrozenSet[str]] = []
            for pkey, column, values in keyed:
                node = self._cache.get(pkey) if self.config.cse else None
                if node is not None:
                    shared += 1
                else:
                    node = self._cached_node(pkey, index, num_rows, row_size)
                    if node is not None:
                        cache_hits += 1
                        if self.config.cse:
                            self._cache[pkey] = node
                            self._node_columns[pkey] = (id(index), frozenset((column,)))
                    else:
                        if self.result_cache is not None:
                            cache_misses += 1
                        offset = self._choose_offset(executor, base, rows)
                        node = self._emit_predicate(
                            pkey, index, column, values, row_size, rows, offset,
                            primitives, own,
                        )
                        if self.config.cse:
                            self._cache[pkey] = node
                            self._node_columns[pkey] = (id(index), frozenset((column,)))
                        if node.producer is not None:
                            # A multi-value OR chain is worth re-serving
                            # from host memory; a bare bitmap is already
                            # a zero-op source.
                            self._record_fill(
                                pkey, index, (column,), node.vector, packed_bytes, num_rows
                            )
                parts.append(node)
                part_cols.append(frozenset((column,)))

            if self.config.split_subchains:
                finals = parts
                host_join_ops = max(0, len(parts) - 1)
                host_merge_ns = (
                    (len(parts) - 1).bit_length() * self.config.merge_ns_per_op
                    if host_join_ops
                    else 0.0
                )
            else:
                # Left-deep AND spine over the canonically ordered parts, with
                # equal prefixes CSE'd across requests.
                acc = parts[0]
                acc_cols = part_cols[0]
                for part, pcols in zip(parts[1:], part_cols[1:]):
                    akey = canonical_key("and", (acc.key, part.key))
                    merged = acc_cols | pcols
                    node = self._cache.get(akey) if self.config.cse else None
                    if node is None:
                        node = self._emit_and(
                            akey, acc, part, num_rows, row_size, base, primitives, own
                        )
                        if self.config.cse:
                            self._cache[akey] = node
                            self._node_columns[akey] = (id(index), merged)
                    else:
                        shared += 1
                    acc = node
                    acc_cols = merged
                finals = [acc]
                host_join_ops = 0
                host_merge_ns = 0.0
            if full_key is not None:
                all_columns = tuple(sorted({column for column, _v in request.predicates}))
                self._record_fill(
                    full_key, index, all_columns, finals[0].vector, packed_bytes, num_rows
                )

        cone: Set[int] = set()
        for node in finals:
            cone.update(node.cone)
        deps = tuple(sorted(cone - set(own)))
        ops_eliminated = plan_total - len(own) - host_join_ops
        vectors = tuple(node.vector for node in finals)

        view = OptimizedRequestView(
            predicates=request.predicates,
            num_rows=num_rows,
            plan_total=plan_total,
            own_indices=tuple(own),
            dep_indices=deps,
            part_vectors=vectors,
            host_join_ops=host_join_ops,
            ops_eliminated=ops_eliminated,
            shared_subchains=shared,
        )
        self._views.append(view)
        self.ops_eliminated += ops_eliminated
        self.shared_subchains += shared

        def finalize(results: List[RequestResult]) -> Any:
            if len(vectors) == 1:
                return vectors[0].data[:packed_bytes].copy()
            return np.bitwise_and.reduce([v.data[:packed_bytes] for v in vectors])

        zero_cost = None
        if not own:
            # Everything this request needs was already lowered by the
            # batch, served from the cross-batch result cache, or is a
            # single-bitmap identity: zero device ops run on its account,
            # exactly as the ledger declares.
            if deps:
                what = "shared"
            elif cache_hits:
                what = "cached"
            else:
                what = "identity"
            zero_cost = OperationMetrics(
                name="bitmap_conjunction",
                latency_ns=0.0,
                energy_j=0.0,
                bytes_produced=packed_bytes,
                notes=f"{plan_total} bulk ops ({what})",
            )
        return LoweredGroup(
            queued=queued,
            indices=own,
            finalize=finalize,
            zero_cost_metrics=zero_cost,
            dep_indices=list(deps),
            host_merge_ns=host_merge_ns,
            host_join_ops=host_join_ops,
            ops_eliminated=ops_eliminated,
            shared_subchains=shared,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
        )

    # ------------------------------------------------------------------
    # Cross-batch result cache (consult / fill)
    # ------------------------------------------------------------------
    def _cached_node(
        self, key: Key, index: Any, num_rows: int, row_size: int
    ) -> Optional[_Node]:
        """A source node preloaded from the result cache, or None.

        The cached bytes load into a fresh vector, so the node is an
        ordinary *source* to the batch DAG: produced by no step, shareable
        by CSE, lint-clean under the cone-closure check.
        """
        cache = self.result_cache
        if cache is None:
            return None
        data = cache.get(key, index, num_rows)
        if data is None:
            return None
        vector = BulkBitVector(num_rows, row_size)
        vector.data[: data.size] = data
        return _Node(key=key, vector=vector, cone=(), producer=None)

    def _record_fill(
        self,
        key: Key,
        index: Any,
        columns: Tuple[str, ...],
        vector: BulkBitVector,
        packed_bytes: int,
        num_rows: int,
    ) -> None:
        """Queue a finished sub-chain for the post-execution cache fill,
        stamped with its dependency columns' plan-time write epoch."""
        cache = self.result_cache
        if cache is None or key in self._fill_keys:
            return
        self._fill_keys.add(key)
        self._fills.append(
            (key, index, columns, vector, packed_bytes,
             cache.write_epoch(index, columns), num_rows)
        )

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def _emit_predicate(
        self,
        pkey: Key,
        index: Any,
        column: str,
        values: Tuple[int, ...],
        row_size: int,
        rows: int,
        offset: int,
        primitives: List[ServiceRequest],
        own: List[int],
    ) -> _Node:
        """Emit one predicate's OR chain at ``offset``; returns its node.

        The values are lowered in sorted order (the canonical key's
        order) so identical value multisets build identical chains.
        """
        steps, vector = lower_predicate_steps(
            index, column, sorted(values), row_size_bytes=row_size
        )
        cone: List[int] = []
        producer: Optional[int] = None
        latency = 0.0
        for op, a, b, out in steps:
            after = (producer,) if producer is not None else ()
            step_index = len(primitives)
            primitives.append(
                BulkOpRequest(op=op, a=a, b=b, out=out, bank_offset=offset, after=after)
            )
            self._steps[step_index] = (op, a, b, out)
            own.append(step_index)
            cone.append(step_index)
            producer = step_index
            latency += self._executor.engine.op_cost(op, rows).latency_ns
        if latency:
            self._assigned[offset] = self._assigned.get(offset, 0.0) + latency
        return _Node(key=pkey, vector=vector, cone=tuple(cone), producer=producer)

    def _emit_and(
        self,
        akey: Key,
        acc: _Node,
        part: _Node,
        num_rows: int,
        row_size: int,
        offset: int,
        primitives: List[ServiceRequest],
        own: List[int],
    ) -> _Node:
        """Emit one AND of two nodes at ``offset``; returns the new node."""
        out = BulkBitVector(num_rows, row_size)
        after = tuple(
            sorted(p for p in (acc.producer, part.producer) if p is not None)
        )
        step_index = len(primitives)
        primitives.append(
            BulkOpRequest(
                op="and", a=acc.vector, b=part.vector, out=out,
                bank_offset=offset, after=after,
            )
        )
        self._steps[step_index] = ("and", acc.vector, part.vector, out)
        own.append(step_index)
        cone = tuple(sorted({*acc.cone, *part.cone, step_index}))
        return _Node(key=akey, vector=out, cone=cone, producer=step_index)

    # ------------------------------------------------------------------
    # Lane choice
    # ------------------------------------------------------------------
    def _choose_offset(self, executor: Any, base: int, rows: int) -> int:
        """Cheapest-horizon bank offset for a fresh sub-chain.

        Candidates are the request's ``max_split_lanes`` offsets starting
        at its index's stable offset; each is priced as its lanes' busy
        horizon (:meth:`LaneSchedule.lane_load_ns`; 0 for a barrier
        executor) plus the latency already assigned to it this batch.
        Unsplit mode keeps the whole chain at the stable offset.
        """
        if not self.config.split_subchains:
            return base
        banks: int = executor.banks_available()
        span = min(self.config.max_split_lanes, banks)
        best = base % banks
        best_load = float("inf")
        for k in range(span):
            offset = (base + k) % banks
            load = self._offset_load(executor, offset, rows)
            if load < best_load:
                best, best_load = offset, load
        return best

    def _offset_load(self, executor: Any, offset: int, rows: int) -> float:
        horizon: float = 0.0
        if executor.pipeline:
            horizon = executor.lanes.lane_load_ns(executor.span_banks(rows, offset))
        return horizon + self._assigned.get(offset, 0.0)
