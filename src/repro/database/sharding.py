"""Shard-local views of tables and bitmap indices.

The cluster tier partitions a database *by column*: each shard executor
owns the bitmaps/planes of a subset of columns (hot columns may be
replicated onto several shards).  A shard never sees the whole
:class:`~repro.database.bitmap_index.BitmapIndex` — it sees a
:class:`BitmapIndexShardView`, a zero-copy view restricted to the columns
placed on that shard.

The view implements exactly the surface the service planner needs —
``num_rows``, ``bitmap``, ``evaluate_conjunction``, ``lower_conjunction``
— so lowering a scattered :class:`~repro.service.requests
.BitmapConjunctionRequest` happens *shard-locally*: each shard lowers and
executes only the OR/AND chain of its own predicates, and the cluster
frontend merges the per-shard partial bitmaps host-side (a bitwise AND),
bit-exactly reproducing single-device evaluation.

Views share the underlying bitmap arrays with their parent index — a
replica costs the *placed* columns' bytes on its shard's device in a real
deployment, which :meth:`BitmapIndexShardView.storage_bytes` reports, but
the simulation never copies.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.database.bitmap_index import BitmapIndex, BitmapPlan
from repro.database.tables import ColumnTable


class TableShardView:
    """Column-subset view of a :class:`ColumnTable` (no data copied).

    Attributes:
        table: The parent table.
        columns: Names of the columns placed on this shard.
    """

    def __init__(self, table: ColumnTable, columns: Iterable[str]) -> None:
        self.table = table
        self.columns = list(columns)
        missing = [c for c in self.columns if c not in table.columns]
        if missing:
            raise KeyError(f"columns {missing!r} not in table {table.name!r}")

    @property
    def num_rows(self) -> int:
        """Rows of the parent table (column sharding never splits rows)."""
        return self.table.num_rows

    def column(self, name: str) -> np.ndarray:
        """The codes of a shard-local column."""
        self._require_local(name)
        return self.table.column(name)

    def storage_bytes(self, code_bytes: int = 4) -> int:
        """Bytes this shard's column slice occupies on its device."""
        return sum(self.table.column_bytes(name, code_bytes) for name in self.columns)

    def _require_local(self, name: str) -> None:
        if name not in self.columns:
            raise KeyError(f"column {name!r} is not placed on this shard")


class BitmapIndexShardView:
    """Column-subset view of a :class:`BitmapIndex` (bitmaps shared).

    The view quacks like a bitmap index over only its shard's columns, so
    the service planner's conjunction lowering
    (:meth:`lower_conjunction`) and latency model work unchanged on a
    shard — with predicates outside the shard's columns rejected loudly
    rather than silently answered.
    """

    def __init__(self, index: BitmapIndex, columns: Iterable[str]) -> None:
        self.index = index
        self.columns = list(columns)
        missing = [c for c in self.columns if c not in index.bitmaps]
        if missing:
            raise KeyError(f"columns {missing!r} are not indexed")

    @property
    def num_rows(self) -> int:
        """Rows covered by the index (column sharding never splits rows)."""
        return self.index.num_rows

    def indexed_columns(self) -> List[str]:
        """Names of the shard-local columns."""
        return list(self.columns)

    @property
    def table(self) -> ColumnTable:
        """The parent index's table (rebuild charging needs cardinalities)."""
        return self.index.table

    def dirty_columns(self) -> List[str]:
        """Shard-local columns whose planes are lazily deferred dirty.

        Maintenance state lives in the *parent* index (cluster writes
        commit at the coordinator); the view restricts the parent's dirty
        set to the columns placed here so a shard's planner charges
        repairs only for reads it actually serves.
        """
        return [c for c in self.index.dirty_columns() if c in self.columns]

    def bitmap(self, column: str, value: int) -> np.ndarray:
        """Packed bitmap of ``column = value`` for a shard-local column."""
        self._require_local(column)
        return self.index.bitmap(column, value)

    def storage_bytes(self) -> int:
        """Bytes of the shard-local bitmaps (what a replica costs its device)."""
        return sum(
            bitmap.size
            for column in self.columns
            for bitmap in self.index.bitmaps[column].values()
        )

    # ------------------------------------------------------------------
    # Shard-local evaluation and lowering
    # ------------------------------------------------------------------
    def evaluate_conjunction(
        self, predicates: Sequence[Tuple[str, Sequence[int]]]
    ) -> Tuple[np.ndarray, BitmapPlan]:
        """Evaluate a conjunction of shard-local predicates."""
        self._require_all_local(predicates)
        return self.index.evaluate_conjunction(predicates)

    def lower_conjunction(
        self,
        predicates: Sequence[Tuple[str, Sequence[int]]],
        row_size_bytes: int = 8192,
    ) -> Tuple[List[Tuple[str, BulkBitVector, BulkBitVector, BulkBitVector]], BulkBitVector, BitmapPlan]:
        """Lower shard-local predicates to primitive bulk operations.

        Delegates to :meth:`BitmapIndex.lower_conjunction` after checking
        every predicate column is placed here, so a shard's planner can
        only ever lower work its own device holds the bitmaps for.
        """
        self._require_all_local(predicates)
        return self.index.lower_conjunction(predicates, row_size_bytes=row_size_bytes)

    def _require_all_local(self, predicates: Sequence[Tuple[str, Sequence[int]]]) -> None:
        for column, _values in predicates:
            self._require_local(column)

    def _require_local(self, column: str) -> None:
        if column not in self.columns:
            raise KeyError(f"column {column!r} is not placed on this shard")
