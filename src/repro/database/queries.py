"""Query execution backends: CPU vs. Ambit for the bulk bitwise portion.

A query in this substrate has three parts:

1. the **scan** — a plan of bulk bitwise operations produced by the bitmap
   index or the BitWeaving column (this is the part Ambit accelerates),
2. the **aggregate** — a population count over the result bit vector, and
3. the **materialization** — gathering the matching rows' payload columns
   (proportional to the selectivity).

Parts 2 and 3 always execute on the host CPU; part 1 executes on the chosen
:class:`ScanBackend`.  The CPU scan backend is cache-aware: when the bit
vectors involved fit in the last-level cache, bulk bitwise operations run at
cache bandwidth, and the Ambit advantage shrinks — which is exactly why the
paper's query-latency reduction grows with the data-set size (E4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ambit.engine import AmbitEngine
from repro.analysis.metrics import OperationMetrics
from repro.database.bitmap_index import BitmapIndex, BitmapPlan
from repro.database.bitweaving import BitWeavingColumn, ScanPlan
from repro.hostsim.cpu import HostCpu


class ScanBackend(enum.Enum):
    """Where the bulk bitwise operations of a scan execute."""

    CPU = "cpu"
    AMBIT = "ambit"


@dataclass
class QueryResult:
    """Outcome of one query execution.

    Attributes:
        backend: Scan backend used.
        matching_rows: COUNT(*) of the predicate.
        latency_ns: End-to-end query latency.
        energy_j: End-to-end energy.
        breakdown: Latency components (scan / aggregate / materialize), ns.
    """

    backend: ScanBackend
    matching_rows: int
    latency_ns: float
    energy_j: float
    breakdown: Dict[str, float] = field(default_factory=dict)


@dataclass
class BatchQueryResult:
    """Outcome of a batch of queries executed through the service layer.

    Attributes:
        results: Per-query results, in submission order.
        serial_latency_ns: Latency of running the queries one at a time.
        latency_ns: Batched latency (scan makespan with bank-level overlap,
            plus the host epilogues, which stay serial on the CPU).
        energy_j: Total energy (identical to sequential execution).
        request_indices: ``request_indices[k]`` is the position, in the
            submitted query sequence, of the query that produced
            ``results[k]``.  The identity mapping unless admission control
            rejected some queries (pipeline entry points only); empty for
            entry points that always serve everything.
    """

    results: List[QueryResult] = field(default_factory=list)
    serial_latency_ns: float = 0.0
    latency_ns: float = 0.0
    energy_j: float = 0.0
    request_indices: List[int] = field(default_factory=list)

    @property
    def batching_speedup(self) -> float:
        """Serial over batched latency (>1 means batching helped)."""
        if self.latency_ns <= 0:
            return 1.0
        return self.serial_latency_ns / self.latency_ns


@dataclass(frozen=True)
class QueryCostParameters:
    """Host-side cost parameters shared by both backends.

    Attributes:
        llc_bytes: Last-level cache capacity of the host.
        llc_bandwidth_bytes_per_s: Bandwidth of bulk operations that hit in
            the LLC.
        popcount_bandwidth_bytes_per_s: Rate of the host's population count
            over a packed bit vector.
        materialize_bytes_per_row: Payload bytes gathered per matching row.
        cpu_traffic_factor: Channel bytes moved per result byte for a bulk
            bitwise operation on the host (read two operands, allocate and
            write back the destination).
    """

    llc_bytes: int = 8 * 1024 * 1024
    llc_bandwidth_bytes_per_s: float = 150e9
    popcount_bandwidth_bytes_per_s: float = 15e9
    materialize_bytes_per_row: int = 12
    cpu_traffic_factor: float = 4.0


class QueryEngine:
    """Executes bitmap-index and BitWeaving scans on a chosen backend.

    Args:
        cpu: Host CPU model (provides bandwidth and energy parameters).
        ambit: Ambit engine (provides in-DRAM operation throughput).
        cost: Host-side query cost parameters.
    """

    def __init__(
        self,
        cpu: Optional[HostCpu] = None,
        ambit: Optional[AmbitEngine] = None,
        cost: Optional[QueryCostParameters] = None,
    ) -> None:
        self.cpu = cpu or HostCpu()
        self.ambit = ambit or AmbitEngine()
        self.cost = cost or QueryCostParameters()

    # ------------------------------------------------------------------
    # Scan-cost models
    # ------------------------------------------------------------------
    def _plan_operations(self, plan: Union[ScanPlan, BitmapPlan]) -> Dict[str, int]:
        if isinstance(plan, ScanPlan):
            return dict(plan.operations)
        operations: Dict[str, int] = {}
        for op, count in plan.operations:
            operations[op] = operations.get(op, 0) + count
        return operations

    def _vector_bytes(self, plan: Union[ScanPlan, BitmapPlan]) -> int:
        return (plan.result_bits + 7) // 8

    def scan_working_set_bytes(self, plan: Union[ScanPlan, BitmapPlan]) -> int:
        """Approximate working set of the scan (planes/bitmaps + temporaries)."""
        vector_bytes = self._vector_bytes(plan)
        planes = getattr(plan, "planes_touched", 0) or 2
        return (planes + 3) * vector_bytes

    def cpu_scan_cost(self, plan: Union[ScanPlan, BitmapPlan]) -> OperationMetrics:
        """Latency/energy of the scan's bulk operations on the host CPU."""
        operations = self._plan_operations(plan)
        vector_bytes = self._vector_bytes(plan)
        total_ops = sum(operations.values())
        working_set = self.scan_working_set_bytes(plan)

        # Fraction of the scan's operands that stay resident in the LLC.
        # Small tables run entirely at cache bandwidth; large tables run at
        # (de-rated) DRAM bandwidth; in between the two mix linearly, which
        # is what gives the E4 speedup its gradual growth with table size.
        resident_fraction = min(1.0, self.cost.llc_bytes / max(1, working_set))
        cached_traffic_per_op = 3.0 * vector_bytes
        dram_traffic_per_op = self.cost.cpu_traffic_factor * vector_bytes
        cached_time_s = (
            total_ops * cached_traffic_per_op / self.cost.llc_bandwidth_bytes_per_s
        )
        dram_time_s = (
            total_ops * dram_traffic_per_op / self.cpu.effective_bandwidth_bytes_per_s()
        )
        latency_s = resident_fraction * cached_time_s + (1.0 - resident_fraction) * dram_time_s
        dram_bytes = (1.0 - resident_fraction) * total_ops * dram_traffic_per_op
        cached_bytes = resident_fraction * total_ops * cached_traffic_per_op
        energy_j = self.cpu.energy_model.data_movement_energy_j(
            int(dram_bytes), int(cached_bytes)
        )
        traffic_per_op = dram_traffic_per_op
        return OperationMetrics(
            name="cpu_scan",
            latency_ns=latency_s * 1e9,
            energy_j=energy_j,
            bytes_moved_on_channel=int(total_ops * traffic_per_op),
            bytes_produced=vector_bytes,
        )

    def ambit_scan_cost(self, plan: Union[ScanPlan, BitmapPlan]) -> OperationMetrics:
        """Latency/energy of the scan's bulk operations on Ambit."""
        operations = self._plan_operations(plan)
        vector_bytes = self._vector_bytes(plan)
        rows_per_op = max(
            1, -(-vector_bytes // self.ambit.device.geometry.row_size_bytes)
        )
        latency_ns = 0.0
        energy_j = 0.0
        for op, count in operations.items():
            cost = self.ambit.op_cost(op, rows_per_op)
            latency_ns += count * cost.latency_ns
            energy_j += count * cost.energy_j
        return OperationMetrics(
            name="ambit_scan",
            latency_ns=latency_ns,
            energy_j=energy_j,
            bytes_moved_on_channel=0,
            bytes_produced=vector_bytes,
        )

    # ------------------------------------------------------------------
    # Shared epilogue (always on the host)
    # ------------------------------------------------------------------
    def epilogue_cost(self, num_rows: int, matching_rows: int) -> OperationMetrics:
        """Population count plus materialization of the matching rows."""
        vector_bytes = (num_rows + 7) // 8
        popcount_s = vector_bytes / self.cost.popcount_bandwidth_bytes_per_s
        materialize_bytes = matching_rows * self.cost.materialize_bytes_per_row
        materialize_s = materialize_bytes / self.cpu.effective_bandwidth_bytes_per_s()
        latency_s = popcount_s + materialize_s
        energy_j = self.cpu.energy_model.data_movement_energy_j(
            vector_bytes + materialize_bytes
        )
        return OperationMetrics(
            name="epilogue",
            latency_ns=latency_s * 1e9,
            energy_j=energy_j,
            bytes_moved_on_channel=vector_bytes + materialize_bytes,
            bytes_produced=materialize_bytes,
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute_scan(
        self,
        result_bitmap: np.ndarray,
        plan: Union[ScanPlan, BitmapPlan],
        num_rows: int,
        backend: ScanBackend,
    ) -> QueryResult:
        """Attribute cost to an already-evaluated scan result.

        Args:
            result_bitmap: Packed result bits of the predicate (functional
                output of the bitmap index or BitWeaving column).
            plan: The bulk-operation plan that produced the result.
            num_rows: Rows in the table.
            backend: Where the bulk operations execute.
        """
        matching = BitmapIndex.count(result_bitmap, num_rows)
        if backend is ScanBackend.CPU:
            scan_cost = self.cpu_scan_cost(plan)
        else:
            scan_cost = self.ambit_scan_cost(plan)
        epilogue = self.epilogue_cost(num_rows, matching)
        return QueryResult(
            backend=backend,
            matching_rows=matching,
            latency_ns=scan_cost.latency_ns + epilogue.latency_ns,
            energy_j=scan_cost.energy_j + epilogue.energy_j,
            breakdown={
                "scan_ns": scan_cost.latency_ns,
                "epilogue_ns": epilogue.latency_ns,
            },
        )

    def range_count_query(
        self,
        column: BitWeavingColumn,
        low: int,
        high: int,
        backend: ScanBackend,
    ) -> QueryResult:
        """``SELECT COUNT(*) WHERE low <= col <= high`` on the chosen backend."""
        result, plan = column.scan_range(low, high)
        return self.execute_scan(result, plan, column.num_rows, backend)

    def scan_query_batch(
        self,
        scans: Sequence[Tuple[BitWeavingColumn, str, Tuple[int, ...]]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Execute many predicate scans as one batch on the chosen backend.

        On the Ambit backend the scans go through the
        :class:`~repro.service.scheduler.BatchScheduler`, so scans over
        columns in different banks overlap; on the CPU backend they simply
        run back to back (a single host core offers no such overlap).  The
        per-query results, matching counts, and total energy are identical
        to running each query alone.

        Args:
            scans: (column, kind, constants) triples; ``kind`` is one of
                ``less_than, less_equal, equal, between``.
            backend: Where the bulk bitwise operations execute.
            functional: On the Ambit backend, execute the scans on the
                simulated banks rather than analytically.
        """
        from repro.service.scheduler import BatchScheduler  # local: avoid cycle

        batch = BatchQueryResult()
        if backend is ScanBackend.CPU:
            for column, kind, constants in scans:
                result_bits, plan = column.scan(kind, *constants)
                query = self.execute_scan(result_bits, plan, column.num_rows, backend)
                batch.results.append(query)
                batch.serial_latency_ns += query.latency_ns
                batch.latency_ns += query.latency_ns
                batch.energy_j += query.energy_j
            return batch

        scheduler = BatchScheduler(engine=self.ambit)
        for column, kind, constants in scans:
            scheduler.submit_scan(column, kind, *constants)
        service_batch = scheduler.execute(functional=functional)
        scheduler.pool.drain()  # one-shot scheduler: hand the rows back

        epilogue_serial_ns = 0.0
        for (column, kind, constants), request in zip(scans, service_batch.results):
            matching = BitmapIndex.count(request.value, column.num_rows)
            epilogue = self.epilogue_cost(column.num_rows, matching)
            epilogue_serial_ns += epilogue.latency_ns
            batch.results.append(
                QueryResult(
                    backend=backend,
                    matching_rows=matching,
                    latency_ns=request.metrics.latency_ns + epilogue.latency_ns,
                    energy_j=request.metrics.energy_j + epilogue.energy_j,
                    breakdown={
                        "scan_ns": request.metrics.latency_ns,
                        "epilogue_ns": epilogue.latency_ns,
                    },
                )
            )
            batch.energy_j += request.metrics.energy_j + epilogue.energy_j
        batch.serial_latency_ns = (
            service_batch.metrics.serial_latency_ns + epilogue_serial_ns
        )
        batch.latency_ns = service_batch.metrics.latency_ns + epilogue_serial_ns
        return batch

    def range_count_query_batch(
        self,
        ranges: Sequence[Tuple[BitWeavingColumn, int, int]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Batched ``SELECT COUNT(*) WHERE low <= col <= high`` queries."""
        scans = [(column, "between", (low, high)) for column, low, high in ranges]
        return self.scan_query_batch(scans, backend, functional=functional)

    def bitmap_conjunction_query(
        self,
        index: BitmapIndex,
        predicates,
        backend: ScanBackend,
    ) -> QueryResult:
        """``SELECT COUNT(*) WHERE col1 IN (...) AND col2 IN (...)`` query."""
        result, plan = index.evaluate_conjunction(predicates)
        return self.execute_scan(result, plan, index.num_rows, backend)

    # ------------------------------------------------------------------
    # Service-pipeline lowering hooks and entry points
    # ------------------------------------------------------------------
    def lower_scan(self, column: BitWeavingColumn, kind: str, constants) -> "ScanRequest":
        """Lower one predicate scan to a primitive service request.

        The service planner's latency model and the executor share the
        request's cached (result, plan) evaluation, so lowering here means
        the scan is priced exactly as :meth:`ambit_scan_cost` prices it.
        """
        from repro.service.requests import ScanRequest  # local: avoid cycle

        return ScanRequest(column=column, kind=kind, constants=tuple(constants))

    def lower_conjunction(self, index: BitmapIndex, predicates) -> "BitmapConjunctionRequest":
        """Lower a bitmap conjunction to a high-level service request.

        The planner expands it into the OR/AND chain of primitive bulk
        operations via :meth:`BitmapIndex.lower_conjunction`; the chain's
        charged cost equals :meth:`ambit_scan_cost` of the conjunction's
        :class:`BitmapPlan`.
        """
        from repro.service.requests import BitmapConjunctionRequest  # local: avoid cycle

        return BitmapConjunctionRequest(
            index=index,
            predicates=tuple((column, tuple(values)) for column, values in predicates),
        )

    def scan_query_pipeline(
        self,
        scans: Sequence[Tuple[BitWeavingColumn, str, Tuple[int, ...]]],
        backend: ScanBackend,
        rate_per_s: float = 1e6,
        seed: int = 0,
        priorities: Optional[Sequence[int]] = None,
        deadline_slack_ns: Optional[float] = None,
        functional: Optional[bool] = None,
        frontend: Optional["ServiceFrontend"] = None,
    ) -> Tuple[BatchQueryResult, "QueueMetrics"]:
        """Serve predicate scans through the admission-controlled pipeline.

        Scans arrive as a Poisson process at ``rate_per_s`` (starting at
        the frontend's current virtual clock) and are shaped into batches
        by the service frontend.  On the Ambit backend the batches overlap
        across banks; on the CPU backend requests are served one at a time
        in arrival order (a single host core offers no overlap), through
        the same queueing accounting.  Per-query matching counts, scan
        values, and total energy are identical to sequential execution on
        either backend.

        Host epilogues (popcount + materialization) stay serial on the CPU
        and are charged into the query latencies and batch totals; waits
        and sojourns cover the scan service itself.

        Args:
            functional: Execute on the simulated banks.  None (the
                default) keeps a caller-supplied frontend's own setting
                (False for the built-in frontend); passing a bool applies
                it for this call only.

        Returns:
            (batched query results, queueing metrics).
        """
        from repro.service.executor import BatchExecutor  # local: avoid cycle
        from repro.service.frontend import (
            ServiceFrontend,
            poisson_schedule,
            summarize_records,
        )

        requests = [self.lower_scan(column, kind, constants) for column, kind, constants in scans]

        if backend is ScanBackend.CPU:
            events = poisson_schedule(
                requests,
                rate_per_s=rate_per_s,
                seed=seed,
                priorities=priorities,
                deadline_slack_ns=deadline_slack_ns,
            )
            return self._cpu_pipeline(scans, events)

        local_frontend = frontend is None
        if local_frontend:
            # The default frontend admits the whole workload; callers that
            # want admission control (bounded queue / occupancy) pass their
            # own and read the rejections off the returned metrics.
            frontend = ServiceFrontend(
                executor=BatchExecutor(engine=self.ambit),
                max_queue_depth=max(64, len(scans)),
            )
        # Arrivals start at the frontend's clock: on a reused frontend,
        # stamping them at t=0 would count all prior traffic as wait time
        # and void every arrival-relative deadline.
        events = poisson_schedule(
            requests,
            rate_per_s=rate_per_s,
            seed=seed,
            priorities=priorities,
            deadline_slack_ns=deadline_slack_ns,
            start_ns=frontend.clock_ns,
        )
        # Snapshot a reused frontend so the report covers this call only —
        # and restore its functional flag, which this call merely borrows.
        records_before = len(frontend.records)
        busy_before = frontend.busy_ns
        clock_before = frontend.clock_ns
        batches_before = len(frontend.batches)
        prior_functional = frontend.functional
        if functional is not None:
            frontend.functional = functional
        try:
            frontend.run(events, name="scan_query_pipeline")
        finally:
            frontend.functional = prior_functional
        if local_frontend:
            frontend.executor.pool.drain()  # one-shot executor: hand the rows back

        metrics = summarize_records(
            "scan_query_pipeline",
            frontend.records[records_before:],
            makespan_ns=frontend.clock_ns - clock_before,
            busy_ns=frontend.busy_ns - busy_before,
            batches=len(frontend.batches) - batches_before,
        )
        by_request = {id(record.request): record for record in frontend.records}
        entries = []
        for i, (column, _kind, _constants) in enumerate(scans):
            record = by_request[id(requests[i])]
            if record.completed:
                entries.append((i, column.num_rows, record))
        batch = self._assemble_pipeline_batch(backend, entries, metrics)
        return batch, metrics

    def _assemble_pipeline_batch(
        self, backend: ScanBackend, entries, metrics: "QueueMetrics"
    ) -> BatchQueryResult:
        """Map completed pipeline records to per-query results + totals.

        Args:
            backend: Backend the scans executed on.
            entries: (request_index, num_rows, record) per completed record,
                in submission order.
            metrics: This call's queueing summary (supplies the scan-side
                serial and overlapped latencies).

        Rejected requests produce no entry: ``batch.request_indices`` keeps
        the result-to-query mapping intact across the gaps.
        """
        batch = BatchQueryResult()
        epilogue_serial_ns = 0.0
        for request_index, num_rows, record in entries:
            matching = BitmapIndex.count(record.value, num_rows)
            epilogue = self.epilogue_cost(num_rows, matching)
            epilogue_serial_ns += epilogue.latency_ns
            batch.results.append(
                QueryResult(
                    backend=backend,
                    matching_rows=matching,
                    latency_ns=record.metrics.latency_ns + epilogue.latency_ns,
                    energy_j=record.metrics.energy_j + epilogue.energy_j,
                    breakdown={
                        "scan_ns": record.metrics.latency_ns,
                        "epilogue_ns": epilogue.latency_ns,
                    },
                )
            )
            batch.request_indices.append(request_index)
            batch.energy_j += record.metrics.energy_j + epilogue.energy_j
        batch.serial_latency_ns = metrics.serial_latency_ns + epilogue_serial_ns
        batch.latency_ns = metrics.busy_ns + epilogue_serial_ns
        return batch

    def _cpu_pipeline(self, scans, events) -> Tuple[BatchQueryResult, "QueueMetrics"]:
        """FIFO single-server queue over the CPU scan backend."""
        from repro.analysis.metrics import QueueMetrics

        batch = BatchQueryResult()
        waits: List[float] = []
        sojourns: List[float] = []
        now = 0.0
        busy = 0.0
        for event, (column, kind, constants) in sorted(
            zip(events, scans), key=lambda pair: pair[0].arrival_ns
        ):
            result_bits, plan = column.scan(kind, *constants)
            query = self.execute_scan(result_bits, plan, column.num_rows, ScanBackend.CPU)
            start = max(now, event.arrival_ns)
            scan_ns = query.breakdown["scan_ns"]
            finish = start + scan_ns
            now = finish
            busy += scan_ns
            waits.append(start - event.arrival_ns)
            sojourns.append(finish - event.arrival_ns)
            batch.results.append(query)
            batch.serial_latency_ns += query.latency_ns
            batch.latency_ns += query.latency_ns
            batch.energy_j += query.energy_j
        metrics = QueueMetrics.from_samples(
            "scan_query_pipeline_cpu",
            wait_ns=waits,
            sojourn_ns=sojourns,
            offered=len(batch.results),
            admitted=len(batch.results),
            completed=len(batch.results),
            makespan_ns=now,
            busy_ns=busy,
            serial_latency_ns=sum(q.breakdown["scan_ns"] for q in batch.results),
            energy_j=batch.energy_j,
            batches=len(batch.results),
        )
        return batch, metrics

    def bitmap_conjunction_query_batch(
        self,
        index: BitmapIndex,
        conjunctions: Sequence[Sequence[Tuple[str, Sequence[int]]]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Batched bitmap-conjunction queries through the service pipeline.

        On the Ambit backend each conjunction is lowered to its OR/AND
        chain of primitive bulk operations and executed through the batch
        pipeline (chains of different conjunctions may overlap across
        banks; each chain serializes on its own banks).  Per-query counts,
        latencies, and energies are identical to
        :meth:`bitmap_conjunction_query`.
        """
        from repro.service.executor import BatchExecutor  # local: avoid cycle
        from repro.service.frontend import ServiceFrontend, trace_schedule

        batch = BatchQueryResult()
        if backend is ScanBackend.CPU:
            for predicates in conjunctions:
                query = self.bitmap_conjunction_query(index, predicates, backend)
                batch.results.append(query)
                batch.serial_latency_ns += query.latency_ns
                batch.latency_ns += query.latency_ns
                batch.energy_j += query.energy_j
            return batch

        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=self.ambit),
            max_queue_depth=max(64, len(conjunctions)),
            functional=functional,
        )
        requests = [self.lower_conjunction(index, predicates) for predicates in conjunctions]
        pipeline = frontend.run(
            trace_schedule(requests, [0.0] * len(requests)), name="bitmap_conjunctions"
        )
        frontend.executor.pool.drain()  # one-shot executor: hand the rows back

        entries = [
            (i, index.num_rows, record) for i, record in enumerate(pipeline.records)
        ]
        return self._assemble_pipeline_batch(backend, entries, pipeline.metrics)
