"""Query execution backends: CPU vs. Ambit for the bulk bitwise portion.

A query in this substrate has three parts:

1. the **scan** — a plan of bulk bitwise operations produced by the bitmap
   index or the BitWeaving column (this is the part Ambit accelerates),
2. the **aggregate** — a population count over the result bit vector, and
3. the **materialization** — gathering the matching rows' payload columns
   (proportional to the selectivity).

Parts 2 and 3 always execute on the host CPU; part 1 executes on the chosen
:class:`ScanBackend`.  The CPU scan backend is cache-aware: when the bit
vectors involved fit in the last-level cache, bulk bitwise operations run at
cache bandwidth, and the Ambit advantage shrinks — which is exactly why the
paper's query-latency reduction grows with the data-set size (E4).
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ambit.engine import AmbitEngine
from repro.analysis.metrics import OperationMetrics
from repro.database.bitmap_index import BitmapIndex, BitmapPlan
from repro.database.bitweaving import BitWeavingColumn, ScanPlan
from repro.hostsim.cpu import HostCpu


class ScanBackend(enum.Enum):
    """Where the bulk bitwise operations of a scan execute."""

    CPU = "cpu"
    AMBIT = "ambit"


@dataclass
class QueryResult:
    """Outcome of one query execution.

    Attributes:
        backend: Scan backend used.
        matching_rows: COUNT(*) of the predicate.
        latency_ns: End-to-end query latency.
        energy_j: End-to-end energy.
        breakdown: Latency components (scan / aggregate / materialize), ns.
    """

    backend: ScanBackend
    matching_rows: int
    latency_ns: float
    energy_j: float
    breakdown: Dict[str, float] = field(default_factory=dict)


@dataclass
class BatchQueryResult:
    """Outcome of a batch of queries executed through the service layer.

    Attributes:
        results: Per-query results, in submission order.
        serial_latency_ns: Latency of running the queries one at a time.
        latency_ns: Batched latency (scan makespan with bank-level overlap,
            plus the host epilogues, which stay serial on the CPU).
        energy_j: Total energy (identical to sequential execution).
        request_indices: ``request_indices[k]`` is the position, in the
            submitted query sequence, of the query that produced
            ``results[k]``.  The identity mapping unless admission control
            rejected some queries (pipeline entry points only); empty for
            entry points that always serve everything.
    """

    results: List[QueryResult] = field(default_factory=list)
    serial_latency_ns: float = 0.0
    latency_ns: float = 0.0
    energy_j: float = 0.0
    request_indices: List[int] = field(default_factory=list)

    @property
    def batching_speedup(self) -> float:
        """Serial over batched latency (>1 means batching helped)."""
        if self.latency_ns <= 0:
            return 1.0
        return self.serial_latency_ns / self.latency_ns


@dataclass(frozen=True)
class QueryCostParameters:
    """Host-side cost parameters shared by both backends.

    Attributes:
        llc_bytes: Last-level cache capacity of the host.
        llc_bandwidth_bytes_per_s: Bandwidth of bulk operations that hit in
            the LLC.
        popcount_bandwidth_bytes_per_s: Rate of the host's population count
            over a packed bit vector.
        materialize_bytes_per_row: Payload bytes gathered per matching row.
        cpu_traffic_factor: Channel bytes moved per result byte for a bulk
            bitwise operation on the host (read two operands, allocate and
            write back the destination).
    """

    llc_bytes: int = 8 * 1024 * 1024
    llc_bandwidth_bytes_per_s: float = 150e9
    popcount_bandwidth_bytes_per_s: float = 15e9
    materialize_bytes_per_row: int = 12
    cpu_traffic_factor: float = 4.0


class QueryEngine:
    """Executes bitmap-index and BitWeaving scans on a chosen backend.

    Args:
        cpu: Host CPU model (provides bandwidth and energy parameters).
        ambit: Ambit engine (provides in-DRAM operation throughput).
        cost: Host-side query cost parameters.
    """

    def __init__(
        self,
        cpu: Optional[HostCpu] = None,
        ambit: Optional[AmbitEngine] = None,
        cost: Optional[QueryCostParameters] = None,
    ) -> None:
        self.cpu = cpu or HostCpu()
        self.ambit = ambit or AmbitEngine()
        self.cost = cost or QueryCostParameters()
        # One cached backend per tier for the deprecated shims, so a
        # caller looping a legacy entry point does not rebuild the
        # executor/pool machinery per query.
        self._shim_backends: Dict[ScanBackend, object] = {}

    # ------------------------------------------------------------------
    # Scan-cost models
    # ------------------------------------------------------------------
    def _plan_operations(self, plan: Union[ScanPlan, BitmapPlan]) -> Dict[str, int]:
        if isinstance(plan, ScanPlan):
            return dict(plan.operations)
        operations: Dict[str, int] = {}
        for op, count in plan.operations:
            operations[op] = operations.get(op, 0) + count
        return operations

    def _vector_bytes(self, plan: Union[ScanPlan, BitmapPlan]) -> int:
        return (plan.result_bits + 7) // 8

    def scan_working_set_bytes(self, plan: Union[ScanPlan, BitmapPlan]) -> int:
        """Approximate working set of the scan (planes/bitmaps + temporaries)."""
        vector_bytes = self._vector_bytes(plan)
        planes = getattr(plan, "planes_touched", 0) or 2
        return (planes + 3) * vector_bytes

    def cpu_scan_cost(self, plan: Union[ScanPlan, BitmapPlan]) -> OperationMetrics:
        """Latency/energy of the scan's bulk operations on the host CPU."""
        operations = self._plan_operations(plan)
        vector_bytes = self._vector_bytes(plan)
        total_ops = sum(operations.values())
        working_set = self.scan_working_set_bytes(plan)

        # Fraction of the scan's operands that stay resident in the LLC.
        # Small tables run entirely at cache bandwidth; large tables run at
        # (de-rated) DRAM bandwidth; in between the two mix linearly, which
        # is what gives the E4 speedup its gradual growth with table size.
        resident_fraction = min(1.0, self.cost.llc_bytes / max(1, working_set))
        cached_traffic_per_op = 3.0 * vector_bytes
        dram_traffic_per_op = self.cost.cpu_traffic_factor * vector_bytes
        cached_time_s = (
            total_ops * cached_traffic_per_op / self.cost.llc_bandwidth_bytes_per_s
        )
        dram_time_s = (
            total_ops * dram_traffic_per_op / self.cpu.effective_bandwidth_bytes_per_s()
        )
        latency_s = resident_fraction * cached_time_s + (1.0 - resident_fraction) * dram_time_s
        dram_bytes = (1.0 - resident_fraction) * total_ops * dram_traffic_per_op
        cached_bytes = resident_fraction * total_ops * cached_traffic_per_op
        energy_j = self.cpu.energy_model.data_movement_energy_j(
            int(dram_bytes), int(cached_bytes)
        )
        traffic_per_op = dram_traffic_per_op
        return OperationMetrics(
            name="cpu_scan",
            latency_ns=latency_s * 1e9,
            energy_j=energy_j,
            bytes_moved_on_channel=int(total_ops * traffic_per_op),
            bytes_produced=vector_bytes,
        )

    def ambit_scan_cost(self, plan: Union[ScanPlan, BitmapPlan]) -> OperationMetrics:
        """Latency/energy of the scan's bulk operations on Ambit."""
        operations = self._plan_operations(plan)
        vector_bytes = self._vector_bytes(plan)
        rows_per_op = max(
            1, -(-vector_bytes // self.ambit.device.geometry.row_size_bytes)
        )
        latency_ns = 0.0
        energy_j = 0.0
        for op, count in operations.items():
            cost = self.ambit.op_cost(op, rows_per_op)
            latency_ns += count * cost.latency_ns
            energy_j += count * cost.energy_j
        return OperationMetrics(
            name="ambit_scan",
            latency_ns=latency_ns,
            energy_j=energy_j,
            bytes_moved_on_channel=0,
            bytes_produced=vector_bytes,
        )

    # ------------------------------------------------------------------
    # Shared epilogue (always on the host)
    # ------------------------------------------------------------------
    def epilogue_cost(self, num_rows: int, matching_rows: int) -> OperationMetrics:
        """Population count plus materialization of the matching rows."""
        vector_bytes = (num_rows + 7) // 8
        popcount_s = vector_bytes / self.cost.popcount_bandwidth_bytes_per_s
        materialize_bytes = matching_rows * self.cost.materialize_bytes_per_row
        materialize_s = materialize_bytes / self.cpu.effective_bandwidth_bytes_per_s()
        latency_s = popcount_s + materialize_s
        energy_j = self.cpu.energy_model.data_movement_energy_j(
            vector_bytes + materialize_bytes
        )
        return OperationMetrics(
            name="epilogue",
            latency_ns=latency_s * 1e9,
            energy_j=energy_j,
            bytes_moved_on_channel=vector_bytes + materialize_bytes,
            bytes_produced=materialize_bytes,
        )

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute_scan(
        self,
        result_bitmap: np.ndarray,
        plan: Union[ScanPlan, BitmapPlan],
        num_rows: int,
        backend: ScanBackend,
    ) -> QueryResult:
        """Attribute cost to an already-evaluated scan result.

        Args:
            result_bitmap: Packed result bits of the predicate (functional
                output of the bitmap index or BitWeaving column).
            plan: The bulk-operation plan that produced the result.
            num_rows: Rows in the table.
            backend: Where the bulk operations execute.
        """
        matching = BitmapIndex.count(result_bitmap, num_rows)
        if backend is ScanBackend.CPU:
            scan_cost = self.cpu_scan_cost(plan)
        else:
            scan_cost = self.ambit_scan_cost(plan)
        epilogue = self.epilogue_cost(num_rows, matching)
        return QueryResult(
            backend=backend,
            matching_rows=matching,
            latency_ns=scan_cost.latency_ns + epilogue.latency_ns,
            energy_j=scan_cost.energy_j + epilogue.energy_j,
            breakdown={
                "scan_ns": scan_cost.latency_ns,
                "epilogue_ns": epilogue.latency_ns,
            },
        )

    # ------------------------------------------------------------------
    # Unified-API plumbing (sessions over the same cost models)
    # ------------------------------------------------------------------
    def _shim_backend(self, backend: ScanBackend):
        """The cached per-tier backend the deprecated shims submit to.

        CPU queries run through one serial :class:`HostBackend` (priced
        by :meth:`cpu_scan_cost`); Ambit queries through one
        :class:`ServiceFrontend` over ``self.ambit``.  The backend lives
        for the engine's lifetime (its virtual clock simply keeps
        advancing across calls; every shim reports through a per-call
        session window, so reuse is invisible in the results).  Caching
        keeps the executor/rowclone/pool *objects*; per-call state —
        request records, batches, pooled device rows — is handed back by
        :meth:`_release_shim_session` so looped legacy calls neither
        grow memory nor pin rows on a possibly-shared engine.
        """
        cached = self._shim_backends.get(backend)
        if cached is None:
            if backend is ScanBackend.CPU:
                from repro.api.backends import HostBackend  # local: avoid cycle

                cached = HostBackend(coster=self)
            else:
                from repro.service.executor import BatchExecutor  # local: avoid cycle
                from repro.service.frontend import ServiceFrontend  # local: avoid cycle

                cached = ServiceFrontend(executor=BatchExecutor(engine=self.ambit))
            self._shim_backends[backend] = cached
        return cached

    def _one_shot_session(
        self,
        backend: ScanBackend,
        size: int = 1,
        functional: bool = False,
        single_batch: bool = True,
    ) -> "PimSession":
        """A per-call session window over the cached shim backend.

        With ``single_batch`` (the shape the legacy batch entry points
        produced) the policy admits the whole workload as one batch;
        otherwise the default size-32 policy applies, as the legacy
        pipeline paths had it.
        """
        from repro.api.session import PimSession  # local: avoid cycle
        from repro.service.planner import BatchPolicy  # local: avoid cycle

        frontend = self._shim_backend(backend)
        if backend is ScanBackend.AMBIT:
            frontend.functional = functional
            frontend.planner.policy.max_batch = (
                max(1, size) if single_batch else BatchPolicy().max_batch
            )
            frontend.max_queue_depth = max(64, size)
        return PimSession(frontend, coster=self)

    @staticmethod
    def _release_shim_session(session: "PimSession") -> None:
        """Hand back a legacy call's per-call state from the cached backend.

        The legacy entry points built one-shot frontends that were
        garbage-collected after each call; the cached backend must match
        that: records and batches (which pin result bitmaps) are dropped,
        and pooled device rows go back to the engine's allocator — the
        shims never retain rows on a possibly-shared engine, exactly as
        the old one-shot schedulers promised.  Only the construction of
        the executor machinery is amortized by the cache.
        """
        backend = session.backend
        backend.records.clear()
        if hasattr(backend, "batches"):
            backend.batches.clear()
        if hasattr(backend, "executor"):
            backend.executor.pool.drain()

    @staticmethod
    def _query_result(backend: ScanBackend, response) -> QueryResult:
        """Map a unified :class:`~repro.api.session.Response` to the legacy shape."""
        return QueryResult(
            backend=backend,
            matching_rows=response.matching_rows,
            latency_ns=response.latency_ns,
            energy_j=response.energy_j,
            breakdown=dict(response.breakdown),
        )

    def _assemble_batch(
        self, backend: ScanBackend, futures, metrics, request_indices: bool = False
    ) -> BatchQueryResult:
        """Fold completed session futures into the legacy batch shape.

        Rejected requests produce no entry; with ``request_indices`` the
        result-to-query mapping stays intact across the gaps (the pipeline
        entry points' contract).
        """
        batch = BatchQueryResult()
        epilogue_serial_ns = 0.0
        for i, future in enumerate(futures):
            if not future.done():
                continue
            response = future.result()
            epilogue_serial_ns += response.breakdown["epilogue_ns"]
            batch.results.append(self._query_result(backend, response))
            if request_indices:
                batch.request_indices.append(i)
            batch.energy_j += response.energy_j
        batch.serial_latency_ns = metrics.serial_latency_ns + epilogue_serial_ns
        batch.latency_ns = metrics.busy_ns + epilogue_serial_ns
        return batch

    @staticmethod
    def _warn_deprecated(old: str, new: str) -> None:
        warnings.warn(
            f"QueryEngine.{old} is deprecated; use the unified client API "
            f"instead ({new})",
            DeprecationWarning,
            stacklevel=3,
        )

    # ------------------------------------------------------------------
    # Deprecated entry points (thin shims over PimSession)
    # ------------------------------------------------------------------
    def range_count_query(
        self,
        column: BitWeavingColumn,
        low: int,
        high: int,
        backend: ScanBackend,
    ) -> QueryResult:
        """``SELECT COUNT(*) WHERE low <= col <= high`` on the chosen backend.

        .. deprecated:: use ``PimSession.range_count`` instead.
        """
        self._warn_deprecated("range_count_query", "PimSession.range_count")
        session = self._one_shot_session(backend)
        future = session.range_count(column, low, high)
        response = future.result()
        self._release_shim_session(session)
        return self._query_result(backend, response)

    def bitmap_conjunction_query(
        self,
        index: BitmapIndex,
        predicates,
        backend: ScanBackend,
    ) -> QueryResult:
        """``SELECT COUNT(*) WHERE col1 IN (...) AND col2 IN (...)`` query.

        .. deprecated:: use ``PimSession.conjunction`` instead.
        """
        self._warn_deprecated("bitmap_conjunction_query", "PimSession.conjunction")
        session = self._one_shot_session(backend)
        future = session.conjunction(index, predicates)
        response = future.result()
        self._release_shim_session(session)
        return self._query_result(backend, response)

    def scan_query_batch(
        self,
        scans: Sequence[Tuple[BitWeavingColumn, str, Tuple[int, ...]]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Execute many predicate scans as one batch on the chosen backend.

        .. deprecated:: submit ``PimSession.scan`` futures and read
           ``session.report()`` instead.

        On the Ambit backend the scans run as one frontend batch, so scans
        over columns in different banks overlap; on the CPU backend they
        simply run back to back (a single host core offers no such
        overlap).  The per-query results, matching counts, and total
        energy are identical to running each query alone.

        Args:
            scans: (column, kind, constants) triples; ``kind`` is one of
                ``less_than, less_equal, equal, between``.
            backend: Where the bulk bitwise operations execute.
            functional: On the Ambit backend, execute the scans on the
                simulated banks rather than analytically.
        """
        self._warn_deprecated("scan_query_batch", "PimSession.scan")
        return self._scan_query_batch_impl(scans, backend, functional=functional)

    def _scan_query_batch_impl(
        self, scans, backend: ScanBackend, functional: bool = False
    ) -> BatchQueryResult:
        session = self._one_shot_session(backend, size=len(scans), functional=functional)
        futures = [
            session.scan(column, kind, *constants) for column, kind, constants in scans
        ]
        session.drain()
        report = session.report("scan_query_batch")
        batch = self._assemble_batch(backend, futures, report.details)
        self._release_shim_session(session)
        return batch

    def range_count_query_batch(
        self,
        ranges: Sequence[Tuple[BitWeavingColumn, int, int]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Batched ``SELECT COUNT(*) WHERE low <= col <= high`` queries.

        .. deprecated:: submit ``PimSession.range_count`` futures instead.
        """
        self._warn_deprecated("range_count_query_batch", "PimSession.range_count")
        scans = [(column, "between", (low, high)) for column, low, high in ranges]
        return self._scan_query_batch_impl(scans, backend, functional=functional)

    # ------------------------------------------------------------------
    # Lowering hooks (delegate to the shared plan IR)
    # ------------------------------------------------------------------
    def lower_scan(self, column: BitWeavingColumn, kind: str, constants) -> "ScanRequest":
        """Lower one predicate scan to a primitive service request.

        Delegates to the shared plan IR (:class:`repro.api.plans
        .ScanSpec`).  The service planner's latency model and the executor
        share the request's cached (result, plan) evaluation, so lowering
        here means the scan is priced exactly as :meth:`ambit_scan_cost`
        prices it.
        """
        from repro.api.plans import ScanSpec  # local: avoid cycle

        return ScanSpec(column=column, kind=kind, constants=tuple(constants)).to_request()

    def lower_conjunction(self, index: BitmapIndex, predicates) -> "BitmapConjunctionRequest":
        """Lower a bitmap conjunction to a high-level service request.

        Delegates to the shared plan IR (:class:`repro.api.plans
        .ConjunctionSpec`).  The planner expands it into the OR/AND chain
        of primitive bulk operations via
        :func:`repro.api.plans.lower_conjunction_steps`; the chain's
        charged cost equals :meth:`ambit_scan_cost` of the conjunction's
        :class:`BitmapPlan`.
        """
        from repro.api.plans import ConjunctionSpec  # local: avoid cycle

        return ConjunctionSpec(
            index=index,
            predicates=tuple((column, tuple(values)) for column, values in predicates),
        ).to_request()

    def scan_query_pipeline(
        self,
        scans: Sequence[Tuple[BitWeavingColumn, str, Tuple[int, ...]]],
        backend: ScanBackend,
        rate_per_s: float = 1e6,
        seed: int = 0,
        priorities: Optional[Sequence[int]] = None,
        deadline_slack_ns: Optional[float] = None,
        functional: Optional[bool] = None,
        frontend: Optional["ServiceFrontend"] = None,
    ) -> Tuple[BatchQueryResult, "QueueMetrics"]:
        """Serve predicate scans through the admission-controlled pipeline.

        .. deprecated:: build a ``PimSession`` over the frontend and use
           ``session.submit_stream`` + ``session.report`` instead.

        Scans arrive as a Poisson process at ``rate_per_s`` (starting at
        the frontend's current virtual clock) and are shaped into batches
        by the service frontend.  On the Ambit backend the batches overlap
        across banks; on the CPU backend requests are served one at a time
        in arrival order through the same queueing accounting.  Per-query
        matching counts, scan values, and total energy are identical to
        sequential execution on either backend.

        Args:
            functional: Execute on the simulated banks.  None (the
                default) keeps a caller-supplied frontend's own setting
                (False for the built-in frontend); passing a bool applies
                it for this call only.

        Returns:
            (batched query results, queueing metrics).
        """
        self._warn_deprecated(
            "scan_query_pipeline", "PimSession.submit_stream + PimSession.report"
        )
        from repro.api.session import PimSession  # local: avoid cycle
        from repro.service.frontend import poisson_schedule  # local: avoid cycle

        requests = [
            self.lower_scan(column, kind, constants) for column, kind, constants in scans
        ]

        if backend is ScanBackend.CPU:
            session = self._one_shot_session(backend)
            events = poisson_schedule(
                requests,
                rate_per_s=rate_per_s,
                seed=seed,
                priorities=priorities,
                deadline_slack_ns=deadline_slack_ns,
                # The cached host backend's clock keeps advancing across
                # calls; arrivals stamped before it would be charged
                # phantom waits.
                start_ns=session.backend.clock_ns,
            )
            futures = session.submit_stream(events)
            report = session.report("scan_query_pipeline_cpu")
            batch = self._assemble_batch(backend, futures, report.details)
            self._release_shim_session(session)
            return batch, report.details

        local_frontend = frontend is None
        if local_frontend:
            # The default (cached) frontend admits the whole workload;
            # callers that want admission control (bounded queue /
            # occupancy) pass their own and read the rejections off the
            # returned metrics.
            from repro.service.planner import BatchPolicy  # local: avoid cycle

            session = PimSession(
                self._shim_backend(ScanBackend.AMBIT), coster=self
            )
            frontend = session.backend
            frontend.max_queue_depth = max(64, len(scans))
            frontend.planner.policy.max_batch = BatchPolicy().max_batch
            frontend.functional = False  # the built-in default; see below
        else:
            # The session snapshots the reused frontend, so the report
            # covers this call only.  Arrivals start at the frontend's
            # clock: stamping them at t=0 on a reused frontend would count
            # all prior traffic as wait time and void arrival-relative
            # deadlines.
            session = PimSession(frontend, coster=self)
        events = poisson_schedule(
            requests,
            rate_per_s=rate_per_s,
            seed=seed,
            priorities=priorities,
            deadline_slack_ns=deadline_slack_ns,
            start_ns=frontend.clock_ns,
        )
        # Restore the functional flag, which this call merely borrows.
        prior_functional = frontend.functional
        if functional is not None:
            frontend.functional = functional
        try:
            futures = session.submit_stream(events)
            session.drain()
        finally:
            frontend.functional = prior_functional
        report = session.report("scan_query_pipeline")
        batch = self._assemble_batch(
            backend, futures, report.details, request_indices=True
        )
        if local_frontend:
            self._release_shim_session(session)
        return batch, report.details

    def bitmap_conjunction_query_batch(
        self,
        index: BitmapIndex,
        conjunctions: Sequence[Sequence[Tuple[str, Sequence[int]]]],
        backend: ScanBackend,
        functional: bool = False,
    ) -> BatchQueryResult:
        """Batched bitmap-conjunction queries through the service pipeline.

        .. deprecated:: submit ``PimSession.conjunction`` futures instead.

        On the Ambit backend each conjunction is lowered to its OR/AND
        chain of primitive bulk operations and executed through the batch
        pipeline (chains of different conjunctions may overlap across
        banks; each chain serializes on its own banks).  Per-query counts,
        latencies, and energies are identical to
        :meth:`bitmap_conjunction_query`.
        """
        self._warn_deprecated("bitmap_conjunction_query_batch", "PimSession.conjunction")
        session = self._one_shot_session(
            backend, size=len(conjunctions), functional=functional, single_batch=False
        )
        futures = [session.conjunction(index, predicates) for predicates in conjunctions]
        session.drain()
        report = session.report("bitmap_conjunctions")
        batch = self._assemble_batch(
            backend, futures, report.details, request_indices=(backend is ScanBackend.AMBIT)
        )
        self._release_shim_session(session)
        return batch
