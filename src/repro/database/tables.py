"""Synthetic column-store tables for the database experiments.

The Ambit end-to-end evaluation uses an analytics-style table scanned by
predicates over low-cardinality dimension columns (bitmap indices) and
narrow integer measure columns (BitWeaving).  The generator below produces
such a table with controllable row count, column cardinalities, and value
skew, which are the variables the query-latency experiment sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence

import numpy as np


@dataclass
class ColumnTable:
    """A simple in-memory column store.

    Attributes:
        name: Table name.
        num_rows: Number of rows.
        columns: Mapping from column name to a NumPy integer array of codes.
        cardinalities: Mapping from column name to its number of distinct values.
    """

    name: str
    num_rows: int
    columns: Dict[str, np.ndarray] = field(default_factory=dict)
    cardinalities: Dict[str, int] = field(default_factory=dict)

    def add_column(self, name: str, values: np.ndarray, cardinality: Optional[int] = None) -> None:
        """Add a column of integer codes."""
        values = np.asarray(values)
        if values.shape != (self.num_rows,):
            raise ValueError(f"column {name!r} must have {self.num_rows} values")
        if not np.issubdtype(values.dtype, np.integer):
            raise TypeError("column values must be integers (dictionary-encoded codes)")
        if values.size and values.min() < 0:
            raise ValueError("column codes must be non-negative")
        self.columns[name] = values.astype(np.int64)
        self.cardinalities[name] = (
            cardinality if cardinality is not None else int(values.max()) + 1 if values.size else 0
        )

    def column(self, name: str) -> np.ndarray:
        """Return a column's codes."""
        try:
            return self.columns[name]
        except KeyError as exc:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from exc

    def column_bits(self, name: str) -> int:
        """Bits needed to encode the column's codes."""
        cardinality = self.cardinalities[name]
        return max(1, int(np.ceil(np.log2(max(2, cardinality)))))

    def column_bytes(self, name: str, code_bytes: int = 4) -> int:
        """Size of the column stored as plain fixed-width codes."""
        return self.num_rows * code_bytes

    # ------------------------------------------------------------------
    # Mutation (the write path; index maintenance lives in repro.storage)
    # ------------------------------------------------------------------
    def append_rows(self, rows: Mapping[str, Sequence[int]]) -> int:
        """Append rows given as per-column code sequences.

        Every existing column must be covered, all sequences must have the
        same length, and codes must be non-negative integers.  Returns the
        number of rows appended.  Cardinalities widen when a new code
        exceeds the recorded cardinality (dictionary growth).
        """
        if set(rows) != set(self.columns):
            missing = set(self.columns) - set(rows)
            extra = set(rows) - set(self.columns)
            raise ValueError(
                f"append must cover exactly the table's columns "
                f"(missing: {sorted(missing)}, unknown: {sorted(extra)})"
            )
        arrays: Dict[str, np.ndarray] = {}
        count: Optional[int] = None
        for name, values in rows.items():
            array = np.asarray(values)
            if array.ndim != 1:
                raise ValueError(f"append values for {name!r} must be one-dimensional")
            if not np.issubdtype(array.dtype, np.integer):
                raise TypeError("appended codes must be integers")
            if array.size and array.min() < 0:
                raise ValueError("appended codes must be non-negative")
            if count is None:
                count = int(array.size)
            elif int(array.size) != count:
                raise ValueError("append columns must have equal lengths")
            arrays[name] = array.astype(np.int64)
        if not count:
            return 0
        for name, array in arrays.items():
            self.columns[name] = np.concatenate([self.columns[name], array])
            if array.size:
                self.cardinalities[name] = max(
                    self.cardinalities[name], int(array.max()) + 1
                )
        self.num_rows += count
        return count

    def update_rows(self, name: str, row_ids: Sequence[int], values: Sequence[int]) -> int:
        """Overwrite ``column[row_ids] = values``; returns rows updated.

        Row ids must be unique — a duplicated id would make incremental
        index maintenance (clear old bit, set new bit) ambiguous — and in
        range.  Cardinality widens for new codes.
        """
        column = self.column(name)
        ids = np.asarray(row_ids)
        codes = np.asarray(values)
        if ids.shape != codes.shape or ids.ndim != 1:
            raise ValueError("row_ids and values must be one-dimensional and equal-length")
        if ids.size == 0:
            return 0
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError("row_ids must be integers")
        if not np.issubdtype(codes.dtype, np.integer):
            raise TypeError("updated codes must be integers")
        if ids.min() < 0 or ids.max() >= self.num_rows:
            raise ValueError(f"row_ids must be in [0, {self.num_rows})")
        if np.unique(ids).size != ids.size:
            raise ValueError("row_ids must be unique within one update")
        if codes.min() < 0:
            raise ValueError("updated codes must be non-negative")
        column[ids] = codes.astype(np.int64)
        self.cardinalities[name] = max(self.cardinalities[name], int(codes.max()) + 1)
        return int(ids.size)

    def delete_rows(self, row_ids: Sequence[int]) -> int:
        """Physically delete rows; later rows renumber down (simulation
        semantics — there is no tombstone layer).  Returns rows deleted."""
        ids = np.asarray(row_ids)
        if ids.ndim != 1:
            raise ValueError("row_ids must be one-dimensional")
        if ids.size == 0:
            return 0
        if not np.issubdtype(ids.dtype, np.integer):
            raise TypeError("row_ids must be integers")
        if ids.min() < 0 or ids.max() >= self.num_rows:
            raise ValueError(f"row_ids must be in [0, {self.num_rows})")
        ids = np.unique(ids)
        for name in self.columns:
            self.columns[name] = np.delete(self.columns[name], ids)
        self.num_rows -= int(ids.size)
        return int(ids.size)

    def describe(self) -> str:
        """One-line description used by the benchmark output."""
        cols = ", ".join(
            f"{name}({self.cardinalities[name]} values)" for name in self.columns
        )
        return f"{self.name}: {self.num_rows} rows, columns: {cols}"


def generate_sales_table(
    num_rows: int,
    seed: Optional[int] = None,
    region_cardinality: int = 16,
    product_cardinality: int = 64,
    quantity_bits: int = 8,
) -> ColumnTable:
    """Generate the synthetic analytics table used by the E4 benchmark.

    Columns:

    * ``region`` — low-cardinality dimension, Zipf-skewed (bitmap indexed),
    * ``product`` — medium-cardinality dimension, Zipf-skewed,
    * ``quantity`` — ``quantity_bits``-bit measure, uniform (BitWeaving),
    * ``discount`` — 4-bit measure, geometric-ish skew.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    rng = np.random.default_rng(seed)
    table = ColumnTable(name="sales", num_rows=num_rows)

    def zipf_codes(cardinality: int) -> np.ndarray:
        ranks = np.arange(1, cardinality + 1, dtype=np.float64)
        probabilities = 1.0 / ranks
        probabilities /= probabilities.sum()
        return rng.choice(cardinality, size=num_rows, p=probabilities)

    table.add_column("region", zipf_codes(region_cardinality), region_cardinality)
    table.add_column("product", zipf_codes(product_cardinality), product_cardinality)
    table.add_column(
        "quantity", rng.integers(0, 1 << quantity_bits, size=num_rows), 1 << quantity_bits
    )
    discount = np.minimum(
        rng.geometric(p=0.3, size=num_rows) - 1, 15
    )
    table.add_column("discount", discount, 16)
    return table
