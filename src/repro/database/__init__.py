"""Database substrate: bitmap indices and BitWeaving scans.

The Ambit evaluation's end-to-end experiment runs real database queries
whose inner loops are bulk bitwise operations:

* **Bitmap indices** — one bit vector per (column, value) pair; conjunctive
  and disjunctive predicates become bulk ANDs/ORs of those vectors, and the
  result cardinality is a population count.
* **BitWeaving/V** — a column of ``k``-bit codes stored as ``k`` vertical
  bit planes; range and equality predicates are evaluated with a short
  sequence of bulk bitwise operations per bit plane, independent of the
  number of rows per word.

Both query styles can execute their bulk bitwise operations either on the
host CPU (where performance collapses once the bit vectors no longer fit in
the cache hierarchy) or on Ambit (constant row-parallel throughput) — the
comparison that produces the paper's 2x–12x query-latency reduction (E4).
"""

from repro.database.tables import ColumnTable, generate_sales_table
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine, QueryResult, ScanBackend
from repro.database.sharding import BitmapIndexShardView, TableShardView

__all__ = [
    "BitWeavingColumn",
    "BitmapIndex",
    "BitmapIndexShardView",
    "ColumnTable",
    "QueryEngine",
    "QueryResult",
    "ScanBackend",
    "TableShardView",
    "generate_sales_table",
]
