"""BitWeaving/V: vertical bit-parallel column layout and predicate scans.

BitWeaving (Li & Patel, SIGMOD 2013) stores a column of ``k``-bit codes as
``k`` bit planes: plane ``i`` holds bit ``i`` of every row's code.  A
predicate such as ``col < c`` is then evaluated with a constant number of
bulk bitwise operations per plane, independent of how many rows share a
word — exactly the kind of bulk bitwise workload Ambit accelerates.

The classic bit-serial comparison recurrence (MSB first) is::

    lt = 0; eq = ~0
    for i in MSB..LSB:
        lt |= eq & ~plane_i & c_i        # code bit 0 where constant bit 1
        eq &= ~(plane_i ^ c_i)           # still equal on this prefix
    result(col <  c) = lt
    result(col == c) = eq
    result(col <= c) = lt | eq

Each plane step costs a handful of bulk AND/OR/NOT operations; the plan
object records exactly how many of each, so the execution backends can
attribute latency and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.database.tables import ColumnTable


@dataclass
class ScanPlan:
    """Bulk-operation plan of one BitWeaving predicate scan.

    Attributes:
        result_bits: Rows covered (bit-vector length of every operation).
        planes_touched: Number of bit planes the scan read.
        sequence: The operations in issue order (one entry per operation).
            Batch executors use the order to fuse adjacent operations (e.g.
            a NOT feeding straight into an AND) without changing the
            counts — and therefore the attributed latency and energy.
    """

    result_bits: int = 0
    planes_touched: int = 0
    sequence: List[str] = field(default_factory=list)

    def add(self, op: str, count: int = 1) -> None:
        """Add ``count`` operations of kind ``op`` to the plan."""
        self.sequence.extend([op] * count)

    @property
    def operations(self) -> Dict[str, int]:
        """Counts of bulk bitwise operations by kind (derived from order)."""
        counts: Dict[str, int] = {}
        for op in self.sequence:
            counts[op] = counts.get(op, 0) + 1
        return counts

    @property
    def total_operations(self) -> int:
        """Total bulk bitwise operations in the plan."""
        return sum(self.operations.values())


class BitWeavingColumn:
    """One column stored in the BitWeaving/V vertical layout."""

    def __init__(self, codes: np.ndarray, num_bits: int) -> None:
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim != 1:
            raise ValueError("codes must be one-dimensional")
        if num_bits <= 0 or num_bits > 32:
            raise ValueError("num_bits must be in [1, 32]")
        if codes.size and codes.max() >= (1 << num_bits):
            raise ValueError("codes do not fit in num_bits")
        if codes.size and codes.min() < 0:
            raise ValueError("codes must be non-negative")
        self.num_rows = codes.size
        self.num_bits = num_bits
        # planes[i] is the packed bit plane of bit i (LSB = plane 0).
        self.planes: List[np.ndarray] = []
        for bit in range(num_bits):
            plane_bits = ((codes >> bit) & 1).astype(np.uint8)
            self.planes.append(np.packbits(plane_bits, bitorder="little"))

    @classmethod
    def from_table(cls, table: ColumnTable, column: str) -> "BitWeavingColumn":
        """Build the vertical layout of one table column."""
        return cls(table.column(column), table.column_bits(column))

    def storage_bytes(self) -> int:
        """Bytes of all bit planes."""
        return sum(plane.size for plane in self.planes)

    # ------------------------------------------------------------------
    # Predicate scans
    # ------------------------------------------------------------------
    def _packed_length(self) -> int:
        return (self.num_rows + 7) // 8

    def _ones(self) -> np.ndarray:
        result = np.full(self._packed_length(), 0xFF, dtype=np.uint8)
        # Clear padding bits past num_rows.
        extra = self._packed_length() * 8 - self.num_rows
        if extra:
            result[-1] = (1 << (8 - extra)) - 1 if (8 - extra) else 0
        return result

    def _zeros(self) -> np.ndarray:
        return np.zeros(self._packed_length(), dtype=np.uint8)

    def scan_less_than(self, constant: int) -> Tuple[np.ndarray, ScanPlan]:
        """Evaluate ``col < constant``; returns (packed result, plan)."""
        return self._compare(constant, include_equal=False)

    def scan_less_equal(self, constant: int) -> Tuple[np.ndarray, ScanPlan]:
        """Evaluate ``col <= constant``; returns (packed result, plan)."""
        return self._compare(constant, include_equal=True)

    def scan_equal(self, constant: int) -> Tuple[np.ndarray, ScanPlan]:
        """Evaluate ``col == constant``; returns (packed result, plan)."""
        self._check_constant(constant)
        plan = ScanPlan(result_bits=self.num_rows, planes_touched=self.num_bits)
        eq = self._ones()
        for bit in reversed(range(self.num_bits)):
            plane = self.planes[bit]
            constant_bit = (constant >> bit) & 1
            if constant_bit:
                eq = eq & plane
                plan.add("and")
            else:
                eq = eq & np.bitwise_not(plane)
                plan.add("not")
                plan.add("and")
        return eq, plan

    def scan(self, kind: str, *constants: int) -> Tuple[np.ndarray, ScanPlan]:
        """Dispatch a predicate scan by name.

        Args:
            kind: One of ``less_than``, ``less_equal``, ``equal``,
                ``between``.
            constants: One constant, or (low, high) for ``between``.
        """
        if kind == "less_than":
            (constant,) = constants
            return self.scan_less_than(constant)
        if kind == "less_equal":
            (constant,) = constants
            return self.scan_less_equal(constant)
        if kind == "equal":
            (constant,) = constants
            return self.scan_equal(constant)
        if kind == "between":
            low, high = constants
            return self.scan_range(low, high)
        raise ValueError(f"unknown scan kind {kind!r}")

    def scan_range(self, low: int, high: int) -> Tuple[np.ndarray, ScanPlan]:
        """Evaluate ``low <= col <= high``; returns (packed result, plan)."""
        if low > high:
            raise ValueError("low must be <= high")
        below_low, plan_low = self._compare(low, include_equal=False)
        at_most_high, plan_high = self._compare(high, include_equal=True)
        result = at_most_high & np.bitwise_not(below_low)
        plan = ScanPlan(result_bits=self.num_rows, planes_touched=2 * self.num_bits)
        for op in plan_low.sequence:
            plan.add(op)
        for op in plan_high.sequence:
            plan.add(op)
        plan.add("not")
        plan.add("and")
        return result, plan

    def _check_constant(self, constant: int) -> None:
        if constant < 0 or constant >= (1 << self.num_bits):
            raise ValueError(f"constant {constant} does not fit in {self.num_bits} bits")

    def _compare(self, constant: int, include_equal: bool) -> Tuple[np.ndarray, ScanPlan]:
        self._check_constant(constant)
        plan = ScanPlan(result_bits=self.num_rows, planes_touched=self.num_bits)
        lt = self._zeros()
        eq = self._ones()
        for bit in reversed(range(self.num_bits)):
            plane = self.planes[bit]
            constant_bit = (constant >> bit) & 1
            if constant_bit:
                # Rows whose bit is 0 while the constant's bit is 1 are smaller.
                lt = lt | (eq & np.bitwise_not(plane))
                plan.add("not")
                plan.add("and")
                plan.add("or")
                eq = eq & plane
                plan.add("and")
            else:
                # Rows whose bit is 1 while the constant's bit is 0 are larger.
                eq = eq & np.bitwise_not(plane)
                plan.add("not")
                plan.add("and")
        if include_equal:
            result = lt | eq
            plan.add("or")
        else:
            result = lt
        return result, plan

    # ------------------------------------------------------------------
    # Reference check
    # ------------------------------------------------------------------
    def reference_scan(self, codes: np.ndarray, predicate) -> np.ndarray:
        """Packed result of evaluating ``predicate`` row by row (for tests)."""
        bits = predicate(np.asarray(codes)).astype(np.uint8)
        return np.packbits(bits, bitorder="little")
