"""Bitmap indices over dictionary-encoded columns.

A bitmap index stores, for every distinct value of a column, a bit vector
with one bit per row that is set when the row holds that value.  Predicates
over indexed columns become bulk bitwise operations over whole bit vectors:

* ``col = v``                    -> the bitmap of ``v``
* ``col IN (v1, v2, ...)``       -> OR of the bitmaps
* ``p1 AND p2`` / ``p1 OR p2``   -> AND / OR of the predicate results
* ``COUNT(*)``                   -> population count of the final bitmap

This module provides the index structure and the *functional* evaluation
(the actual result bits); the latency/energy of executing the bulk
operations on the CPU or on Ambit is attributed by
:mod:`repro.database.queries`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.database.tables import ColumnTable


@dataclass
class BitmapPlan:
    """The bulk-operation plan produced by compiling a predicate.

    Attributes:
        operations: Sequence of (op, number_of_operand_pairs) entries, e.g.
            ``[("or", 2), ("and", 1)]`` — the work the execution backend has
            to account for.
        result_bits: Row count (length of every bit vector involved).
    """

    operations: List[Tuple[str, int]]
    result_bits: int

    @property
    def total_operations(self) -> int:
        """Total number of bulk bitwise operations in the plan."""
        return sum(count for _, count in self.operations)


class BitmapIndex:
    """Bitmap index over one or more columns of a :class:`ColumnTable`."""

    def __init__(self, table: ColumnTable, columns: Iterable[str]) -> None:
        self.table = table
        self.bitmaps: Dict[str, Dict[int, np.ndarray]] = {}
        #: Columns whose planes are stale relative to the table (lazy
        #: maintenance).  Reads rebuild through :meth:`_ensure_clean`.
        self._dirty: Set[str] = set()
        #: Count of lazy column rebuilds performed (read-side repair).
        self.rebuilds = 0
        for column in columns:
            self.rebuild_column(column)

    @property
    def num_rows(self) -> int:
        """Rows covered by the index."""
        return self.table.num_rows

    def indexed_columns(self) -> List[str]:
        """Names of the indexed columns."""
        return list(self.bitmaps)

    def bitmap(self, column: str, value: int) -> np.ndarray:
        """Packed bitmap of ``column = value``.

        The single read accessor: a lazily-maintained column is rebuilt
        here, on first read after a write marked it dirty.
        """
        self._ensure_clean(column)
        try:
            return self.bitmaps[column][value]
        except KeyError as exc:
            raise KeyError(f"no bitmap for {column!r} = {value}") from exc

    # ------------------------------------------------------------------
    # Maintenance (the write path; policy lives in repro.storage)
    # ------------------------------------------------------------------
    def mark_dirty(self, columns: Iterable[str]) -> None:
        """Mark columns stale; the next read through :meth:`bitmap`
        rebuilds them (lazy maintenance)."""
        for column in columns:
            if column not in self.bitmaps:
                raise KeyError(f"column {column!r} is not indexed")
            self._dirty.add(column)

    def dirty_columns(self) -> List[str]:
        """Indexed columns currently marked stale (sorted for determinism)."""
        return sorted(self._dirty)

    def _ensure_clean(self, column: str) -> None:
        if column in self._dirty:
            self.rebuild_column(column)
            self._dirty.discard(column)
            self.rebuilds += 1

    def rebuild_column(self, column: str) -> None:
        """Recompute one column's planes from the table (from scratch)."""
        codes = self.table.column(column)
        cardinality = self.table.cardinalities[column]
        column_bitmaps: Dict[int, np.ndarray] = {}
        for value in range(cardinality):
            bits = (codes == value).astype(np.uint8)
            column_bitmaps[value] = np.packbits(bits, bitorder="little")
        self.bitmaps[column] = column_bitmaps

    def refresh_columns(self, columns: Iterable[str]) -> None:
        """Eagerly recompute planes for ``columns`` and clear their dirt."""
        for column in columns:
            if column not in self.bitmaps:
                raise KeyError(f"column {column!r} is not indexed")
            self.rebuild_column(column)
            self._dirty.discard(column)

    def apply_update(
        self,
        column: str,
        row_ids: np.ndarray,
        old_codes: np.ndarray,
        new_codes: np.ndarray,
    ) -> int:
        """Incrementally maintain one column's planes after an in-place
        update (eager maintenance).

        For each distinct old value the affected rows' bits are cleared;
        for each distinct new value they are set.  Planes for codes the
        index has never seen are created zero-filled first (dictionary
        growth).  Returns the number of distinct planes touched — the op
        count the maintenance policy charges.

        The caller must pass the codes *before* the table mutation
        (``old_codes``); the column must not be dirty (incremental deltas
        over stale planes would compound the staleness).
        """
        if column in self._dirty:
            raise ValueError(
                f"column {column!r} is dirty; rebuild before incremental maintenance"
            )
        planes = self.bitmaps[column]
        packed_len = (self.num_rows + 7) // 8
        touched = 0
        # Dictionary growth: materialize zero planes up to the (already
        # widened) cardinality so the incremental result is structurally
        # identical to a from-scratch rebuild, not just bit-equal on the
        # planes both have.
        for value in range(self.table.cardinalities[column]):
            if value not in planes:
                planes[value] = np.zeros(packed_len, dtype=np.uint8)
        changed = old_codes != new_codes
        if not np.any(changed):
            return 0
        ids = row_ids[changed]
        olds = old_codes[changed]
        news = new_codes[changed]
        for value in np.unique(olds):
            sel = ids[olds == value]
            plane = planes[int(value)]
            np.bitwise_and.at(
                plane, sel // 8, (~(np.uint8(1) << (sel % 8).astype(np.uint8))) & np.uint8(0xFF)
            )
            touched += 1
        for value in np.unique(news):
            sel = ids[news == value]
            plane = planes[int(value)]
            np.bitwise_or.at(plane, sel // 8, np.uint8(1) << (sel % 8).astype(np.uint8))
            touched += 1
        return touched

    def storage_bytes(self) -> int:
        """Total bytes of all bitmaps (the index's memory footprint)."""
        return sum(
            bitmap.size for column in self.bitmaps.values() for bitmap in column.values()
        )

    # ------------------------------------------------------------------
    # Predicate evaluation
    # ------------------------------------------------------------------
    def evaluate_in(self, column: str, values: Sequence[int]) -> Tuple[np.ndarray, BitmapPlan]:
        """Evaluate ``column IN values``; returns (packed result, plan)."""
        if not values:
            raise ValueError("values must not be empty")
        result = self.bitmap(column, values[0]).copy()
        for value in values[1:]:
            result |= self.bitmap(column, value)
        plan = BitmapPlan(
            operations=[("or", max(0, len(values) - 1))], result_bits=self.num_rows
        )
        return result, plan

    def evaluate_conjunction(
        self, predicates: Sequence[Tuple[str, Sequence[int]]]
    ) -> Tuple[np.ndarray, BitmapPlan]:
        """Evaluate ``AND`` of per-column ``IN`` predicates.

        Args:
            predicates: Sequence of (column, values) pairs.

        Returns:
            (packed result bitmap, bulk-operation plan).
        """
        if not predicates:
            raise ValueError("predicates must not be empty")
        operations: List[Tuple[str, int]] = []
        result: np.ndarray = None
        for column, values in predicates:
            partial, plan = self.evaluate_in(column, list(values))
            operations.extend(op for op in plan.operations if op[1] > 0)
            if result is None:
                result = partial
            else:
                result &= partial
        if len(predicates) > 1:
            operations.append(("and", len(predicates) - 1))
        return result, BitmapPlan(operations=operations, result_bits=self.num_rows)

    # ------------------------------------------------------------------
    # Lowering to primitive bulk operations (service-pipeline hook)
    # ------------------------------------------------------------------
    def lower_conjunction(
        self,
        predicates: Sequence[Tuple[str, Sequence[int]]],
        row_size_bytes: int = 8192,
    ) -> Tuple[List[Tuple[str, BulkBitVector, BulkBitVector, BulkBitVector]], BulkBitVector, BitmapPlan]:
        """Lower a conjunction into primitive bulk bitwise steps.

        Each step is ``(op, a, b, out)`` over host-only
        :class:`BulkBitVector` operands: first the OR chain of each
        predicate's value bitmaps, then the AND chain across predicates.
        The steps are data-dependent in order (each ``out`` feeds a later
        operand), so an executor must run them in sequence.  The step count
        matches :meth:`evaluate_conjunction`'s :class:`BitmapPlan` exactly,
        so charging each step at the engine's bulk-operation cost attributes
        the same total latency and energy as the plan-level cost model.

        Args:
            predicates: (column, values) pairs.
            row_size_bytes: Row size of the *target device* — the vectors'
                row-chunk count, and therefore the cost the executor
                charges per step, is derived from it.  Callers lowering for
                an engine must pass its device's row size or the charged
                cost diverges from the plan-level model.

        Returns:
            (steps, result vector, plan).  With one single-value predicate
            the step list is empty and the result is the bitmap itself.

        The expansion itself lives in the shared plan IR
        (:func:`repro.api.plans.lower_conjunction_steps`), which both the
        single-device planner and every cluster shard lower through; this
        method remains as the index-side convenience surface.
        """
        from repro.api.plans import lower_conjunction_steps  # local: avoid cycle

        return lower_conjunction_steps(self, predicates, row_size_bytes=row_size_bytes)

    @staticmethod
    def count(packed_bitmap: np.ndarray, num_rows: int) -> int:
        """COUNT(*) over a packed result bitmap."""
        bits = np.unpackbits(packed_bitmap, bitorder="little")[:num_rows]
        return int(bits.sum())

    def shard_view(self, columns: Iterable[str]) -> "BitmapIndexShardView":
        """A zero-copy view restricted to ``columns`` (cluster placement hook).

        The view lowers and evaluates conjunctions shard-locally; see
        :mod:`repro.database.sharding`.
        """
        from repro.database.sharding import BitmapIndexShardView  # local: avoid cycle

        return BitmapIndexShardView(self, columns)

    def as_bulk_vectors(self, column: str) -> Dict[int, BulkBitVector]:
        """Return the column's bitmaps as :class:`BulkBitVector` objects.

        Used by examples that want to run the index's operations through the
        Ambit engine functionally.
        """
        self._ensure_clean(column)
        vectors = {}
        for value, packed in self.bitmaps[column].items():
            vector = BulkBitVector(self.num_rows)
            vector.data[: packed.size] = packed
            vectors[value] = vector
        return vectors
