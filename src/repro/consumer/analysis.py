"""End-to-end consumer-workload study: E6 and E7.

:class:`ConsumerStudy` combines the workload models, the host energy model,
and the PIM offload engine to regenerate the study's headline rows:

* per-workload data-movement energy fraction and the cross-workload average
  (E6, paper figure: 62.7%),
* per-workload energy and execution-time reduction when the target
  functions run on a PIM core or PIM accelerator, plus the logic-layer
  area-fit check (E7, paper figures: −55.4% energy, −54.2% time, areas
  9.4% / 35.4% of a vault's share).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import ResultTable
from repro.consumer.energy_model import ConsumerEnergyModel, ConsumerEnergyParameters, EnergyAccount
from repro.consumer.pim_logic import PimOffloadEngine, PimOffloadResult
from repro.consumer.workloads import ConsumerWorkload, default_workloads
from repro.stacked.logic_layer import ComputeSiteKind


@dataclass
class WorkloadEnergyReport:
    """E6 row: where one workload's energy goes when run on the host."""

    workload: str
    account: EnergyAccount

    @property
    def data_movement_fraction(self) -> float:
        """Fraction of total energy spent on data movement."""
        return self.account.data_movement_fraction


@dataclass
class OffloadComparison:
    """E7 row: host baseline vs. PIM-core and PIM-accelerator offload."""

    workload: str
    host: EnergyAccount
    pim_core: PimOffloadResult
    pim_accelerator: PimOffloadResult

    def energy_reduction_percent(self, kind: ComputeSiteKind) -> float:
        """Total-energy reduction of the chosen offload vs. the host (0-100)."""
        result = self._result(kind)
        return (self.host.total_j - result.account.total_j) / self.host.total_j * 100.0

    def time_reduction_percent(self, kind: ComputeSiteKind) -> float:
        """Execution-time reduction of the chosen offload vs. the host (0-100)."""
        result = self._result(kind)
        return (self.host.time_s - result.account.time_s) / self.host.time_s * 100.0

    def _result(self, kind: ComputeSiteKind) -> PimOffloadResult:
        if kind is ComputeSiteKind.GENERAL_PURPOSE_CORE:
            return self.pim_core
        if kind is ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR:
            return self.pim_accelerator
        raise ValueError("kind must be a PIM core or PIM accelerator")


class ConsumerStudy:
    """Runs the full consumer-workload analysis over a set of workloads."""

    def __init__(
        self,
        workloads: Optional[List[ConsumerWorkload]] = None,
        energy_parameters: Optional[ConsumerEnergyParameters] = None,
        offload_engine: Optional[PimOffloadEngine] = None,
    ) -> None:
        self.workloads = workloads or default_workloads()
        self.energy_parameters = energy_parameters or ConsumerEnergyParameters.chromebook()
        self.host_model = ConsumerEnergyModel(self.energy_parameters)
        self.offload_engine = offload_engine or PimOffloadEngine(self.energy_parameters)

    # ------------------------------------------------------------------
    # E6: data-movement energy fraction
    # ------------------------------------------------------------------
    def energy_fraction_reports(self) -> List[WorkloadEnergyReport]:
        """Per-workload host-execution energy accounts."""
        return [
            WorkloadEnergyReport(w.name, self.host_model.workload_account(w))
            for w in self.workloads
        ]

    def average_data_movement_fraction(self) -> float:
        """Cross-workload average data-movement energy fraction."""
        return arithmetic_mean(
            [r.data_movement_fraction for r in self.energy_fraction_reports()]
        )

    def energy_fraction_table(self) -> ResultTable:
        """Render the E6 rows."""
        table = ResultTable(
            title="E6: data movement share of total system energy (host execution)",
            columns=["workload", "total_mj", "data_movement_mj", "movement_fraction"],
        )
        reports = self.energy_fraction_reports()
        for report in reports:
            table.add_row(
                report.workload,
                report.account.total_j * 1e3,
                report.account.data_movement_j * 1e3,
                report.data_movement_fraction,
            )
        table.add_row(
            "average",
            arithmetic_mean([r.account.total_j for r in reports]) * 1e3,
            arithmetic_mean([r.account.data_movement_j for r in reports]) * 1e3,
            self.average_data_movement_fraction(),
        )
        return table

    # ------------------------------------------------------------------
    # E7: PIM offload comparison
    # ------------------------------------------------------------------
    def offload_comparisons(self) -> List[OffloadComparison]:
        """Per-workload host vs. PIM-core vs. PIM-accelerator comparison."""
        comparisons = []
        for workload in self.workloads:
            host = self.host_model.workload_account(workload)
            core = self.offload_engine.execute(workload, ComputeSiteKind.GENERAL_PURPOSE_CORE)
            accel = self.offload_engine.execute(
                workload, ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR
            )
            comparisons.append(OffloadComparison(workload.name, host, core, accel))
        return comparisons

    def average_reductions(self) -> Dict[str, float]:
        """Average energy/time reductions for both offload kinds (percent)."""
        comparisons = self.offload_comparisons()
        result = {}
        for label, kind in (
            ("pim_core", ComputeSiteKind.GENERAL_PURPOSE_CORE),
            ("pim_accelerator", ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR),
        ):
            result[f"{label}_energy_reduction_percent"] = arithmetic_mean(
                [c.energy_reduction_percent(kind) for c in comparisons]
            )
            result[f"{label}_time_reduction_percent"] = arithmetic_mean(
                [c.time_reduction_percent(kind) for c in comparisons]
            )
        return result

    def offload_table(self) -> ResultTable:
        """Render the E7 rows."""
        table = ResultTable(
            title="E7: PIM offload of target functions (reductions vs. host, %)",
            columns=[
                "workload",
                "core_energy_red",
                "core_time_red",
                "accel_energy_red",
                "accel_time_red",
            ],
        )
        comparisons = self.offload_comparisons()
        for c in comparisons:
            table.add_row(
                c.workload,
                c.energy_reduction_percent(ComputeSiteKind.GENERAL_PURPOSE_CORE),
                c.time_reduction_percent(ComputeSiteKind.GENERAL_PURPOSE_CORE),
                c.energy_reduction_percent(ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR),
                c.time_reduction_percent(ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR),
            )
        averages = self.average_reductions()
        table.add_row(
            "average",
            averages["pim_core_energy_reduction_percent"],
            averages["pim_core_time_reduction_percent"],
            averages["pim_accelerator_energy_reduction_percent"],
            averages["pim_accelerator_time_reduction_percent"],
        )
        return table

    def area_table(self) -> ResultTable:
        """Render the logic-layer area-fit rows of E7."""
        engine = self.offload_engine
        table = ResultTable(
            title="E7: PIM logic area vs. the logic layer's per-vault budget",
            columns=["site", "area_mm2", "budget_mm2", "fraction", "fits"],
        )
        comparisons = self.offload_comparisons()
        if comparisons:
            core = comparisons[0].pim_core
            accel = comparisons[0].pim_accelerator
            budget = engine.budget.area_per_vault_mm2
            table.add_row("pim_core", core.area_mm2, budget, core.area_fraction, core.fits_budget)
            table.add_row(
                "pim_accelerator", accel.area_mm2, budget, accel.area_fraction, accel.fits_budget
            )
        return table
