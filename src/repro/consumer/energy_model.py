"""Mobile-SoC energy model for the consumer-workload study.

The study attributes every joule of a workload's execution to either
*computation* (the CPU pipelines doing arithmetic) or *data movement*
(moving bytes through the caches, the SoC interconnect, and the off-chip
LPDDR interface).  The E6 experiment reproduces the headline observation
that data movement accounts for ~62.7% of total system energy.

Calibration: per-instruction core energy of a mobile big core is on the
order of 100 pJ (including fetch/decode/register file); LPDDR3/4 interface
energy is 80–120 pJ per byte end to end; on-chip SRAM and interconnect add
a few pJ per byte per level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.consumer.workloads import ConsumerWorkload, ExecutionPhase


@dataclass(frozen=True)
class ConsumerEnergyParameters:
    """Energy/performance parameters of the consumer device's SoC.

    Attributes:
        cpu_energy_per_instruction_j: Whole-core energy per instruction.
        cache_energy_per_byte_j: Energy per byte moved through the on-chip
            caches (averaged over the levels a byte traverses).
        interconnect_energy_per_byte_j: SoC interconnect energy per byte.
        dram_energy_per_byte_j: Off-chip LPDDR energy per byte (array +
            I/O + controller).
        static_power_w: SoC + DRAM static power.
        cpu_ops_per_second: Aggregate instruction throughput of the host
            CPU cluster.
        dram_bandwidth_bytes_per_s: Peak LPDDR bandwidth.
        scattered_bandwidth_derate: Fraction of peak bandwidth achieved by
            scattered (non-streaming) access patterns.
    """

    cpu_energy_per_instruction_j: float = 0.9e-10
    cache_energy_per_byte_j: float = 1.2e-12
    interconnect_energy_per_byte_j: float = 2.5e-12
    dram_energy_per_byte_j: float = 1.2e-10
    static_power_w: float = 0.35
    cpu_ops_per_second: float = 4 * 2.2e9 * 2.0
    dram_bandwidth_bytes_per_s: float = 12.8e9
    scattered_bandwidth_derate: float = 0.45

    @classmethod
    def chromebook(cls) -> "ConsumerEnergyParameters":
        """The Chromebook-class device used by the study."""
        return cls()


@dataclass
class EnergyAccount:
    """Energy attributed to compute vs. data movement for one execution.

    Attributes:
        compute_j: CPU (or PIM) computation energy.
        cache_j: On-chip cache data-movement energy.
        interconnect_j: SoC interconnect data-movement energy.
        dram_j: Off-chip DRAM data-movement energy.
        static_j: Static energy over the execution time.
        time_s: Execution time.
    """

    compute_j: float = 0.0
    cache_j: float = 0.0
    interconnect_j: float = 0.0
    dram_j: float = 0.0
    static_j: float = 0.0
    time_s: float = 0.0

    @property
    def data_movement_j(self) -> float:
        """Energy spent moving data through the hierarchy."""
        return self.cache_j + self.interconnect_j + self.dram_j

    @property
    def total_j(self) -> float:
        """Total energy including static."""
        return self.compute_j + self.data_movement_j + self.static_j

    @property
    def data_movement_fraction(self) -> float:
        """Fraction of total energy spent on data movement."""
        total = self.total_j
        return self.data_movement_j / total if total > 0 else 0.0

    def accumulate(self, other: "EnergyAccount") -> None:
        """Add another account's components into this one."""
        self.compute_j += other.compute_j
        self.cache_j += other.cache_j
        self.interconnect_j += other.interconnect_j
        self.dram_j += other.dram_j
        self.static_j += other.static_j
        self.time_s += other.time_s


class ConsumerEnergyModel:
    """Computes host-execution time and energy accounts for workloads."""

    def __init__(self, parameters: ConsumerEnergyParameters = None) -> None:
        self.parameters = parameters or ConsumerEnergyParameters.chromebook()

    # ------------------------------------------------------------------
    # Per-phase accounting
    # ------------------------------------------------------------------
    def phase_time_s(self, phase: ExecutionPhase) -> float:
        """Host execution time of one phase (roofline of compute and memory)."""
        p = self.parameters
        compute_s = phase.host_instructions / p.cpu_ops_per_second
        streaming_bytes = phase.dram_bytes * phase.streaming_fraction
        scattered_bytes = phase.dram_bytes - streaming_bytes
        memory_s = (
            streaming_bytes / p.dram_bandwidth_bytes_per_s
            + scattered_bytes / (p.dram_bandwidth_bytes_per_s * p.scattered_bandwidth_derate)
        )
        return max(compute_s, memory_s)

    def phase_account(self, phase: ExecutionPhase) -> EnergyAccount:
        """Energy account of one phase executed on the host."""
        p = self.parameters
        time_s = self.phase_time_s(phase)
        total_on_chip = phase.dram_bytes + phase.on_chip_bytes
        return EnergyAccount(
            compute_j=phase.host_instructions * p.cpu_energy_per_instruction_j,
            cache_j=total_on_chip * p.cache_energy_per_byte_j,
            interconnect_j=total_on_chip * p.interconnect_energy_per_byte_j,
            dram_j=phase.dram_bytes * p.dram_energy_per_byte_j,
            static_j=p.static_power_w * time_s,
            time_s=time_s,
        )

    # ------------------------------------------------------------------
    # Whole-workload accounting
    # ------------------------------------------------------------------
    def workload_account(self, workload: ConsumerWorkload) -> EnergyAccount:
        """Energy account of a whole workload executed entirely on the host."""
        return self.combine(self.phase_account(p) for p in workload.phases)

    @staticmethod
    def combine(accounts: Iterable[EnergyAccount]) -> EnergyAccount:
        """Sum a sequence of accounts (phases execute back to back)."""
        total = EnergyAccount()
        for account in accounts:
            total.accumulate(account)
        return total
