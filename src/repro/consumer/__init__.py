"""Google consumer-workload PIM analysis (Boroumand et al., ASPLOS 2018).

The paper's consumer-device study analyzes four widely used Google
workloads — the Chrome browser, TensorFlow Mobile, VP9 video playback, and
VP9 video capture — and finds that **62.7% of total system energy** is
spent moving data through the memory hierarchy.  It then identifies the
data-movement-heavy *target functions* of each workload, shows they consist
of simple operations, and evaluates offloading them to either a small
general-purpose PIM core or a fixed-function PIM accelerator in the logic
layer of a 3D-stacked memory, subject to that layer's area budget.

This subpackage reproduces that accounting:

* :mod:`repro.consumer.workloads` — analytical models of the four
  workloads, each decomposed into target functions and a host-resident
  remainder, with per-phase instruction counts and data-movement volumes,
* :mod:`repro.consumer.energy_model` — the mobile-SoC energy model used to
  attribute energy to compute vs. data movement,
* :mod:`repro.consumer.pim_logic` — PIM-core / PIM-accelerator offload
  execution models and the logic-layer area-fit check,
* :mod:`repro.consumer.analysis` — the end-to-end comparison that
  regenerates the E6/E7 experiment rows.
"""

from repro.consumer.analysis import ConsumerStudy, OffloadComparison, WorkloadEnergyReport
from repro.consumer.energy_model import ConsumerEnergyParameters, EnergyAccount
from repro.consumer.pim_logic import PimOffloadEngine, PimOffloadResult
from repro.consumer.workloads import (
    ConsumerWorkload,
    ExecutionPhase,
    chrome_browser,
    default_workloads,
    tensorflow_mobile,
    vp9_capture,
    vp9_playback,
)

__all__ = [
    "ConsumerEnergyParameters",
    "ConsumerStudy",
    "ConsumerWorkload",
    "EnergyAccount",
    "ExecutionPhase",
    "OffloadComparison",
    "PimOffloadEngine",
    "PimOffloadResult",
    "WorkloadEnergyReport",
    "chrome_browser",
    "default_workloads",
    "tensorflow_mobile",
    "vp9_capture",
    "vp9_playback",
]
