"""PIM offload execution models for the consumer workloads.

The study evaluates two ways of implementing the target functions in the
logic layer of a 3D-stacked memory:

* **PIM core** — a single small general-purpose in-order core per vault,
  which can run any target function but executes it instruction by
  instruction.
* **PIM accelerator** — one small fixed-function datapath per target
  function, an order of magnitude more efficient per operation but usable
  only for its function.

Offloaded phases read and write memory through the vault TSVs (cheap and
high-bandwidth) instead of the host's cache hierarchy and LPDDR interface;
the remaining host phases are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.consumer.energy_model import (
    ConsumerEnergyModel,
    ConsumerEnergyParameters,
    EnergyAccount,
)
from repro.consumer.workloads import ConsumerWorkload, ExecutionPhase
from repro.stacked.logic_layer import ComputeSiteKind, LogicLayerBudget, PimComputeSite
from repro.stacked.vault import VaultParameters


@dataclass
class PimOffloadResult:
    """Result of executing one workload with its target functions offloaded.

    Attributes:
        workload: Workload name.
        site_kind: Which PIM logic executed the target functions.
        account: Combined energy/time account (host + PIM portions).
        host_account: Account of the phases that stayed on the host.
        pim_account: Account of the offloaded phases.
        area_mm2: Logic-layer area used by the PIM logic.
        area_fraction: Fraction of one vault's area budget used.
        fits_budget: Whether the PIM logic fits the area budget.
    """

    workload: str
    site_kind: ComputeSiteKind
    account: EnergyAccount
    host_account: EnergyAccount
    pim_account: EnergyAccount
    area_mm2: float
    area_fraction: float
    fits_budget: bool


class PimOffloadEngine:
    """Executes consumer workloads with target functions offloaded to PIM.

    Args:
        energy_parameters: Host-side energy parameters.
        vault: Stacked-memory vault parameters (TSV bandwidth/energy).
        budget: Logic-layer area budget.
        vaults_used: Number of vaults an offloaded phase's data is spread
            over (the study spreads frames/matrices across a few vaults,
            giving the PIM logic proportional bandwidth).
    """

    def __init__(
        self,
        energy_parameters: Optional[ConsumerEnergyParameters] = None,
        vault: Optional[VaultParameters] = None,
        budget: Optional[LogicLayerBudget] = None,
        vaults_used: int = 4,
    ) -> None:
        self.energy_parameters = energy_parameters or ConsumerEnergyParameters.chromebook()
        self.host_model = ConsumerEnergyModel(self.energy_parameters)
        self.vault = vault or VaultParameters.hmc2()
        self.budget = budget or LogicLayerBudget()
        if vaults_used <= 0:
            raise ValueError("vaults_used must be positive")
        self.vaults_used = vaults_used

    # ------------------------------------------------------------------
    # Offloaded-phase execution
    # ------------------------------------------------------------------
    def pim_phase_account(self, phase: ExecutionPhase, site: PimComputeSite) -> EnergyAccount:
        """Energy/time account of one target function executed on PIM logic."""
        if not phase.is_target_function:
            raise ValueError(f"phase {phase.name!r} is not a target function")
        ops = phase.effective_pim_ops
        if site.kind is ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR:
            # A fixed-function datapath retires several simple operations per
            # cycle and elides the instruction-control overhead entirely.
            ops = ops / 4.0
        compute_s = ops / (site.ops_per_second * self.vaults_used)
        bandwidth = self.vault.tsv_bandwidth_bytes_per_s * self.vaults_used
        memory_s = phase.dram_bytes / bandwidth
        time_s = max(compute_s, memory_s)
        memory_energy_j = phase.dram_bytes * (
            self.vault.tsv_energy_per_byte_j + 6.0 * 8 * 1e-12  # TSV + stacked array
        )
        return EnergyAccount(
            compute_j=site.compute_energy_j(int(ops)),
            cache_j=0.0,
            interconnect_j=0.0,
            dram_j=memory_energy_j,
            static_j=(site.dynamic_power_w * 0.1 * self.vaults_used) * time_s,
            time_s=time_s,
        )

    # ------------------------------------------------------------------
    # Whole-workload offload
    # ------------------------------------------------------------------
    def execute(
        self, workload: ConsumerWorkload, site_kind: ComputeSiteKind
    ) -> PimOffloadResult:
        """Execute ``workload`` with its target functions on the given PIM logic."""
        if site_kind is ComputeSiteKind.GENERAL_PURPOSE_CORE:
            site = PimComputeSite.in_order_core()
            area = site.area_mm2
        elif site_kind is ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR:
            site = PimComputeSite.fixed_function_accelerator()
            area = site.area_mm2
        else:
            raise ValueError("site_kind must be a PIM core or PIM accelerator")

        pim_accounts: List[EnergyAccount] = [
            self.pim_phase_account(phase, site) for phase in workload.target_functions
        ]
        host_accounts: List[EnergyAccount] = [
            self.host_model.phase_account(phase) for phase in workload.host_phases
        ]
        pim_total = ConsumerEnergyModel.combine(pim_accounts)
        host_total = ConsumerEnergyModel.combine(host_accounts)
        combined = ConsumerEnergyModel.combine([pim_total, host_total])

        return PimOffloadResult(
            workload=workload.name,
            site_kind=site_kind,
            account=combined,
            host_account=host_total,
            pim_account=pim_total,
            area_mm2=area,
            area_fraction=self.budget.area_fraction(area),
            fits_budget=site.fits(self.budget),
        )
