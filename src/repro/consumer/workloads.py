"""Analytical models of the four Google consumer workloads.

Each workload is decomposed into :class:`ExecutionPhase` objects.  A phase
is either a *target function* (identified by the study as data-movement
heavy, simple enough to offload to PIM logic) or host-resident work.  Every
phase carries the quantities the energy/performance models need:

* instructions executed on the host CPU,
* bytes moved to/from DRAM,
* bytes served by the on-chip caches, and
* whether the phase's memory traffic is streaming or scattered (which
  determines the fraction of peak bandwidth it achieves on the host).

The volumes are derived from the workload's natural parameters (display
resolution, tab size, matrix dimensions, video resolution), following the
descriptions in the consumer-workloads study; they are representative
rather than trace-accurate, which is sufficient because the E6/E7 results
are ratios over these volumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class ExecutionPhase:
    """One phase of a consumer workload.

    Attributes:
        name: Phase name (e.g. ``"texture_tiling"``).
        is_target_function: True when the study offloads this phase to PIM.
        host_instructions: Instructions the host CPU executes for the phase.
        dram_bytes: Bytes moved between DRAM and the SoC for the phase.
        on_chip_bytes: Additional bytes served by the on-chip caches.
        streaming_fraction: Fraction of the DRAM traffic that is streaming
            (the remainder is scattered and achieves lower bandwidth).
        pim_ops: Operations the phase needs when executed on PIM logic
            (defaults to ``host_instructions`` for a general-purpose core;
            fixed-function accelerators process several per cycle).
    """

    name: str
    is_target_function: bool
    host_instructions: float
    dram_bytes: float
    on_chip_bytes: float = 0.0
    streaming_fraction: float = 1.0
    pim_ops: Optional[float] = None

    def __post_init__(self) -> None:
        if self.host_instructions < 0 or self.dram_bytes < 0 or self.on_chip_bytes < 0:
            raise ValueError("phase volumes must be non-negative")
        if not 0.0 <= self.streaming_fraction <= 1.0:
            raise ValueError("streaming_fraction must be in [0, 1]")

    @property
    def effective_pim_ops(self) -> float:
        """Operations to execute on PIM logic (defaults to host instructions)."""
        return self.host_instructions if self.pim_ops is None else self.pim_ops


@dataclass
class ConsumerWorkload:
    """One consumer workload: a named list of execution phases.

    Attributes:
        name: Workload name.
        description: One-line description of the modelled scenario.
        phases: The workload's phases (target functions and host work).
    """

    name: str
    description: str
    phases: List[ExecutionPhase] = field(default_factory=list)

    @property
    def target_functions(self) -> List[ExecutionPhase]:
        """Phases the study offloads to PIM logic."""
        return [p for p in self.phases if p.is_target_function]

    @property
    def host_phases(self) -> List[ExecutionPhase]:
        """Phases that always stay on the host."""
        return [p for p in self.phases if not p.is_target_function]

    @property
    def total_dram_bytes(self) -> float:
        """Total DRAM traffic of the workload."""
        return sum(p.dram_bytes for p in self.phases)

    @property
    def total_instructions(self) -> float:
        """Total host instructions of the workload."""
        return sum(p.host_instructions for p in self.phases)

    def target_dram_fraction(self) -> float:
        """Fraction of DRAM traffic attributable to the target functions."""
        total = self.total_dram_bytes
        if total == 0:
            return 0.0
        return sum(p.dram_bytes for p in self.target_functions) / total


# ----------------------------------------------------------------------
# Workload presets
# ----------------------------------------------------------------------
def chrome_browser(
    width: int = 1920,
    height: int = 1080,
    scroll_frames: int = 60,
    tab_switches: int = 2,
    tab_size_bytes: int = 80 * 1024 * 1024,
) -> ConsumerWorkload:
    """Chrome browser: page scrolling and tab switching.

    The study's target functions are **texture tiling** (converting the
    rasterized linear bitmap into the GPU's tiled layout, touched twice per
    scrolled frame) and **color blitting** during rasterization, plus tab
    **compression/decompression** when switching tabs.
    """
    frame_bytes = width * height * 4
    tiling_bytes = 2.0 * frame_bytes * scroll_frames        # read linear + write tiled
    blitting_bytes = 1.5 * frame_bytes * scroll_frames
    compression_bytes = 2.0 * tab_size_bytes * tab_switches  # read tab + write compressed

    rasterization_instr = 220.0 * width * height / 1e3 * scroll_frames * 1e3 / 1e3
    return ConsumerWorkload(
        name="chrome",
        description=f"scroll {scroll_frames} frames at {width}x{height}, {tab_switches} tab switches",
        phases=[
            ExecutionPhase(
                name="texture_tiling",
                is_target_function=True,
                host_instructions=4.0 * frame_bytes / 4 * scroll_frames,
                dram_bytes=tiling_bytes,
                on_chip_bytes=0.5 * tiling_bytes,
                streaming_fraction=0.5,
            ),
            ExecutionPhase(
                name="color_blitting",
                is_target_function=True,
                host_instructions=3.0 * frame_bytes / 4 * scroll_frames,
                dram_bytes=blitting_bytes,
                on_chip_bytes=0.5 * blitting_bytes,
                streaming_fraction=0.8,
            ),
            ExecutionPhase(
                name="tab_compression",
                is_target_function=True,
                host_instructions=2.5 * tab_size_bytes / 4 * tab_switches,
                dram_bytes=compression_bytes,
                on_chip_bytes=0.3 * compression_bytes,
                streaming_fraction=0.9,
            ),
            ExecutionPhase(
                name="rasterization_and_layout",
                is_target_function=False,
                host_instructions=40.0 * width * height / 4 * scroll_frames / 10,
                dram_bytes=0.4 * frame_bytes * scroll_frames,
                on_chip_bytes=2.0 * frame_bytes * scroll_frames,
                streaming_fraction=0.6,
            ),
        ],
    )


def tensorflow_mobile(
    batch: int = 4,
    matrix_dim: int = 512,
    layers: int = 8,
) -> ConsumerWorkload:
    """TensorFlow Mobile inference.

    The study's target functions are **packing** (reordering matrix tiles
    into the GEMM kernel's layout) and **quantization** (float/uint8
    conversion); the GEMM itself is compute-bound and stays on the host.
    """
    matrix_bytes = matrix_dim * matrix_dim  # uint8 quantized weights
    activation_bytes = batch * matrix_dim
    packing_bytes = 2.0 * (matrix_bytes + activation_bytes) * layers
    quantization_bytes = 2.5 * activation_bytes * layers * 4

    gemm_flops = 2.0 * batch * matrix_dim * matrix_dim * layers
    return ConsumerWorkload(
        name="tensorflow",
        description=f"{layers}-layer quantized inference, batch {batch}, {matrix_dim}x{matrix_dim}",
        phases=[
            ExecutionPhase(
                name="packing",
                is_target_function=True,
                host_instructions=1.5 * packing_bytes / 4,
                dram_bytes=packing_bytes,
                on_chip_bytes=0.5 * packing_bytes,
                streaming_fraction=0.5,
            ),
            ExecutionPhase(
                name="quantization",
                is_target_function=True,
                host_instructions=2.0 * quantization_bytes / 4,
                dram_bytes=quantization_bytes,
                on_chip_bytes=0.5 * quantization_bytes,
                streaming_fraction=0.9,
            ),
            ExecutionPhase(
                name="gemm",
                is_target_function=False,
                host_instructions=gemm_flops / 16.0,  # SIMD packs 16 MACs per instr
                dram_bytes=0.3 * matrix_bytes * layers,
                on_chip_bytes=4.0 * matrix_bytes * layers,
                streaming_fraction=0.9,
            ),
        ],
    )


def vp9_playback(
    width: int = 1920,
    height: int = 1080,
    frames: int = 120,
) -> ConsumerWorkload:
    """VP9 video playback (decoding) on the device's software/hardware stack.

    The target functions are the **sub-pixel interpolation** of motion
    compensation and the **deblocking filter**, both of which stream
    reference-frame pixels from memory with very little computation per
    pixel.
    """
    luma_bytes = width * height * 1.5  # YUV 4:2:0
    interpolation_bytes = 3.0 * luma_bytes * frames
    deblocking_bytes = 2.0 * luma_bytes * frames
    return ConsumerWorkload(
        name="vp9_playback",
        description=f"decode {frames} frames at {width}x{height}",
        phases=[
            ExecutionPhase(
                name="subpixel_interpolation",
                is_target_function=True,
                host_instructions=3.0 * luma_bytes * frames / 4,
                dram_bytes=interpolation_bytes,
                on_chip_bytes=0.8 * interpolation_bytes,
                streaming_fraction=0.5,
            ),
            ExecutionPhase(
                name="deblocking_filter",
                is_target_function=True,
                host_instructions=3.0 * luma_bytes * frames / 4,
                dram_bytes=deblocking_bytes,
                on_chip_bytes=0.8 * deblocking_bytes,
                streaming_fraction=0.7,
            ),
            ExecutionPhase(
                name="entropy_decode_and_reconstruct",
                is_target_function=False,
                host_instructions=20.0 * luma_bytes * frames / 4 / 4,
                dram_bytes=0.6 * luma_bytes * frames,
                on_chip_bytes=2.0 * luma_bytes * frames,
                streaming_fraction=0.8,
            ),
        ],
    )


def vp9_capture(
    width: int = 1920,
    height: int = 1080,
    frames: int = 120,
    search_range: int = 24,
) -> ConsumerWorkload:
    """VP9 video capture (encoding).

    The dominant target function is **motion estimation**: for every block
    of the current frame, candidate blocks of the reference frame within
    the search window are fetched and compared — enormous data movement for
    simple absolute-difference computation.
    """
    luma_bytes = width * height * 1.5
    blocks = (width // 16) * (height // 16)
    candidates = (2 * search_range // 4) ** 2  # coarse-to-fine search grid
    motion_bytes = blocks * candidates * 16 * 16 * frames * 0.15  # window reuse factor
    transform_bytes = 2.0 * luma_bytes * frames
    return ConsumerWorkload(
        name="vp9_capture",
        description=f"encode {frames} frames at {width}x{height}, +-{search_range} px search",
        phases=[
            ExecutionPhase(
                name="motion_estimation",
                is_target_function=True,
                host_instructions=motion_bytes / 4 * 0.8,
                dram_bytes=motion_bytes,
                on_chip_bytes=1.5 * motion_bytes,
                streaming_fraction=0.4,
            ),
            ExecutionPhase(
                name="transform_quantize_reconstruct",
                is_target_function=False,
                host_instructions=30.0 * luma_bytes * frames / 4 / 4,
                dram_bytes=transform_bytes,
                on_chip_bytes=2.0 * luma_bytes * frames,
                streaming_fraction=0.8,
            ),
        ],
    )


def default_workloads() -> List[ConsumerWorkload]:
    """The four workloads of the study with their default parameters."""
    return [chrome_browser(), tensorflow_mobile(), vp9_playback(), vp9_capture()]
