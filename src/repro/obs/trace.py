"""Virtual-clock spans: the tracing half of the observability plane.

A :class:`Span` is one named interval of *virtual* time in a request's
lifecycle — admission, queueing, planning, per-lane execution, scatter,
gather-merge — with attributes and children, forming a tree per request
(and per dispatched batch).  Spans are stamped with times the simulation
already knows (``arrival_ns``, ``start_ns``, lane placements); nothing
here ever reads a wall clock, which is what keeps tracing bit-exact:
recording a run cannot perturb it.

The :class:`Tracer` owns the forest.  ``Tracer(enabled=False)`` — the
module-level :data:`NULL_TRACER` — is the zero-overhead default: its
``span`` hands back one shared inert :data:`NULL_SPAN` and records
nothing.  Hot paths additionally guard on :attr:`Tracer.enabled`, so the
disabled configuration allocates no span objects at all (pinned by the
``Span.allocated`` counter test in ``tests/test_obs.py``).
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, Iterable, Iterator, List, Optional, Set, Tuple


class Span:
    """One named interval of virtual time, with attributes and children.

    ``track`` is the tuple of export-track labels the span renders on
    (bank-lane labels for device execution, a batch row for dispatch
    windows); spans without a track render on their request's row.
    ``end_ns`` stays ``None`` while the interval is open (e.g. a request
    still queued when the run stops).
    """

    __slots__ = ("name", "category", "start_ns", "end_ns", "track", "attrs", "children", "parent")

    #: Spans constructed since import.  The disabled-path test pins the
    #: delta of this counter at zero across an ``observe=False`` run — a
    #: deterministic "no allocation on the hot path" assertion that
    #: cannot flake the way a wall-clock micro-benchmark would.
    allocated: ClassVar[int] = 0

    def __init__(
        self,
        name: str,
        category: str = "span",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        track: Optional[Tuple[str, ...]] = None,
        parent: Optional["Span"] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_ns = float(start_ns)
        self.end_ns: Optional[float] = float(end_ns) if end_ns is not None else None
        self.track = track
        self.attrs: Dict[str, Any] = {}
        self.children: List[Span] = []
        self.parent = parent
        if parent is not None:
            parent.children.append(self)
        Span.allocated += 1

    @property
    def duration_ns(self) -> float:
        """Span length; 0.0 while the span is still open."""
        return (self.end_ns if self.end_ns is not None else self.start_ns) - self.start_ns

    def end(self, end_ns: float) -> "Span":
        """Close the interval at ``end_ns`` (chainable)."""
        self.end_ns = float(end_ns)
        return self

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes (chainable)."""
        self.attrs.update(attrs)
        return self

    def child(
        self,
        name: str,
        category: str = "span",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        track: Optional[Tuple[str, ...]] = None,
    ) -> "Span":
        """Create and attach a child span."""
        return Span(name, category=category, start_ns=start_ns, end_ns=end_ns, track=track, parent=self)

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this subtree (children in creation order)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree, or None."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form of the subtree (for reports and debugging)."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.track is not None:
            payload["track"] = list(self.track)
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:
        end = "open" if self.end_ns is None else f"{self.end_ns:.0f}"
        return f"Span({self.name!r}, {self.category!r}, [{self.start_ns:.0f}, {end}] ns)"


class _NullSpan(Span):
    """The shared inert span a disabled tracer hands out.

    Every mutator is a no-op and ``child`` returns the instance itself,
    so code holding one can call the full Span surface without branching
    — and without ever retaining per-request state.
    """

    __slots__ = ()

    def end(self, end_ns: float) -> "Span":
        return self

    def set(self, **attrs: Any) -> "Span":
        return self

    def child(
        self,
        name: str,
        category: str = "span",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        track: Optional[Tuple[str, ...]] = None,
    ) -> "Span":
        return self


#: The one inert span (allocated once, at import).
NULL_SPAN: Span = _NullSpan("null")


class Tracer:
    """Records a forest of span trees stamped on the virtual clock.

    ``roots`` holds top-level spans (requests, batches) in creation
    order; ``tracks`` holds the declared export-track labels (one per
    bank lane, plus the host lane and a batch row) in declaration order,
    so an exported trace shows the full lane topology even for lanes
    that never ran work.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self.tracks: List[str] = []
        self._track_set: Set[str] = set()

    def span(
        self,
        name: str,
        category: str = "span",
        start_ns: float = 0.0,
        end_ns: Optional[float] = None,
        track: Optional[Tuple[str, ...]] = None,
        parent: Optional[Span] = None,
    ) -> Span:
        """Open a span; parentless spans become roots.  Disabled tracers
        return :data:`NULL_SPAN` and record nothing."""
        if not self.enabled:
            return NULL_SPAN
        span = Span(name, category=category, start_ns=start_ns, end_ns=end_ns, track=track, parent=parent)
        if parent is None:
            self.roots.append(span)
        return span

    def declare_tracks(self, labels: Iterable[str]) -> None:
        """Register export tracks (idempotent, order-preserving)."""
        if not self.enabled:
            return
        for label in labels:
            if label not in self._track_set:
                self._track_set.add(label)
                self.tracks.append(label)

    def adopt(self, span: Span, parent: Span) -> None:
        """Re-parent a root span under ``parent``.

        The cluster tier uses this to pull the per-shard part spans (each
        opened as a root by its shard's frontend) under the cluster
        request's span, so one scatter-gather reads as one tree.
        """
        if not self.enabled or span is NULL_SPAN or parent is NULL_SPAN:
            return
        for index, root in enumerate(self.roots):
            if root is span:
                del self.roots[index]
                break
        span.parent = parent
        parent.children.append(span)


#: The shared no-op tracer behind ``observe=False``.
NULL_TRACER = Tracer(enabled=False)
