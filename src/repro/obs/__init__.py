"""``repro.obs`` — the observability plane: virtual-clock tracing + metrics.

Everything in this package rides the simulation's virtual clock; spans
are stamped post-hoc from timestamps the scheduler already computed, so
tracing a run is bit-exact with not tracing it (property-tested in
``tests/test_obs.py``).  Wall-clock imports are banned here by the
``obs-wall-clock`` rule in ``tools/lint_invariants.py``.

The public knob is ``observe=`` on :class:`~repro.service.BatchExecutor`,
:class:`~repro.service.ServiceFrontend`,
:class:`~repro.cluster.ClusterFrontend`, and
:class:`~repro.api.PimSession`:

* ``observe=False`` (default) — the shared :data:`NULL_OBSERVER`; hot
  paths allocate no span objects.
* ``observe=True`` — a fresh recording :class:`Observer`.
* ``observe=<Observer>`` — share one plane across components.

Export with :func:`write_trace` (Chrome/Perfetto trace-event JSON) or
:meth:`MetricsRegistry.snapshot`; render in-terminal with
``repro.analysis.timeline``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.obs.export import build_trace, trace_events, write_trace
from repro.obs.metrics import Counter, Gauge, MetricsRegistry, StreamingHistogram
from repro.obs.trace import NULL_SPAN, NULL_TRACER, Span, Tracer


class Observer:
    """One tracer + one metrics registry — the unit the ``observe=``
    knobs thread through the stack (session → frontend → executor, or
    cluster → every shard)."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def snapshot(self) -> Dict[str, Any]:
        """The metrics-snapshot dict (see ``tools/validate_bench.py``)."""
        return self.metrics.snapshot()


#: The shared no-op plane behind ``observe=False``.
NULL_OBSERVER = Observer(tracer=NULL_TRACER)


def resolve_observe(observe: Union[bool, Observer]) -> Observer:
    """Normalize an ``observe=`` knob value: ``False`` → the shared no-op
    observer, ``True`` → a fresh recording one, an observer → itself."""
    if isinstance(observe, Observer):
        return observe
    return Observer() if observe else NULL_OBSERVER


__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observer",
    "Span",
    "StreamingHistogram",
    "Tracer",
    "build_trace",
    "resolve_observe",
    "trace_events",
    "write_trace",
]
