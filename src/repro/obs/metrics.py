"""Counters, gauges, and streaming histograms for the observability plane.

The existing roll-ups (``QueueMetrics.from_samples`` and friends) retain
every sample and compute exact percentiles at the end of a run — fine
for thousands of requests, wrong for the ROADMAP's millions.  The
:class:`StreamingHistogram` here is the constant-memory alternative:
log-bucketed counts (eight buckets per octave, ~9% bucket width) that
answer p50/p99 within a few percent without retaining a single record.

Everything lives in a :class:`MetricsRegistry`, snapshot as one plain
dict (``{"counters": ..., "gauges": ..., "histograms": ...}``) — the
shape ``tools/validate_bench.py`` registers as the metrics-snapshot
schema and ``SessionReport.obs`` carries to clients.
"""

from __future__ import annotations

import math
from typing import Any, ClassVar, Dict


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, backlog)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class StreamingHistogram:
    """Log-bucketed streaming histogram with O(buckets) memory.

    Positive observations land in bucket ``floor(log2(v) * 8)`` — eight
    buckets per octave, so one bucket spans a factor of ``2**(1/8)``
    (~9%) and a quantile read off a bucket's geometric midpoint is at
    most ~4.5% from the true value, independent of sample count.
    Non-positive observations are tallied separately (waits are often
    exactly zero under light load).  Only sparse bucket counts, the
    count/sum, and the min/max are retained.
    """

    BUCKETS_PER_OCTAVE: ClassVar[int] = 8

    __slots__ = ("name", "count", "total", "min_value", "max_value", "_zeros", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf
        self._zeros = 0
        self._buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        sample = float(value)
        self.count += 1
        self.total += sample
        self.min_value = min(self.min_value, sample)
        self.max_value = max(self.max_value, sample)
        if sample <= 0.0:
            self._zeros += 1
            return
        index = math.floor(math.log2(sample) * self.BUCKETS_PER_OCTAVE)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def quantile(self, q: float) -> float:
        """Approximate q-th percentile (q in [0, 100]); 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self._zeros:
            return min(self.min_value, 0.0)
        cumulative = self._zeros
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= rank:
                midpoint = 2.0 ** ((index + 0.5) / self.BUCKETS_PER_OCTAVE)
                return min(max(midpoint, self.min_value), self.max_value)
        return self.max_value

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict summary (the metrics-snapshot schema's histogram)."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value,
            "max": self.max_value,
            "p50": self.quantile(50.0),
            "p99": self.quantile(99.0),
        }


class MetricsRegistry:
    """Get-or-create registry of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str) -> StreamingHistogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = StreamingHistogram(name)
        return histogram

    def snapshot(self) -> Dict[str, Any]:
        """One plain dict for the whole registry, keys sorted for diffing."""
        return {
            "counters": {name: self._counters[name].value for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value for name in sorted(self._gauges)},
            "histograms": {name: self._histograms[name].snapshot() for name in sorted(self._histograms)},
        }
