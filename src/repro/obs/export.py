"""Chrome/Perfetto trace-event export for recorded span forests.

Produces the Trace Event JSON format that ``chrome://tracing`` and
https://ui.perfetto.dev load directly: one "X" (complete) event per
closed span, with two processes —

* **pid 0, "device lanes"** — one thread (track) per declared lane
  label: every bank lane, the host lane, and a ``batches`` row for
  dispatch windows.  A span placed on several lanes (a multi-bank
  primitive) emits one event per lane, so lane occupancy reads exactly
  like ``LaneSchedule``'s busy intervals.
* **pid 1, "requests"** — one thread per request root span, carrying the
  lifecycle tree (admission → queue → service, scatter → gather-merge).

Trace-event timestamps are microseconds, so ``ts``/``dur`` are the
virtual-clock nanoseconds divided by 1000; the *exact* nanosecond values
ride along in ``args`` (``start_ns``/``finish_ns``) — the busy-union
replay test reconstructs ``LaneSchedule.busy_union_ns`` bit-for-bit from
those.  Open spans (no ``end_ns``) are skipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

_DEVICE_PID = 0
_REQUEST_PID = 1


def _scalar(value: Any) -> Any:
    """JSON-safe attribute value (tuples, bank keys etc. stringify)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _event(span: Span, pid: int, tid: int, end_ns: float) -> Dict[str, Any]:
    args: Dict[str, Any] = {"start_ns": span.start_ns, "finish_ns": end_ns}
    for key, value in span.attrs.items():
        args[key] = _scalar(value)
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": span.start_ns / 1000.0,
        "dur": (end_ns - span.start_ns) / 1000.0,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _thread_name(pid: int, tid: int, label: str) -> Dict[str, Any]:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid, "ts": 0, "args": {"name": label}}


def trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten the tracer's forest into trace-event dicts.

    Metadata events come first; "X" events follow in forest pre-order
    (roots in creation order, children in creation order), so the device
    events of one batch appear in exact lane-placement order.
    """
    meta: List[Dict[str, Any]] = [
        {"name": "process_name", "ph": "M", "pid": _DEVICE_PID, "tid": 0, "ts": 0, "args": {"name": "device lanes"}},
        {"name": "process_name", "ph": "M", "pid": _REQUEST_PID, "tid": 0, "ts": 0, "args": {"name": "requests"}},
    ]
    body: List[Dict[str, Any]] = []
    device_tids: Dict[str, int] = {}

    def device_tid(label: str) -> int:
        tid = device_tids.get(label)
        if tid is None:
            tid = len(device_tids) + 1
            device_tids[label] = tid
            meta.append(_thread_name(_DEVICE_PID, tid, label))
        return tid

    for label in tracer.tracks:
        device_tid(label)

    for root_index, root in enumerate(tracer.roots):
        request_tid = root_index + 1
        named_request_tid = False
        for span in root.walk():
            if span.end_ns is None:
                continue
            if span.track is not None:
                for label in span.track:
                    body.append(_event(span, _DEVICE_PID, device_tid(label), span.end_ns))
            else:
                if not named_request_tid:
                    meta.append(_thread_name(_REQUEST_PID, request_tid, f"{root.name} #{root_index}"))
                    named_request_tid = True
                body.append(_event(span, _REQUEST_PID, request_tid, span.end_ns))
    return meta + body


def build_trace(tracer: Tracer, metrics: Optional[MetricsRegistry] = None) -> Dict[str, Any]:
    """The full trace-file object (optionally embedding a metrics snapshot)."""
    payload: Dict[str, Any] = {
        "traceEvents": trace_events(tracer),
        "displayTimeUnit": "ns",
    }
    if metrics is not None:
        payload["metrics"] = metrics.snapshot()
    return payload


def write_trace(path: Union[str, Path], tracer: Tracer, metrics: Optional[MetricsRegistry] = None) -> Path:
    """Write a trace file; returns the path.  Name it ``TRACE_<x>.json``
    so ``tools/validate_bench.py`` picks the trace-event schema."""
    target = Path(path)
    target.write_text(json.dumps(build_trace(tracer, metrics), indent=2, sort_keys=True) + "\n")
    return target
