"""Result containers, summary statistics, and text-table rendering.

Every benchmark harness and example uses these helpers to report results in
the same shape the paper does: a small table of named rows with a ratio
column (speedup, energy reduction) and a geometric-mean summary row.
"""

from repro.analysis.audit import (
    ScheduleAudit,
    audit_cluster,
    audit_executor,
    audit_schedule,
    render_audit,
    schedule_audit_report,
)
from repro.analysis.metrics import (
    BatchMetrics,
    ClusterMetrics,
    LaneMetrics,
    OperationMetrics,
    QueueMetrics,
    arithmetic_mean,
    geometric_mean,
    percentile,
    percentile_or,
    ratio,
    reduction_percent,
)
from repro.analysis.tables import ResultTable
from repro.analysis.timeline import render_lane_timeline, render_span_tree

__all__ = [
    "BatchMetrics",
    "ClusterMetrics",
    "LaneMetrics",
    "OperationMetrics",
    "QueueMetrics",
    "ResultTable",
    "ScheduleAudit",
    "arithmetic_mean",
    "audit_cluster",
    "audit_executor",
    "audit_schedule",
    "geometric_mean",
    "percentile",
    "percentile_or",
    "ratio",
    "reduction_percent",
    "render_audit",
    "render_lane_timeline",
    "render_span_tree",
    "schedule_audit_report",
]
