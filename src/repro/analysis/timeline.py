"""Text rendering of recorded observability spans: lane timelines and
per-request flamegraph-style trees.

The Perfetto export (:func:`repro.obs.write_trace`) is the full-fidelity
view; these renderers are the terminal-sized one — enough to see a
straggler serializing a lane, a batch riding a drained bank, or where a
p99 request spent its sojourn, without leaving the shell.  See
``examples/trace_timeline.py`` for both in action.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.obs.trace import Span, Tracer


def _union_ns(intervals: List[Tuple[float, float]]) -> float:
    """Total covered time of (possibly overlapping) intervals."""
    total = 0.0
    end = -math.inf
    for start, finish in sorted(intervals):
        if finish <= end:
            continue
        total += finish - max(start, end)
        end = finish
    return total


def render_lane_timeline(tracer: Tracer, width: int = 64) -> str:
    """ASCII occupancy chart: one row per declared track, ``█`` where busy.

    Every closed span carrying a ``track`` paints its interval onto each
    of its tracks (device execution, batch windows); the right-hand
    column is the track's busy fraction of the rendered window.
    """
    order: List[str] = list(tracer.tracks)
    intervals: Dict[str, List[Tuple[float, float]]] = {label: [] for label in order}
    for root in tracer.roots:
        for span in root.walk():
            if span.track is None or span.end_ns is None:
                continue
            for label in span.track:
                if label not in intervals:
                    order.append(label)
                    intervals[label] = []
                intervals[label].append((span.start_ns, span.end_ns))
    spans = [iv for pairs in intervals.values() for iv in pairs]
    if not spans:
        return "lane timeline: no closed spans recorded"
    t0 = min(start for start, _ in spans)
    t1 = max(finish for _, finish in spans)
    window = max(t1 - t0, 1e-12)
    scale = width / window
    label_width = max(len(label) for label in order)
    lines = [
        f"lane timeline: {t0 / 1e3:.2f} µs .. {t1 / 1e3:.2f} µs "
        f"({window / 1e3:.2f} µs window, {width} cells)"
    ]
    for label in order:
        cells = [" "] * width
        for start, finish in intervals[label]:
            first = int((start - t0) * scale)
            last = max(first + 1, int(math.ceil((finish - t0) * scale)))
            for cell in range(first, min(last, width)):
                cells[cell] = "█"
        busy = _union_ns(intervals[label]) / window
        lines.append(f"{label:>{label_width}} |{''.join(cells)}| {100.0 * busy:5.1f}%")
    return "\n".join(lines)


def render_span_tree(span: Span) -> str:
    """Indented flamegraph-style view of one span tree (times in µs)."""
    lines: List[str] = []

    def visit(node: Span, depth: int) -> None:
        end = node.end_ns if node.end_ns is not None else node.start_ns
        duration = (end - node.start_ns) / 1e3
        attrs = " ".join(f"{key}={value}" for key, value in node.attrs.items())
        open_mark = "" if node.end_ns is not None else " [open]"
        lines.append(
            f"{'  ' * depth}{node.name:<14} @{node.start_ns / 1e3:>10.2f} µs "
            f"+{duration:>9.2f} µs{open_mark}  {attrs}".rstrip()
        )
        for child in node.children:
            visit(child, depth + 1)

    visit(span, 0)
    return "\n".join(lines)
