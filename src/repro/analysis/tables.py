"""Plain-text result tables used by benches and examples.

The benchmark harnesses print the same rows/series the paper reports;
:class:`ResultTable` keeps that rendering in one place so every experiment's
output looks the same and can be parsed back by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float]


@dataclass
class ResultTable:
    """A small named table of result rows.

    Args:
        title: Table title printed above the header.
        columns: Column names.
        float_format: Format spec applied to float cells.
    """

    title: str
    columns: Sequence[str]
    float_format: str = "{:.3g}"
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append a row; must have exactly one cell per column."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """Return all cells of the named column."""
        try:
            index = list(self.columns).index(name)
        except ValueError as exc:
            raise KeyError(f"no column named {name!r}") from exc
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Cell]]:
        """Return the rows as a list of column-name → cell dictionaries."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def _format_cell(self, cell: Cell) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return self.float_format.format(cell)
        return str(cell)

    def render(self) -> str:
        """Render the table as aligned plain text."""
        header = [str(c) for c in self.columns]
        body = [[self._format_cell(cell) for cell in row] for row in self.rows]
        widths = [len(h) for h in header]
        for row in body:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def format_line(cells: Sequence[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, separator, format_line(header), separator]
        lines.extend(format_line(row) for row in body)
        lines.append(separator)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
