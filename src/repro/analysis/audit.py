"""Standalone schedule-audit report over lane timelines.

Renders the schedule race detector's findings
(:mod:`repro.verify.schedule_check`) as the same kind of text report the
benchmark tables use: one row per audited schedule with its placement,
batch, lane, busy-union and overlap accounting, and — when the audit is
run non-raising — every violation listed underneath.  This is the
offline/"report" face of the sanitizer; the online face is the
``sanitize=True`` knob on :class:`~repro.service.executor.BatchExecutor`
and :class:`~repro.cluster.frontend.ClusterFrontend`, which raises on the
first violation instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.executor import BatchExecutor
    from repro.service.lanes import LaneSchedule
    from repro.verify.schedule_check import ScheduleCheckReport


@dataclass
class ScheduleAudit:
    """One audited schedule: its name and the checker's report."""

    name: str
    report: "ScheduleCheckReport"

    @property
    def ok(self) -> bool:
        """True when the schedule passed every check."""
        return self.report.ok


def audit_schedule(schedule: "LaneSchedule", name: str = "lanes") -> ScheduleAudit:
    """Audit one lane schedule, collecting (not raising) violations."""
    from repro.verify.schedule_check import check_schedule  # local: avoid cycle

    return ScheduleAudit(name=name, report=check_schedule(schedule, raise_on_error=False))


def audit_executor(executor: "BatchExecutor", name: str = "executor") -> ScheduleAudit:
    """Audit a (pipelined) executor's persistent lane timelines."""
    return audit_schedule(executor.lanes, name=name)


def audit_cluster(cluster, name: str = "cluster") -> List[ScheduleAudit]:
    """Audit every shard executor's lane timelines of a cluster frontend."""
    return [
        audit_executor(shard.executor, name=f"{name}/shard{i}")
        for i, shard in enumerate(cluster.shards)
    ]


def render_audit(audits: Iterable[ScheduleAudit]) -> str:
    """Render audits as a text report (one row each, violations below)."""
    audits = list(audits)
    rows: List[Tuple[str, ...]] = [
        ("schedule", "placements", "batches", "lanes", "busy_union_ns", "overlap_ns", "status")
    ]
    violation_lines: List[str] = []
    for audit in audits:
        report = audit.report
        rows.append(
            (
                audit.name,
                str(report.placements),
                str(report.batches),
                str(report.lanes),
                f"{report.busy_union_ns:.1f}",
                f"{report.cross_batch_overlap_ns:.1f}",
                "ok" if report.ok else f"{len(report.violations)} violation(s)",
            )
        )
        for violation in report.violations:
            violation_lines.append(f"  [{audit.name}] {violation.rule}: {violation}")
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = ["  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip() for row in rows]
    if violation_lines:
        lines.append("violations:")
        lines.extend(violation_lines)
    return "\n".join(lines)


def schedule_audit_report(schedules: Sequence[Tuple[str, "LaneSchedule"]]) -> str:
    """Audit named schedules and render the combined text report."""
    return render_audit(audit_schedule(schedule, name) for name, schedule in schedules)
