"""Metric containers and summary statistics used across the stack."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class OperationMetrics:
    """Latency, energy, and data-movement volume of one simulated operation.

    Attributes:
        name: Label of the operation (e.g. ``"bulk_and"``).
        latency_ns: End-to-end latency.
        energy_j: Total energy.
        bytes_moved_on_channel: Bytes that crossed the off-chip channel.
        bytes_produced: Bytes of result data produced.
        notes: Free-form annotation (e.g. which engine executed it).
    """

    name: str
    latency_ns: float
    energy_j: float
    bytes_moved_on_channel: int = 0
    bytes_produced: int = 0
    notes: str = ""

    @property
    def latency_s(self) -> float:
        """Latency in seconds."""
        return self.latency_ns * 1e-9

    @property
    def throughput_bytes_per_s(self) -> float:
        """Result bytes produced per second (0 when latency is 0)."""
        if self.latency_ns <= 0:
            return 0.0
        return self.bytes_produced / self.latency_s

    @property
    def throughput_gops64(self) -> float:
        """Throughput in giga 64-bit-word operations per second.

        This is the metric the Ambit comparison uses: one "operation"
        consumes/produces one 64-bit word of the result vector.
        """
        return self.throughput_bytes_per_s / 8 / 1e9

    @property
    def energy_per_byte_j(self) -> float:
        """Energy per produced byte (0 when nothing was produced)."""
        if self.bytes_produced <= 0:
            return 0.0
        return self.energy_j / self.bytes_produced

    def speedup_over(self, baseline: "OperationMetrics") -> float:
        """Latency ratio ``baseline / self`` (>1 means this one is faster)."""
        if self.latency_ns <= 0:
            raise ValueError("cannot compute speedup with non-positive latency")
        return baseline.latency_ns / self.latency_ns

    def energy_reduction_over(self, baseline: "OperationMetrics") -> float:
        """Energy ratio ``baseline / self`` (>1 means this one uses less energy)."""
        if self.energy_j <= 0:
            raise ValueError("cannot compute energy reduction with non-positive energy")
        return baseline.energy_j / self.energy_j


@dataclass
class BatchMetrics:
    """Aggregate outcome of executing a batch of operations.

    Energy and bytes are plain sums over the batch (batching never changes
    how much work the hardware does).  Two latencies are kept: the serial
    latency the operations would take executed one after another, and the
    overlapped makespan achieved by scheduling operations onto disjoint
    banks — the only mechanism by which a batch is allowed to be faster.

    Attributes:
        name: Label of the batch.
        requests: Number of requests in the batch.
        latency_ns: Overlapped (scheduled) batch latency — the batch's
            completion horizon measured from its dispatch instant.  Under
            lane pipelining this *includes* time spent queued behind a
            previous batch's lane horizons.
        serial_latency_ns: Latency of executing the batch sequentially.
        energy_j: Total energy (identical to sequential execution).
        bytes_produced: Total result bytes produced.
        per_request: Metrics of each request, in submission order.
        device_busy_ns: Device-busy time this batch *added* (the union of
            its scheduled intervals not already covered by earlier
            batches' lanes).  None for a batch-synchronous batch, where
            the makespan is the busy time.
        cross_batch_overlap_ns: Work of this batch that ran before the
            previous batch's completion horizon (0 without pipelining) —
            the time a barrier would have wasted.
        ops_eliminated: Device ops the batch plan optimizer removed from
            the batch's unoptimized plan total (cross-request CSE).
        shared_subchains: Predicate sub-chains served from another
            request's lowering instead of re-executing.
        cache_hits: Sub-chains (or whole conjunctions) served from the
            cross-batch result cache instead of re-running bank work.
        cache_misses: Result-cache lookups that missed (0 with caching
            off).
        cache_invalidations: Cached bitmaps the batch's writes dropped.
        notes: Free-form annotation.
    """

    name: str
    requests: int
    latency_ns: float
    serial_latency_ns: float
    energy_j: float
    bytes_produced: int = 0
    per_request: List[OperationMetrics] = field(default_factory=list)
    device_busy_ns: Optional[float] = None
    cross_batch_overlap_ns: float = 0.0
    ops_eliminated: int = 0
    shared_subchains: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    notes: str = ""

    @property
    def busy_ns(self) -> float:
        """Executor busy time attributable to this batch.

        The overlap-aware :attr:`device_busy_ns` when the batch was lane
        pipelined, else the batch makespan (batch-synchronous semantics).
        """
        if self.device_busy_ns is not None:
            return self.device_busy_ns
        return self.latency_ns

    @property
    def latency_s(self) -> float:
        """Overlapped latency in seconds."""
        return self.latency_ns * 1e-9

    @property
    def batching_speedup(self) -> float:
        """Serial latency over overlapped latency (>1 means overlap helped)."""
        if self.latency_ns <= 0:
            return 1.0
        return self.serial_latency_ns / self.latency_ns

    @property
    def throughput_bytes_per_s(self) -> float:
        """Result bytes produced per second at the overlapped latency."""
        if self.latency_ns <= 0:
            return 0.0
        return self.bytes_produced / self.latency_s


@dataclass
class LaneMetrics:
    """Per-lane utilization roll-up of a persistent lane schedule.

    Produced by :meth:`repro.service.lanes.LaneSchedule.metrics` and
    surfaced through :meth:`ServiceFrontend.lane_metrics`; quantifies how
    well cross-batch pipelining keeps the banks busy.

    Attributes:
        name: Label of the schedule.
        lanes: Number of lanes (active banks, plus the host lane once
            host-only work has been scheduled).
        span_ns: The overall completion horizon (busiest lane's busy-until).
        busy_union_ns: Virtual time during which at least one lane was
            busy — the honest device-busy measure for throughput math.
        cross_batch_overlap_ns: Work that ran before the previous batch's
            completion horizon — the time a batch barrier would have
            wasted (0 without pipelining).
        requests: Requests placed across the schedule's lifetime.
        batches: Batches dispatched across the schedule's lifetime.
        per_lane_busy_ns: Busy time per lane key (host lane included).
        host_lane_key: Key of the host lane within ``per_lane_busy_ns``
            (excluded from the *bank* utilization aggregates below).
    """

    name: str
    lanes: int
    span_ns: float
    busy_union_ns: float
    cross_batch_overlap_ns: float = 0.0
    requests: int = 0
    batches: int = 0
    per_lane_busy_ns: Dict = field(default_factory=dict)
    host_lane_key: object = "host"

    def _bank_busy(self) -> List[float]:
        return [
            busy for key, busy in self.per_lane_busy_ns.items()
            if key != self.host_lane_key
        ]

    @property
    def per_lane_utilization(self) -> Dict:
        """Busy fraction of the span, per lane (host lane included)."""
        if self.span_ns <= 0.0:
            return {key: 0.0 for key in self.per_lane_busy_ns}
        return {key: busy / self.span_ns for key, busy in self.per_lane_busy_ns.items()}

    @property
    def mean_bank_utilization(self) -> float:
        """Mean busy fraction across the bank lanes (host lane excluded)."""
        busy = self._bank_busy()
        if not busy or self.span_ns <= 0.0:
            return 0.0
        return sum(busy) / (len(busy) * self.span_ns)

    @property
    def bank_idle_fraction(self) -> float:
        """Fraction of bank-lane time spent idle over the span."""
        return 1.0 - self.mean_bank_utilization

    @property
    def device_idle_fraction(self) -> float:
        """Fraction of the span during which *no* lane was busy."""
        if self.span_ns <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.busy_union_ns / self.span_ns)


@dataclass
class QueueMetrics:
    """Queueing outcome of serving a request stream through the frontend.

    Latency percentiles are computed over the *completed* requests only;
    rejected requests never enter service and are counted separately.  Two
    latencies are tracked per request: the **wait** (admission until the
    request starts on its banks) and the **sojourn** (admission until its
    last bank finishes), so ``sojourn - wait`` is the in-service time.

    Attributes:
        name: Label of the run.
        offered: Requests presented to the frontend.
        admitted: Requests accepted into the queue.
        rejected: Requests refused by admission control (including shed).
        shed: Admitted requests later evicted by priority-class load
            shedding (a subset of ``rejected``).
        completed: Requests that finished service.
        deadline_misses: Completed requests that finished past their deadline.
        wait_p50_ns / wait_p99_ns: Wait-time percentiles.
        sojourn_p50_ns / sojourn_p99_ns: Sojourn-time percentiles.
        makespan_ns: Virtual-clock end of the last served batch, measured
            from the start of the observation window (the clock starts at
            0, so idle time before the first arrival is included).
        busy_ns: Time the executor spent serving batches.
        serial_latency_ns: Latency of serving the completed requests one at
            a time (the no-overlap baseline).
        energy_j: Total energy of the completed requests (identical to
            sequential execution; batching never changes it).
        batches: Number of batches the planner closed.
        host_merge_ns: Host time charged for result merges (the
            optimizer's split-mode cross-predicate joins here; the gather
            merge tree at the cluster tier).
        ops_eliminated: Device ops the batch plan optimizer removed
            across the completed requests (cross-request CSE).
        shared_subchains: Predicate sub-chains completed requests served
            from another request's lowering.
        cache_hits: Sub-chains (or whole conjunctions) completed requests
            served from the cross-batch result cache.
        cache_misses: Result-cache lookups that missed (0 with caching
            off).
        cache_invalidations: Cached bitmaps dropped by completed writes.
    """

    name: str
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    deadline_misses: int = 0
    wait_p50_ns: float = 0.0
    wait_p99_ns: float = 0.0
    sojourn_p50_ns: float = 0.0
    sojourn_p99_ns: float = 0.0
    makespan_ns: float = 0.0
    busy_ns: float = 0.0
    serial_latency_ns: float = 0.0
    energy_j: float = 0.0
    batches: int = 0
    host_merge_ns: float = 0.0
    ops_eliminated: int = 0
    shared_subchains: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered requests refused by admission control."""
        if self.offered <= 0:
            return 0.0
        return self.rejected / self.offered

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that missed their deadline."""
        if self.completed <= 0:
            return 0.0
        return self.deadline_misses / self.completed

    @property
    def pipeline_speedup(self) -> float:
        """Serial latency over executor busy time (>1 means overlap helped)."""
        if self.busy_ns <= 0:
            return 1.0
        return self.serial_latency_ns / self.busy_ns

    @classmethod
    def from_samples(
        cls,
        name: str,
        wait_ns: Iterable[float],
        sojourn_ns: Iterable[float],
        **counts,
    ) -> "QueueMetrics":
        """Build metrics from per-request wait/sojourn samples."""
        waits = list(wait_ns)
        sojourns = list(sojourn_ns)
        return cls(
            name=name,
            wait_p50_ns=percentile_or(waits, 50),
            wait_p99_ns=percentile_or(waits, 99),
            sojourn_p50_ns=percentile_or(sojourns, 50),
            sojourn_p99_ns=percentile_or(sojourns, 99),
            **counts,
        )


def summarize_envelopes(records: Sequence) -> Dict:
    """Common queueing summary over duck-typed request envelopes.

    The one place the per-request roll-up arithmetic lives: counts
    (offered/admitted/rejected/shed/completed/deadline misses), the
    wait/sojourn percentiles, and the serial latency/energy of the
    completed work.  Both the service tier
    (:func:`summarize_queue_records`, behind
    :func:`repro.service.frontend.summarize_records`) and the cluster
    roll-up (:meth:`ClusterMetrics.from_records`) build their metrics
    from this dict, so the two tiers can never drift on what a count or
    a percentile means.

    ``records`` are duck-typed envelopes carrying ``admitted``,
    ``rejected_reason``, ``completed``, ``wait_ns``, ``sojourn_ns``,
    ``deadline_missed``, and ``metrics`` — i.e. either
    :class:`~repro.service.requests.QueuedRequest` or
    :class:`~repro.cluster.frontend.ClusterRecord`.
    """
    records = list(records)
    completed = [r for r in records if r.completed]
    return dict(
        offered=len(records),
        admitted=sum(1 for r in records if r.admitted),
        rejected=sum(1 for r in records if not r.admitted),
        shed=sum(1 for r in records if r.rejected_reason == "shed"),
        completed=len(completed),
        deadline_misses=sum(1 for r in completed if r.deadline_missed),
        wait_p50_ns=percentile_or([r.wait_ns for r in completed], 50),
        wait_p99_ns=percentile_or([r.wait_ns for r in completed], 99),
        sojourn_p50_ns=percentile_or([r.sojourn_ns for r in completed], 50),
        sojourn_p99_ns=percentile_or([r.sojourn_ns for r in completed], 99),
        serial_latency_ns=sum(r.metrics.latency_ns for r in completed),
        energy_j=sum(r.metrics.energy_j for r in completed),
        host_merge_ns=sum(getattr(r, "host_merge_ns", 0.0) for r in completed),
        ops_eliminated=sum(getattr(r, "ops_eliminated", 0) for r in completed),
        shared_subchains=sum(getattr(r, "shared_subchains", 0) for r in completed),
        cache_hits=sum(getattr(r, "cache_hits", 0) for r in completed),
        cache_misses=sum(getattr(r, "cache_misses", 0) for r in completed),
        cache_invalidations=sum(getattr(r, "cache_invalidations", 0) for r in completed),
    )


def summarize_queue_records(
    name: str,
    records: Sequence,
    makespan_ns: float,
    busy_ns: float,
    batches: int,
) -> QueueMetrics:
    """Queueing summary over a window of request envelopes.

    Used by :meth:`ServiceFrontend.result` over the frontend's lifetime,
    by :meth:`PimSession.report` over just one session's records, and by
    the host backend — so a shared or reused backend never folds earlier
    traffic into a later report.
    """
    return QueueMetrics(
        name=name,
        makespan_ns=makespan_ns,
        busy_ns=busy_ns,
        batches=batches,
        **summarize_envelopes(records),
    )


@dataclass
class ClusterMetrics:
    """Roll-up of serving a request stream across a sharded cluster.

    Aggregates the cluster frontend's scatter-gather records (one per
    *cluster-level* request, however many shards it fanned out to) with
    each shard frontend's own :class:`QueueMetrics`.  Counts are
    cluster-level: a conjunction scattered over three shards is one
    offered/completed request here, while each shard's ``per_shard`` entry
    counts its local sub-request.

    Attributes:
        name: Label of the run.
        shards: Number of shard executors in the cluster.
        offered / admitted / rejected / shed / completed / deadline_misses:
            Cluster-level request counts (see :class:`QueueMetrics`).
        wait_p50_ns / wait_p99_ns: Wait percentiles over completed cluster
            requests (first sub-request start minus arrival).
        sojourn_p50_ns / sojourn_p99_ns: Sojourn percentiles (last
            sub-request finish minus arrival, merge included).
        makespan_ns: Virtual-clock end of the stream: the slowest shard,
            extended by any gather merge that completes after it (a
            request is not done until the host has merged it).
        busy_ns: Summed shard service time.
        serial_latency_ns: Latency of the completed requests' device work
            executed one at a time (the no-overlap, no-sharding baseline).
        energy_j: Total device energy of the completed requests.
        utilization: Per-shard busy time over the cluster makespan.
        imbalance: Hottest shard's busy time over the mean shard busy time
            (1.0 = perfectly balanced).
        cross_shard_fanout: Mean number of shards a completed request
            touched (1.0 = no scatter).
        merge_ops: Host-side bitwise merges the gather stage performed.
        host_merge_ns: Host time charged for those merges — the gather
            path's AND-merges are host work, not free.  Partials merge
            pairwise in parallel, so each record is charged
            ``ceil(log2(fanout))`` levels of the cluster frontend's
            ``merge_ns_per_op`` knob rather than one per merge op.
        ops_eliminated: Device ops the shard-local batch plan optimizers
            removed across the completed requests (cross-request CSE).
        shared_subchains: Predicate sub-chains completed requests served
            from another request's lowering on some shard.
        cache_hits: Sub-chains completed requests served from the
            shard-local result caches instead of re-running bank work.
        cache_misses: Shard-local result-cache lookups that missed.
        cache_invalidations: Cached bitmaps dropped by completed writes
            across the shards.
        shard_failures / shard_revivals / shards_joined / shards_retired:
            Pool lifecycle events during the run (fault injection plus
            elastic controller actions); all zero for a healthy fixed
            pool.
        failovers: Queued shard parts migrated off a failed or draining
            shard onto survivors.
        failover_failures: Requests terminally failed because no routable
            replica could take their work (degraded-mode rejections).
        replications: Keys given an extra replica live (re-placement).
        copied_bytes / copy_ns: Bytes and modeled device time of the
            replication copies — charged to the destination shards'
            lanes, so elasticity shows up in ``busy_ns`` too.
        per_shard: Each shard frontend's own queueing summary.
    """

    name: str
    shards: int = 0
    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    deadline_misses: int = 0
    wait_p50_ns: float = 0.0
    wait_p99_ns: float = 0.0
    sojourn_p50_ns: float = 0.0
    sojourn_p99_ns: float = 0.0
    makespan_ns: float = 0.0
    busy_ns: float = 0.0
    serial_latency_ns: float = 0.0
    energy_j: float = 0.0
    utilization: List[float] = field(default_factory=list)
    imbalance: float = 1.0
    cross_shard_fanout: float = 0.0
    merge_ops: int = 0
    host_merge_ns: float = 0.0
    ops_eliminated: int = 0
    shared_subchains: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    # Failover / elasticity accounting (all zero for a healthy fixed
    # pool; fed by ClusterFrontend.elastic_summary()).
    shard_failures: int = 0
    shard_revivals: int = 0
    shards_joined: int = 0
    shards_retired: int = 0
    failovers: int = 0
    failover_failures: int = 0
    replications: int = 0
    copied_bytes: int = 0
    copy_ns: float = 0.0
    per_shard: List[QueueMetrics] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered cluster requests refused (or shed)."""
        if self.offered <= 0:
            return 0.0
        return self.rejected / self.offered

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed cluster requests past their deadline."""
        if self.completed <= 0:
            return 0.0
        return self.deadline_misses / self.completed

    @property
    def mean_utilization(self) -> float:
        """Mean per-shard utilization over the cluster makespan."""
        if not self.utilization:
            return 0.0
        return sum(self.utilization) / len(self.utilization)

    @classmethod
    def from_records(
        cls,
        name: str,
        records: Iterable,
        per_shard: List[QueueMetrics],
        merge_ops: int = 0,
        clock_offset: float = 0.0,
        elastic: Optional[Dict[str, Any]] = None,
    ) -> "ClusterMetrics":
        """Build the roll-up from cluster records plus per-shard summaries.

        ``records`` are duck-typed cluster envelopes (the cluster package
        defines them; metrics stays import-free of it): each carries
        ``admitted``, ``rejected_reason``, ``completed``, ``wait_ns``,
        ``sojourn_ns``, ``deadline_missed``, ``shard_ids``, and
        ``metrics``.  ``clock_offset`` is the absolute virtual-clock
        origin of the observation window (0 for a whole-life roll-up):
        record finish times are measured against it so the makespan can
        be extended past the shard makespans by late host merges.
        """
        records = list(records)
        completed = [r for r in records if r.completed]
        makespan = max(
            [m.makespan_ns for m in per_shard]
            + [r.finish_ns - clock_offset for r in completed]
            + [0.0]
        )
        busy = [m.busy_ns for m in per_shard]
        mean_busy = sum(busy) / len(busy) if busy else 0.0
        return cls(
            name=name,
            shards=len(per_shard),
            makespan_ns=makespan,
            busy_ns=sum(busy),
            utilization=[b / makespan if makespan > 0 else 0.0 for b in busy],
            imbalance=max(busy) / mean_busy if mean_busy > 0 else 1.0,
            cross_shard_fanout=(
                sum(len(r.shard_ids) for r in completed) / len(completed)
                if completed
                else 0.0
            ),
            merge_ops=merge_ops,
            # host_merge_ns / ops_eliminated / shared_subchains arrive via
            # the shared envelope summary below.
            per_shard=list(per_shard),
            **summarize_envelopes(records),
            **(elastic or {}),
        )


def combine_serial(name: str, metrics: Iterable[OperationMetrics]) -> OperationMetrics:
    """Sum a sequence of operations as if executed back to back."""
    metrics = list(metrics)
    return OperationMetrics(
        name=name,
        latency_ns=sum(m.latency_ns for m in metrics),
        energy_j=sum(m.energy_j for m in metrics),
        bytes_moved_on_channel=sum(m.bytes_moved_on_channel for m in metrics),
        bytes_produced=sum(m.bytes_produced for m in metrics),
        notes=f"serial combination of {len(metrics)} operations",
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; raises on empty or non-positive input."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    values = list(values)
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def ratio(baseline: float, improved: float) -> float:
    """Improvement factor ``baseline / improved`` (>1 means improvement)."""
    if improved <= 0:
        raise ValueError("improved value must be positive")
    return baseline / improved


def reduction_percent(baseline: float, improved: float) -> float:
    """Percentage reduction from ``baseline`` to ``improved`` (0–100)."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return (baseline - improved) / baseline * 100.0


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic_mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def percentile(values: Iterable[float], q: float) -> Optional[float]:
    """Linear-interpolated percentile ``q`` (0–100) of ``values``."""
    data = sorted(values)
    if not data:
        return None
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if len(data) == 1:
        return data[0]
    position = (len(data) - 1) * q / 100.0
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return data[low]
    fraction = position - low
    return data[low] * (1 - fraction) + data[high] * fraction


def percentile_or(values: Iterable[float], q: float, default: float = 0.0) -> float:
    """:func:`percentile` with an explicit no-samples default.

    ``percentile`` returns None for empty input; call sites used to
    spell the fallback as ``percentile(xs, q) or 0.0``, which also
    replaces a *legitimate* 0.0 percentile (every wait exactly zero)
    with the default — harmless only while the default is 0.0, and a
    trap the moment someone passes anything else.  Keep the None case
    explicit instead.
    """
    value = percentile(values, q)
    return default if value is None else value
