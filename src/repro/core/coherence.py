"""Coherence cost model for PIM execution (LazyPIM-style).

When PIM logic updates data that the host's caches may also hold, the
system must keep the two views coherent.  The paper lists three practical
approaches, which this model exposes as :class:`CoherencePolicy` values:

* ``FLUSH_BASED`` — before a PIM kernel runs, the host flushes (writes back
  and invalidates) every cache line of the PIM-visible region; simple but
  pays the full flush cost on every offload.
* ``FINE_GRAINED`` — every PIM memory access sends a coherence probe to the
  host (an MESI-style extension over the off-chip link); correct but the
  probe traffic erodes the data-movement savings.
* ``LAZY_BATCHED`` — LazyPIM/CoNDA-style speculative execution: the PIM
  kernel runs without probes while recording a compressed signature of the
  lines it touched, and the host checks the signature once at the end,
  re-executing the (rare) conflicting portions.

The model estimates the coherence *overhead time and traffic* added to a
PIM kernel as a function of the kernel's footprint, the fraction of it that
is dirty in host caches, and the conflict probability — enough to show why
naive policies can erase PIM's benefit, which is the point the paper makes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CoherencePolicy(enum.Enum):
    """Coherence mechanism used between the host and PIM logic."""

    FLUSH_BASED = "flush"
    FINE_GRAINED = "fine_grained"
    LAZY_BATCHED = "lazy_batched"


@dataclass
class CoherenceOverhead:
    """Overhead a coherence policy adds to one PIM kernel invocation.

    Attributes:
        extra_time_ns: Added execution time.
        extra_traffic_bytes: Added off-chip traffic.
        reexecution_fraction: Fraction of the kernel re-executed (lazy policy).
    """

    extra_time_ns: float
    extra_traffic_bytes: float
    reexecution_fraction: float = 0.0


@dataclass(frozen=True)
class CoherenceModel:
    """Estimates coherence overheads for PIM kernels.

    Attributes:
        cache_line_bytes: Coherence granularity.
        flush_bandwidth_bytes_per_s: Rate at which the host can write back
            and invalidate its caches.
        probe_latency_ns: Round-trip latency of one fine-grained probe.
        probe_bytes: Traffic of one probe + response.
        probes_overlap_factor: How many probes the PIM core can overlap.
        signature_bytes: Size of the LazyPIM signature exchanged per batch.
        link_bandwidth_bytes_per_s: Off-chip link bandwidth for coherence
            traffic.
    """

    cache_line_bytes: int = 64
    flush_bandwidth_bytes_per_s: float = 20e9
    probe_latency_ns: float = 120.0
    probe_bytes: int = 16
    probes_overlap_factor: float = 4.0
    signature_bytes: int = 4096
    link_bandwidth_bytes_per_s: float = 16e9

    def overhead(
        self,
        policy: CoherencePolicy,
        footprint_bytes: int,
        dirty_fraction: float = 0.1,
        shared_access_fraction: float = 0.2,
        conflict_probability: float = 0.02,
        kernel_time_ns: float = 0.0,
    ) -> CoherenceOverhead:
        """Estimate the overhead of running one PIM kernel under ``policy``.

        Args:
            policy: Coherence policy in use.
            footprint_bytes: Bytes of memory the kernel touches.
            dirty_fraction: Fraction of the footprint dirty in host caches.
            shared_access_fraction: Fraction of kernel accesses that touch
                data the host may also access concurrently.
            conflict_probability: Probability that a lazily executed batch
                conflicts and must be re-executed.
            kernel_time_ns: The kernel's own execution time (needed to price
                re-execution under the lazy policy).
        """
        if footprint_bytes < 0:
            raise ValueError("footprint_bytes must be non-negative")
        for name, value in (
            ("dirty_fraction", dirty_fraction),
            ("shared_access_fraction", shared_access_fraction),
            ("conflict_probability", conflict_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

        if policy is CoherencePolicy.FLUSH_BASED:
            flushed = footprint_bytes * dirty_fraction
            invalidated = footprint_bytes
            time_ns = (flushed + 0.1 * invalidated) / self.flush_bandwidth_bytes_per_s * 1e9
            return CoherenceOverhead(extra_time_ns=time_ns, extra_traffic_bytes=flushed)

        lines = footprint_bytes / self.cache_line_bytes
        if policy is CoherencePolicy.FINE_GRAINED:
            probes = lines * shared_access_fraction
            serial_time_ns = probes * self.probe_latency_ns / self.probes_overlap_factor
            traffic = probes * self.probe_bytes
            link_time_ns = traffic / self.link_bandwidth_bytes_per_s * 1e9
            return CoherenceOverhead(
                extra_time_ns=max(serial_time_ns, link_time_ns),
                extra_traffic_bytes=traffic,
            )

        # LAZY_BATCHED
        signature_time_ns = self.signature_bytes / self.link_bandwidth_bytes_per_s * 1e9
        reexecution_time_ns = conflict_probability * kernel_time_ns
        traffic = self.signature_bytes + conflict_probability * footprint_bytes
        return CoherenceOverhead(
            extra_time_ns=signature_time_ns + reexecution_time_ns,
            extra_traffic_bytes=traffic,
            reexecution_fraction=conflict_probability,
        )
