"""Convenience kernels built on the :class:`~repro.core.system.PIMSystem` API.

These are the kinds of operations the paper's motivating applications
perform, expressed against the public API so they double as usage examples
and integration-test subjects:

* :func:`bitmap_intersection` — AND together a set of bitmap-index bit
  vectors (the inner loop of an analytics query),
* :func:`zero_initialize` — bulk-zero a freshly allocated region (the
  kernel RowClone accelerates for fork/security zeroing),
* :func:`bulk_checkpoint` — copy a live region to a checkpoint area.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ambit.bitvector import BulkBitVector
from repro.analysis.metrics import OperationMetrics
from repro.core.system import PIMSystem
from repro.rowclone.engine import CopyMode


def bitmap_intersection(
    system: PIMSystem, bitmaps: Sequence[BulkBitVector]
) -> Tuple[BulkBitVector, List[OperationMetrics]]:
    """AND together ``bitmaps`` pairwise and return (result, per-step metrics).

    Args:
        system: The PIM system executing the operation.
        bitmaps: Two or more equal-length bit vectors.

    Returns:
        The intersection bit vector and the metrics of each AND step.
    """
    if len(bitmaps) < 2:
        raise ValueError("bitmap_intersection needs at least two bitmaps")
    lengths = {b.num_bits for b in bitmaps}
    if len(lengths) != 1:
        raise ValueError("all bitmaps must have the same length")
    metrics: List[OperationMetrics] = []
    result = bitmaps[0]
    for operand in bitmaps[1:]:
        result = system.bulk_and(result, operand)
        metrics.append(system.last_operation().pim)
    return result, metrics


def zero_initialize(system: PIMSystem, num_bytes: int) -> OperationMetrics:
    """Zero ``num_bytes`` of memory in DRAM with RowClone.

    This is the kernel behind fast page zeroing (fork, calloc, VM security
    scrubbing) that RowClone accelerates.
    """
    if num_bytes <= 0:
        raise ValueError("num_bytes must be positive")
    return system.fill(num_bytes)


def bulk_checkpoint(
    system: PIMSystem, num_bytes: int, intra_subarray: bool = True
) -> OperationMetrics:
    """Copy a ``num_bytes`` region to a checkpoint area inside DRAM.

    Args:
        system: The PIM system executing the copy.
        num_bytes: Region size.
        intra_subarray: When True the checkpoint area is subarray-aligned
            with the source (RowClone FPM); otherwise the copy crosses banks
            and uses the slower pipelined-serial mode.
    """
    if num_bytes <= 0:
        raise ValueError("num_bytes must be positive")
    mode = CopyMode.FPM if intra_subarray else CopyMode.PSM
    return system.copy(num_bytes, mode)
