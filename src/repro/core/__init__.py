"""User-facing composition layer: the :class:`PIMSystem` and adoption tools.

The paper's final section argues that PIM adoption needs system support:
programming interfaces, runtime scheduling of what to offload, coherence
between PIM logic and the host, and rigorous evaluation infrastructure.
This package is the stack's answer to those needs:

* :class:`repro.core.system.PIMSystem` — one object that composes a host
  CPU, a DRAM (or 3D-stacked) device, the RowClone/Ambit engines, and the
  reporting machinery behind a small, typed API (``bulk_and``, ``copy``,
  ``fill``, ...),
* :mod:`repro.core.offload` — a data-movement-aware offload decision engine
  that chooses between host and PIM execution for a described kernel,
* :mod:`repro.core.coherence` — a LazyPIM-style coherence cost model that
  estimates the overhead of keeping host caches coherent with PIM updates,
* :mod:`repro.core.kernels` — convenience kernels built on the public API
  (bitmap intersection, checkpoint copy, zeroing freshly allocated memory).
"""

from repro.core.coherence import CoherenceModel, CoherencePolicy
from repro.core.kernels import bitmap_intersection, bulk_checkpoint, zero_initialize
from repro.core.offload import ExecutionTarget, KernelDescriptor, OffloadDecision, OffloadPlanner
from repro.core.system import OperationRecord, PIMSystem

__all__ = [
    "CoherenceModel",
    "CoherencePolicy",
    "ExecutionTarget",
    "KernelDescriptor",
    "OffloadDecision",
    "OffloadPlanner",
    "OperationRecord",
    "PIMSystem",
    "bitmap_intersection",
    "bulk_checkpoint",
    "zero_initialize",
]
