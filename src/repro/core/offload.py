"""Offload decision engine.

One of the adoption challenges the paper highlights is deciding *what* to
offload: pushing every function into memory wastes the host's large cores,
while offloading nothing leaves the data-movement savings on the table.
Following the methodology of the consumer-workloads study and the
PIM-enabled-instructions work, the planner scores a kernel by its
data-movement intensity:

* kernels that stream a lot of bytes per unit of computation, or whose
  accesses miss the caches, save the most energy and time when moved to
  PIM logic;
* compute-intensive kernels (high operations per byte) stay on the host,
  whose wide SIMD units and large caches serve them better.

The decision is made by estimating both execution times and energies from
the same roofline-style models used elsewhere in the stack, so it can be
tested against the crossover ablation (A3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.consumer.energy_model import ConsumerEnergyModel, ConsumerEnergyParameters
from repro.consumer.pim_logic import PimOffloadEngine
from repro.consumer.workloads import ExecutionPhase
from repro.stacked.logic_layer import ComputeSiteKind, PimComputeSite


class ExecutionTarget(enum.Enum):
    """Where the planner decides a kernel should run."""

    HOST = "host"
    PIM_CORE = "pim_core"
    PIM_ACCELERATOR = "pim_accelerator"


@dataclass(frozen=True)
class KernelDescriptor:
    """Description of a candidate kernel for offload.

    Attributes:
        name: Kernel name.
        instructions: Instructions (or equivalent operations) it executes.
        memory_bytes: Bytes it moves to/from main memory.
        on_chip_bytes: Bytes served by on-chip caches on the host.
        streaming_fraction: Fraction of its memory traffic that streams.
        has_fixed_function_accelerator: Whether a matching fixed-function
            PIM accelerator exists for this kernel.
    """

    name: str
    instructions: float
    memory_bytes: float
    on_chip_bytes: float = 0.0
    streaming_fraction: float = 0.8
    has_fixed_function_accelerator: bool = False

    @property
    def operations_per_byte(self) -> float:
        """Compute intensity: instructions per byte of memory traffic."""
        if self.memory_bytes <= 0:
            return float("inf")
        return self.instructions / self.memory_bytes

    def as_phase(self, is_target: bool = True) -> ExecutionPhase:
        """View the kernel as a consumer-workload execution phase."""
        return ExecutionPhase(
            name=self.name,
            is_target_function=is_target,
            host_instructions=self.instructions,
            dram_bytes=self.memory_bytes,
            on_chip_bytes=self.on_chip_bytes,
            streaming_fraction=self.streaming_fraction,
        )


@dataclass
class OffloadDecision:
    """Outcome of planning one kernel.

    Attributes:
        kernel: The kernel that was planned.
        target: Chosen execution target.
        host_time_s: Estimated host execution time.
        pim_time_s: Estimated PIM execution time (best PIM option).
        host_energy_j: Estimated host energy.
        pim_energy_j: Estimated PIM energy (best PIM option).
    """

    kernel: KernelDescriptor
    target: ExecutionTarget
    host_time_s: float
    pim_time_s: float
    host_energy_j: float
    pim_energy_j: float

    @property
    def projected_speedup(self) -> float:
        """Host-to-chosen-target speedup (1.0 when staying on the host)."""
        if self.target is ExecutionTarget.HOST:
            return 1.0
        return self.host_time_s / self.pim_time_s if self.pim_time_s > 0 else float("inf")

    @property
    def projected_energy_reduction_percent(self) -> float:
        """Energy reduction of the chosen target vs. the host (0 when host)."""
        if self.target is ExecutionTarget.HOST or self.host_energy_j <= 0:
            return 0.0
        return (self.host_energy_j - self.pim_energy_j) / self.host_energy_j * 100.0


class OffloadPlanner:
    """Chooses host vs. PIM execution for described kernels.

    Args:
        energy_parameters: Host energy/performance parameters.
        offload_engine: PIM offload execution model.
        energy_weight: Weight of energy (vs. time) in the decision score;
            0 optimizes purely for time, 1 purely for energy.
        offload_threshold: Required relative benefit before offloading
            (guards against moving kernels with negligible gains).
    """

    def __init__(
        self,
        energy_parameters: Optional[ConsumerEnergyParameters] = None,
        offload_engine: Optional[PimOffloadEngine] = None,
        energy_weight: float = 0.3,
        offload_threshold: float = 0.05,
    ) -> None:
        if not 0.0 <= energy_weight <= 1.0:
            raise ValueError("energy_weight must be in [0, 1]")
        if offload_threshold < 0:
            raise ValueError("offload_threshold must be non-negative")
        self.energy_parameters = energy_parameters or ConsumerEnergyParameters.chromebook()
        self.host_model = ConsumerEnergyModel(self.energy_parameters)
        self.offload_engine = offload_engine or PimOffloadEngine(self.energy_parameters)
        self.energy_weight = energy_weight
        self.offload_threshold = offload_threshold

    def plan(self, kernel: KernelDescriptor) -> OffloadDecision:
        """Estimate host and PIM costs for ``kernel`` and pick a target."""
        phase = kernel.as_phase()
        host_account = self.host_model.phase_account(phase)

        site_kinds = [ComputeSiteKind.GENERAL_PURPOSE_CORE]
        if kernel.has_fixed_function_accelerator:
            site_kinds.append(ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR)

        best_kind = None
        best_account = None
        best_score = None
        for kind in site_kinds:
            # Reuse the per-phase PIM model directly to avoid building a
            # whole workload around a single kernel.
            compute_site = (
                PimComputeSite.in_order_core()
                if kind is ComputeSiteKind.GENERAL_PURPOSE_CORE
                else PimComputeSite.fixed_function_accelerator()
            )
            account = self.offload_engine.pim_phase_account(phase, compute_site)
            score = self._score(account.time_s, account.total_j)
            if best_score is None or score < best_score:
                best_score = score
                best_kind = kind
                best_account = account

        host_score = self._score(host_account.time_s, host_account.total_j)
        improvement = (host_score - best_score) / host_score if host_score > 0 else 0.0

        if improvement > self.offload_threshold:
            target = (
                ExecutionTarget.PIM_CORE
                if best_kind is ComputeSiteKind.GENERAL_PURPOSE_CORE
                else ExecutionTarget.PIM_ACCELERATOR
            )
        else:
            target = ExecutionTarget.HOST
        return OffloadDecision(
            kernel=kernel,
            target=target,
            host_time_s=host_account.time_s,
            pim_time_s=best_account.time_s,
            host_energy_j=host_account.total_j,
            pim_energy_j=best_account.total_j,
        )

    def _score(self, time_s: float, energy_j: float) -> float:
        """Weighted geometric blend of time and energy (lower is better)."""
        time_term = max(time_s, 1e-12)
        energy_term = max(energy_j, 1e-15)
        return (time_term ** (1.0 - self.energy_weight)) * (energy_term ** self.energy_weight)
