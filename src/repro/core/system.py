"""The :class:`PIMSystem` facade.

``PIMSystem`` is the object most examples and downstream users interact
with.  It owns a host CPU model, a DRAM device, and the two in-DRAM engines
(RowClone and Ambit), executes bulk operations on either the host or the
PIM substrate, and keeps a log of :class:`OperationRecord` entries so users
can inspect what each operation cost and how the PIM execution compared to
the host baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import OperationMetrics
from repro.analysis.tables import ResultTable
from repro.dram.device import DramDevice
from repro.hostsim.cpu import CpuParameters, HostCpu
from repro.hostsim.energy import HostEnergyModel
from repro.rowclone.engine import CopyMode, RowCloneEngine


@dataclass
class OperationRecord:
    """One executed operation plus its host-baseline comparison.

    Attributes:
        pim: Metrics of the PIM execution.
        host_baseline: Metrics of the same operation on the host CPU.
    """

    pim: OperationMetrics
    host_baseline: OperationMetrics

    @property
    def speedup(self) -> float:
        """Latency improvement of PIM over the host baseline."""
        return self.pim.speedup_over(self.host_baseline)

    @property
    def energy_reduction(self) -> float:
        """Energy improvement factor of PIM over the host baseline."""
        return self.pim.energy_reduction_over(self.host_baseline)


class PIMSystem:
    """A complete PIM-capable memory system with a host attached.

    Args:
        device: DRAM device shared by the host and the PIM engines.
        cpu: Host CPU model (used for baselines and non-offloaded work).
        ambit_config: Ambit execution parameters.
        functional: Execute Ambit operations row by row on the simulated
            banks (exact but slow) instead of the analytical fast path.
    """

    def __init__(
        self,
        device: Optional[DramDevice] = None,
        cpu: Optional[HostCpu] = None,
        ambit_config: Optional[AmbitConfig] = None,
        functional: bool = False,
    ) -> None:
        self.device = device or DramDevice.ddr3()
        self.cpu = cpu or HostCpu(CpuParameters.skylake(), self.device, HostEnergyModel.desktop())
        self.ambit = AmbitEngine(self.device, ambit_config)
        self.rowclone = RowCloneEngine(self.device)
        self.functional = functional
        self.history: List[OperationRecord] = []

    @classmethod
    def default(cls) -> "PIMSystem":
        """Dual-channel DDR3-1600 system with a Skylake-class host."""
        return cls()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_bitvector(self, num_bits: int) -> BulkBitVector:
        """Allocate a bit vector placed in the PIM-capable device."""
        return self.ambit.alloc_vector(num_bits)

    # ------------------------------------------------------------------
    # Bulk bitwise operations
    # ------------------------------------------------------------------
    def _bulk_bitwise(
        self, op: str, a: BulkBitVector, b: Optional[BulkBitVector] = None
    ) -> BulkBitVector:
        result, pim_metrics = self.ambit.execute(op, a, b, functional=self.functional)
        host_metrics = self.cpu.bulk_bitwise(op, a.num_bytes)
        self.history.append(OperationRecord(pim=pim_metrics, host_baseline=host_metrics))
        return result

    def bulk_not(self, a: BulkBitVector) -> BulkBitVector:
        """``result = NOT a`` executed in DRAM."""
        return self._bulk_bitwise("not", a)

    def bulk_and(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = a AND b`` executed in DRAM."""
        return self._bulk_bitwise("and", a, b)

    def bulk_or(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = a OR b`` executed in DRAM."""
        return self._bulk_bitwise("or", a, b)

    def bulk_nand(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = NOT (a AND b)`` executed in DRAM."""
        return self._bulk_bitwise("nand", a, b)

    def bulk_nor(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = NOT (a OR b)`` executed in DRAM."""
        return self._bulk_bitwise("nor", a, b)

    def bulk_xor(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = a XOR b`` executed in DRAM."""
        return self._bulk_bitwise("xor", a, b)

    def bulk_xnor(self, a: BulkBitVector, b: BulkBitVector) -> BulkBitVector:
        """``result = NOT (a XOR b)`` executed in DRAM."""
        return self._bulk_bitwise("xnor", a, b)

    # ------------------------------------------------------------------
    # Bulk data movement
    # ------------------------------------------------------------------
    def copy(self, num_bytes: int, mode: CopyMode = CopyMode.FPM) -> OperationMetrics:
        """Bulk copy of ``num_bytes`` with RowClone; records the comparison."""
        pim = self.rowclone.bulk_copy(num_bytes, mode)
        host = self.cpu.bulk_copy(num_bytes)
        self.history.append(OperationRecord(pim=pim, host_baseline=host))
        return pim

    def fill(self, num_bytes: int) -> OperationMetrics:
        """Bulk zero-initialization with RowClone; records the comparison."""
        pim = self.rowclone.bulk_fill(num_bytes)
        host = self.cpu.bulk_fill(num_bytes)
        self.history.append(OperationRecord(pim=pim, host_baseline=host))
        return pim

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def last_operation(self) -> OperationRecord:
        """The most recent operation record."""
        if not self.history:
            raise RuntimeError("no operations have been executed yet")
        return self.history[-1]

    def last_operation_report(self) -> str:
        """Human-readable report of the most recent operation."""
        record = self.last_operation()
        return (
            f"{record.pim.name}: {record.pim.latency_ns:.0f} ns, "
            f"{record.pim.energy_j * 1e9:.1f} nJ "
            f"({record.speedup:.1f}x faster, {record.energy_reduction:.1f}x less energy "
            f"than {record.host_baseline.name})"
        )

    def history_table(self) -> ResultTable:
        """Table of every executed operation and its baseline comparison."""
        table = ResultTable(
            title="PIM operation history",
            columns=["operation", "pim_ns", "host_ns", "speedup", "energy_reduction"],
        )
        for record in self.history:
            table.add_row(
                record.pim.name,
                record.pim.latency_ns,
                record.host_baseline.latency_ns,
                record.speedup,
                record.energy_reduction,
            )
        return table

    def reset_history(self) -> None:
        """Clear the operation log."""
        self.history.clear()
