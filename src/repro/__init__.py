"""repro — a processing-in/near-memory (PIM) simulation stack.

This package reproduces the system stack described in "Enabling Practical
Processing in and near Memory for Data-Intensive Computing" (Mutlu, Ghose,
Gómez-Luna, Ausavarungnirun; DAC 2019).  It provides:

* a DRAM substrate with timing and energy models (:mod:`repro.dram`),
* in-DRAM bulk data movement — RowClone (:mod:`repro.rowclone`),
* in-DRAM bulk bitwise computation — Ambit (:mod:`repro.ambit`),
* a 3D-stacked (HMC-like) memory substrate (:mod:`repro.stacked`),
* the Tesseract near-memory graph accelerator (:mod:`repro.tesseract`)
  and a graph-processing framework (:mod:`repro.graph`),
* the Google consumer-workload PIM analysis (:mod:`repro.consumer`),
* a bitmap-index / BitWeaving database substrate (:mod:`repro.database`),
* an admission-controlled request-service pipeline (:mod:`repro.service`),
* a sharded multi-device cluster tier over it (:mod:`repro.cluster`),
* a unified client API over every tier (:mod:`repro.api`),
* host-processor and GPU baselines (:mod:`repro.hostsim`), and
* a user-facing composition layer (:mod:`repro.core`).

Quickstart::

    from repro.core import PIMSystem

    system = PIMSystem.default()
    a = system.alloc_bitvector(1 << 20)
    b = system.alloc_bitvector(1 << 20)
    a.fill_random(seed=1)
    b.fill_random(seed=2)
    result = system.bulk_and(a, b)
    print(system.last_operation_report())
"""

from repro._version import __version__

__all__ = ["__version__"]
