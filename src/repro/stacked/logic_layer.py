"""Logic-layer area/power budget and PIM compute sites.

The logic layer of an HMC-like stack already contains the vault
controllers, the SerDes links, and the internal switch; what is left over
is the area budget available for PIM logic.  The consumer-workloads study
(Boroumand et al., ASPLOS 2018) measures how much of that budget a small
general-purpose PIM core or a set of fixed-function PIM accelerators would
occupy — the E7 experiment reproduces that accounting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ComputeSiteKind(enum.Enum):
    """What kind of PIM logic occupies a vault's share of the logic layer."""

    NONE = "none"
    GENERAL_PURPOSE_CORE = "pim_core"
    FIXED_FUNCTION_ACCELERATOR = "pim_accelerator"


@dataclass(frozen=True)
class LogicLayerBudget:
    """Area and power available for PIM logic in one stack's logic layer.

    Default values follow the HMC-like organization used by the
    consumer-workloads study: the logic layer die is ~68 mm^2 in a 22 nm
    process; after the vault controllers, switch, and SerDes are accounted
    for, roughly 50 mm^2 remain, shared by 32 vaults (~1.56 mm^2 per vault).
    The thermal budget of the stack limits added power to about 10 W.

    Attributes:
        total_area_mm2: Logic-layer area left for PIM logic (whole stack).
        num_vaults: Vaults sharing the budget.
        power_budget_w: Added power the stack can absorb thermally.
    """

    total_area_mm2: float = 50.0
    num_vaults: int = 32
    power_budget_w: float = 10.0

    @property
    def area_per_vault_mm2(self) -> float:
        """Area share of one vault."""
        return self.total_area_mm2 / self.num_vaults

    def area_fraction(self, area_mm2: float) -> float:
        """Fraction of the per-vault budget that ``area_mm2`` occupies."""
        if area_mm2 < 0:
            raise ValueError("area must be non-negative")
        return area_mm2 / self.area_per_vault_mm2


@dataclass(frozen=True)
class PimComputeSite:
    """One PIM compute site instantiated in a vault's logic-layer share.

    Attributes:
        kind: General-purpose core or fixed-function accelerator.
        area_mm2: Die area of the site.
        frequency_ghz: Operating clock.
        ipc: Sustained instructions (or accelerator operations) per cycle.
        dynamic_power_w: Power while active.
        energy_per_op_j: Energy per executed operation.
    """

    kind: ComputeSiteKind
    area_mm2: float
    frequency_ghz: float
    ipc: float
    dynamic_power_w: float
    energy_per_op_j: float

    @classmethod
    def in_order_core(cls) -> "PimComputeSite":
        """A small low-power general-purpose core (Cortex-A7/A35 class).

        Area ~0.14 mm^2 per core plus 64 KiB of SRAM buffers brings the
        site to ~0.147 mm^2 in the scaled process — about 9.4% of a vault's
        1.56 mm^2 share.
        """
        return cls(
            kind=ComputeSiteKind.GENERAL_PURPOSE_CORE,
            area_mm2=0.147,
            frequency_ghz=2.0,
            ipc=1.0,
            dynamic_power_w=0.12,
            energy_per_op_j=2.0e-11,
        )

    @classmethod
    def fixed_function_accelerator(cls) -> "PimComputeSite":
        """The set of fixed-function accelerators for the consumer workloads.

        One accelerator instance per target function (texture tiling,
        compression, quantization/packing, sub-pixel interpolation, motion
        estimation) totals ~0.55 mm^2 — about 35.4% of a vault's share —
        but processes its function with an order of magnitude less energy
        per operation than a general-purpose core.
        """
        return cls(
            kind=ComputeSiteKind.FIXED_FUNCTION_ACCELERATOR,
            area_mm2=0.553,
            frequency_ghz=1.0,
            ipc=4.0,
            dynamic_power_w=0.20,
            energy_per_op_j=2.0e-12,
        )

    @property
    def ops_per_second(self) -> float:
        """Sustained operation throughput of the site."""
        return self.frequency_ghz * 1e9 * self.ipc

    def compute_time_ns(self, ops: int) -> float:
        """Time to execute ``ops`` operations on this site."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return ops / self.ops_per_second * 1e9

    def compute_energy_j(self, ops: int) -> float:
        """Energy to execute ``ops`` operations on this site."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return ops * self.energy_per_op_j

    def fits(self, budget: LogicLayerBudget) -> bool:
        """True when the site fits within one vault's area share."""
        return self.area_mm2 <= budget.area_per_vault_mm2
