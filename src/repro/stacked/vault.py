"""One vault of a 3D-stacked memory device.

A vault is a vertical slice of the stack: a column of DRAM banks (one or
two per layer), the TSV bus that connects them to the logic layer, and the
vault controller.  Near-memory compute placed in the logic layer is
attached per vault, so each PIM core sees only its vault's partition of
memory at full TSV bandwidth — the organizing principle of Tesseract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters
from repro.dram.energy import DramEnergyParameters


@dataclass(frozen=True)
class VaultParameters:
    """Per-vault configuration.

    Attributes:
        capacity_bytes: DRAM capacity of the vault.
        tsv_bandwidth_bytes_per_s: Peak bandwidth of the vault's TSV bus.
        tsv_energy_pj_per_bit: Energy to move one bit across the TSVs and
            the vault controller (roughly an order of magnitude below
            off-chip DDR I/O).
        access_latency_ns: Average latency of a vault-local access from the
            logic layer (bank access + TSV crossing).
        banks: Number of banks in the vault (for bank-level parallelism).
    """

    capacity_bytes: int = 512 * 1024 * 1024
    tsv_bandwidth_bytes_per_s: float = 16e9
    tsv_energy_pj_per_bit: float = 4.0
    access_latency_ns: float = 45.0
    banks: int = 16

    @classmethod
    def hmc2(cls) -> "VaultParameters":
        """HMC 2.0-style vault: 16 GB/s TSV bus, 16 banks."""
        return cls()

    @property
    def tsv_energy_per_byte_j(self) -> float:
        """TSV + vault-controller energy per byte."""
        return self.tsv_energy_pj_per_bit * 8 * 1e-12


class Vault:
    """One vault: parameters, an optional functional DRAM model, statistics.

    Args:
        index: Vault index within its stack.
        parameters: Vault configuration.
        with_functional_dram: Instantiate a functional DRAM device for the
            vault (only needed by tests/examples that move real bytes).
    """

    def __init__(
        self,
        index: int,
        parameters: Optional[VaultParameters] = None,
        with_functional_dram: bool = False,
    ) -> None:
        self.index = index
        self.parameters = parameters or VaultParameters.hmc2()
        self.dram: Optional[DramDevice] = None
        if with_functional_dram:
            self.dram = DramDevice(
                DramGeometry.hmc_vault_bank(),
                DramTimingParameters.hmc_internal(),
                DramEnergyParameters.hmc_internal(),
            )
        # Accounting of traffic served by this vault.
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # Analytical access accounting
    # ------------------------------------------------------------------
    def record_access(self, num_bytes: int, is_write: bool = False) -> None:
        """Record ``num_bytes`` of local traffic served by the vault."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if is_write:
            self.bytes_written += num_bytes
        else:
            self.bytes_read += num_bytes

    @property
    def bytes_total(self) -> int:
        """Total traffic recorded on this vault."""
        return self.bytes_read + self.bytes_written

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` over the vault's TSV bus."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.parameters.tsv_bandwidth_bytes_per_s * 1e9

    def transfer_energy_j(self, num_bytes: int) -> float:
        """Energy to move ``num_bytes`` across the TSVs (plus array access).

        Includes the DRAM array access energy of the stacked layers, which
        is comparable per bit to a planar device, plus the TSV crossing.
        Uses a flat per-byte figure calibrated from the stacked-DRAM
        energy literature (~10 pJ/b array + ~4 pJ/b TSV ≈ 1.8 pJ/B total is
        too low; we use 6 pJ/bit array + TSV).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        array_pj_per_bit = 6.0
        total_pj_per_bit = array_pj_per_bit + self.parameters.tsv_energy_pj_per_bit
        return num_bytes * 8 * total_pj_per_bit * 1e-12
