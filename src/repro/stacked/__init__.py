"""3D-stacked memory substrate (HMC-like) for near-memory processing.

A 3D-stacked memory device (Hybrid Memory Cube / High-Bandwidth Memory
class) stacks DRAM layers on top of a logic layer and connects them with
through-silicon vias (TSVs).  The properties the paper's second PIM
approach exploits are:

* the *internal* bandwidth (sum of all vault TSV buses) is several times the
  *external* bandwidth of the SerDes links to the host, and
* the logic layer has area and thermal headroom for simple compute —
  in-order cores or fixed-function accelerators — next to each vault.

Modules:

* :mod:`repro.stacked.vault` — one vault (DRAM partition + TSV bus +
  optional compute site),
* :mod:`repro.stacked.logic_layer` — area/power budget of the logic layer
  and the compute-site types that can be instantiated in it,
* :mod:`repro.stacked.hmc` — the full stack and multi-stack systems,
* :mod:`repro.stacked.network` — vault-to-vault and cube-to-cube
  interconnect model.
"""

from repro.stacked.hmc import HmcParameters, HmcStack, StackedMemorySystem
from repro.stacked.logic_layer import ComputeSiteKind, LogicLayerBudget, PimComputeSite
from repro.stacked.network import InterconnectParameters, StackNetwork
from repro.stacked.vault import Vault, VaultParameters

__all__ = [
    "ComputeSiteKind",
    "HmcParameters",
    "HmcStack",
    "InterconnectParameters",
    "LogicLayerBudget",
    "PimComputeSite",
    "StackNetwork",
    "StackedMemorySystem",
    "Vault",
    "VaultParameters",
]
