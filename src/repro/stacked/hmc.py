"""The full 3D-stacked memory device and multi-stack systems.

:class:`HmcStack` models one Hybrid-Memory-Cube-class device: a set of
vaults, the logic layer budget, and the external links to the host.
:class:`StackedMemorySystem` composes several stacks into the memory system
of a Tesseract-style machine (one stack per memory partition, connected in
a mesh).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.stacked.logic_layer import LogicLayerBudget
from repro.stacked.network import InterconnectParameters, StackNetwork
from repro.stacked.vault import Vault, VaultParameters


@dataclass(frozen=True)
class HmcParameters:
    """Configuration of one HMC-like stack.

    Defaults follow the HMC 2.0 specification as used in the paper's
    studies: 8 GiB, 32 vaults, 16 GB/s of TSV bandwidth per vault
    (512 GB/s aggregate internal), and four external SerDes links totalling
    320 GB/s.

    Attributes:
        name: Label for reports.
        num_vaults: Vaults per stack.
        vault: Per-vault parameters.
        external_bandwidth_bytes_per_s: Aggregate link bandwidth to the host.
        external_link_energy_pj_per_bit: SerDes energy per bit to the host.
        logic_layer: Area/power budget for PIM logic.
    """

    name: str = "HMC-2.0"
    num_vaults: int = 32
    vault: VaultParameters = field(default_factory=VaultParameters)
    external_bandwidth_bytes_per_s: float = 320e9
    external_link_energy_pj_per_bit: float = 8.0
    logic_layer: LogicLayerBudget = field(default_factory=LogicLayerBudget)

    @classmethod
    def hmc2(cls) -> "HmcParameters":
        """HMC 2.0 with 32 vaults and 320 GB/s of external bandwidth."""
        return cls()

    @property
    def internal_bandwidth_bytes_per_s(self) -> float:
        """Aggregate TSV bandwidth of all vaults."""
        return self.num_vaults * self.vault.tsv_bandwidth_bytes_per_s

    @property
    def capacity_bytes(self) -> int:
        """Total DRAM capacity of the stack."""
        return self.num_vaults * self.vault.capacity_bytes

    @property
    def total_banks(self) -> int:
        """Total DRAM banks across all vaults."""
        return self.num_vaults * self.vault.banks

    @property
    def bandwidth_amplification(self) -> float:
        """Ratio of internal to external bandwidth — the PIM opportunity."""
        return self.internal_bandwidth_bytes_per_s / self.external_bandwidth_bytes_per_s


class HmcStack:
    """One stacked-memory device with its vaults.

    Args:
        parameters: Stack configuration.
        with_functional_dram: Give each vault a functional DRAM model
            (only needed when real bytes must move).
    """

    def __init__(
        self,
        parameters: Optional[HmcParameters] = None,
        with_functional_dram: bool = False,
    ) -> None:
        self.parameters = parameters or HmcParameters.hmc2()
        self.vaults: List[Vault] = [
            Vault(i, self.parameters.vault, with_functional_dram)
            for i in range(self.parameters.num_vaults)
        ]

    # ------------------------------------------------------------------
    # Bandwidth / latency views
    # ------------------------------------------------------------------
    def internal_stream_time_ns(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` using every vault's TSV bus."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.parameters.internal_bandwidth_bytes_per_s * 1e9

    def external_stream_time_ns(self, num_bytes: int) -> float:
        """Time to stream ``num_bytes`` over the links to the host."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes / self.parameters.external_bandwidth_bytes_per_s * 1e9

    def external_transfer_energy_j(self, num_bytes: int) -> float:
        """Energy of moving ``num_bytes`` between the stack and the host.

        The data still has to be read from (or written to) the DRAM layers
        and cross the TSVs before it reaches the SerDes links, so the
        external cost is the internal cost plus the link energy.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        link_j = num_bytes * 8 * self.parameters.external_link_energy_pj_per_bit * 1e-12
        return self.internal_transfer_energy_j(num_bytes) + link_j

    def internal_transfer_energy_j(self, num_bytes: int) -> float:
        """Array + TSV energy of moving ``num_bytes`` inside the stack."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if not self.vaults:
            return 0.0
        return self.vaults[0].transfer_energy_j(num_bytes)

    def vault_for_address(self, address: int) -> Vault:
        """Map an address to its vault (addresses interleave across vaults
        at 256 B granularity, per the HMC specification's default)."""
        if address < 0 or address >= self.parameters.capacity_bytes:
            raise ValueError("address outside the stack's capacity")
        block = address // 256
        return self.vaults[block % len(self.vaults)]


class StackedMemorySystem:
    """Several stacks plus the network between them (a Tesseract machine).

    Args:
        num_stacks: Number of memory cubes.
        stack_parameters: Per-stack configuration.
        interconnect: Cube-to-cube/vault-to-vault interconnect parameters.
    """

    def __init__(
        self,
        num_stacks: int = 16,
        stack_parameters: Optional[HmcParameters] = None,
        interconnect: Optional[InterconnectParameters] = None,
    ) -> None:
        if num_stacks <= 0:
            raise ValueError("num_stacks must be positive")
        self.stacks: List[HmcStack] = [
            HmcStack(stack_parameters) for _ in range(num_stacks)
        ]
        self.network = StackNetwork(
            interconnect or InterconnectParameters.hmc2_mesh(), num_cubes=num_stacks
        )

    @property
    def num_stacks(self) -> int:
        """Number of cubes in the system."""
        return len(self.stacks)

    @property
    def num_vaults(self) -> int:
        """Total vaults across all cubes."""
        return sum(len(stack.vaults) for stack in self.stacks)

    @property
    def total_internal_bandwidth_bytes_per_s(self) -> float:
        """Aggregate TSV bandwidth across every vault of every cube."""
        return sum(
            stack.parameters.internal_bandwidth_bytes_per_s for stack in self.stacks
        )

    @property
    def capacity_bytes(self) -> int:
        """Total capacity across all cubes."""
        return sum(stack.parameters.capacity_bytes for stack in self.stacks)

    def all_vaults(self) -> List[Vault]:
        """Flat list of every vault (cube-major order)."""
        vaults: List[Vault] = []
        for stack in self.stacks:
            vaults.extend(stack.vaults)
        return vaults

    def vault_location(self, flat_index: int) -> tuple:
        """Return (cube index, vault index within the cube)."""
        if flat_index < 0 or flat_index >= self.num_vaults:
            raise IndexError("vault index out of range")
        per_stack = len(self.stacks[0].vaults)
        return flat_index // per_stack, flat_index % per_stack
