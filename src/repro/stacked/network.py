"""Interconnect model: vault-to-vault switch and cube-to-cube links.

Tesseract's message-passing programming model sends remote function calls
between vaults (possibly in different cubes).  The interconnect model
captures the two levels that matter for performance:

* the on-logic-layer crossbar between the vaults of one cube (wide, cheap,
  low latency), and
* the off-cube SerDes links between cubes (the same links the host uses),
  which are the scarce resource when graphs are partitioned across many
  cubes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectParameters:
    """Bandwidth, latency, and energy of the two interconnect levels.

    Attributes:
        intra_cube_bandwidth_bytes_per_s: Aggregate crossbar bandwidth
            between vaults of one cube.
        intra_cube_latency_ns: Latency of one vault-to-vault message hop.
        intra_cube_energy_pj_per_bit: Energy per bit moved on the crossbar.
        inter_cube_link_bandwidth_bytes_per_s: Bandwidth of one cube-to-cube
            SerDes link (per direction).
        links_per_cube: Number of external links per cube.
        inter_cube_latency_ns: Latency of one cube-to-cube hop.
        inter_cube_energy_pj_per_bit: Energy per bit on a SerDes link.
        message_overhead_bytes: Header/flit overhead added to every message.
    """

    intra_cube_bandwidth_bytes_per_s: float = 256e9
    intra_cube_latency_ns: float = 15.0
    intra_cube_energy_pj_per_bit: float = 2.0
    inter_cube_link_bandwidth_bytes_per_s: float = 40e9
    links_per_cube: int = 4
    inter_cube_latency_ns: float = 60.0
    inter_cube_energy_pj_per_bit: float = 6.0
    message_overhead_bytes: int = 16

    @classmethod
    def hmc2_mesh(cls) -> "InterconnectParameters":
        """HMC 2.0-style links (4 x ~40 GB/s per cube) in a mesh of cubes."""
        return cls()

    @property
    def inter_cube_bandwidth_bytes_per_s(self) -> float:
        """Aggregate external link bandwidth of one cube (all links)."""
        return self.inter_cube_link_bandwidth_bytes_per_s * self.links_per_cube


class StackNetwork:
    """Traffic accounting over the two-level interconnect.

    The model is bandwidth-centric: callers register how many messages of
    what payload go vault-to-vault within a cube and cube-to-cube, and the
    network reports the serialization time on the binding resource and the
    energy spent.  Topological detail (hop counts in the cube mesh) is
    folded into an average hop factor.

    Args:
        parameters: Link/crossbar parameters.
        num_cubes: Number of memory cubes in the system.
        average_inter_cube_hops: Mean number of cube-to-cube hops a remote
            message traverses (1.0 for a fully connected topology, ~2.0 for
            a 4x4 mesh with adaptive routing).
    """

    def __init__(
        self,
        parameters: InterconnectParameters = None,
        num_cubes: int = 16,
        average_inter_cube_hops: float = 2.0,
    ) -> None:
        self.parameters = parameters or InterconnectParameters.hmc2_mesh()
        if num_cubes <= 0:
            raise ValueError("num_cubes must be positive")
        if average_inter_cube_hops < 1.0:
            raise ValueError("average_inter_cube_hops must be >= 1")
        self.num_cubes = num_cubes
        self.average_inter_cube_hops = average_inter_cube_hops
        self.intra_cube_bytes = 0
        self.inter_cube_bytes = 0

    # ------------------------------------------------------------------
    # Traffic registration
    # ------------------------------------------------------------------
    def add_messages(
        self,
        count: int,
        payload_bytes: int,
        crosses_cube: bool,
    ) -> None:
        """Register ``count`` messages of ``payload_bytes`` each."""
        if count < 0 or payload_bytes < 0:
            raise ValueError("count and payload_bytes must be non-negative")
        total = count * (payload_bytes + self.parameters.message_overhead_bytes)
        if crosses_cube:
            self.inter_cube_bytes += total
        else:
            self.intra_cube_bytes += total

    def reset(self) -> None:
        """Clear registered traffic."""
        self.intra_cube_bytes = 0
        self.inter_cube_bytes = 0

    # ------------------------------------------------------------------
    # Serialization time and energy
    # ------------------------------------------------------------------
    def intra_cube_time_ns(self) -> float:
        """Serialization time of the registered intra-cube traffic.

        Crossbar traffic is spread over every cube's crossbar.
        """
        aggregate = self.parameters.intra_cube_bandwidth_bytes_per_s * self.num_cubes
        return self.intra_cube_bytes / aggregate * 1e9 if self.intra_cube_bytes else 0.0

    def inter_cube_time_ns(self) -> float:
        """Serialization time of the registered inter-cube traffic.

        Each message consumes link bandwidth on every hop; the aggregate
        usable bandwidth is the sum of all cubes' links divided by two
        (every hop occupies a sender and a receiver port).
        """
        if not self.inter_cube_bytes:
            return 0.0
        aggregate = (
            self.parameters.inter_cube_bandwidth_bytes_per_s * self.num_cubes / 2.0
        )
        effective_bytes = self.inter_cube_bytes * self.average_inter_cube_hops
        return effective_bytes / aggregate * 1e9

    def total_time_ns(self) -> float:
        """Serialization time on the binding interconnect level."""
        return max(self.intra_cube_time_ns(), self.inter_cube_time_ns())

    def total_energy_j(self) -> float:
        """Energy of all registered traffic."""
        p = self.parameters
        intra = self.intra_cube_bytes * 8 * p.intra_cube_energy_pj_per_bit * 1e-12
        inter = (
            self.inter_cube_bytes
            * self.average_inter_cube_hops
            * 8
            * p.inter_cube_energy_pj_per_bit
            * 1e-12
        )
        return intra + inter
