"""Repetition-aware cross-batch result cache for conjunction bitmaps.

PR 7's CSE is deliberately batch-scoped: a shared sub-chain result dies
when its batch dispatches.  :class:`ResultCache` is the missing layer
*between* batches — finished predicate and conjunction bitmaps, keyed by
the same canonical keys (:mod:`repro.optimizer.canonical`), parked in
host memory so a repeated sub-chain in a later batch costs zero bank
work.

Consistency comes from two mechanisms:

* **Write-driven invalidation** — every entry carries its column-level
  dependency set; a write drops the entries whose dependencies it
  touched (appends/deletes change ``num_rows`` and drop everything for
  that index).
* **Epoch guards** — the optimizer stamps each planned fill with the
  dependency columns' *write epoch* at plan time; a fill whose epoch
  advanced by execution time (a write landed in the same batch) is
  bypassed instead of poisoning the cache.

Cached bytes are stored read-only and handed out as copies — the
``cache-aliasing`` lint rule bans returning the stored buffer itself
(a consumer mutating it in place would corrupt every later hit).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

#: Canonical cache key — structurally the optimizer's
#: :data:`repro.optimizer.canonical.Key`.  Aliased here rather than
#: imported: the optimizer package imports this module (consult/fill
#: pass), so importing back through its ``__init__`` would be a cycle.
Key = Tuple[Any, ...]


class _Entry:
    __slots__ = ("key", "index_id", "columns", "data", "num_rows")

    def __init__(
        self, key: Key, index_id: int, columns: Tuple[str, ...], data: np.ndarray, num_rows: int
    ) -> None:
        self.key = key
        self.index_id = index_id
        self.columns = columns
        self.data = data
        self.num_rows = num_rows


class ResultCache:
    """LRU cache of packed result bitmaps with write-driven invalidation.

    Args:
        capacity_bytes: Total bytes of cached bitmaps retained; least
            recently used entries evict beyond it.
        capacity_entries: Entry-count cap (same LRU policy).
    """

    def __init__(self, capacity_bytes: int = 8 << 20, capacity_entries: int = 512) -> None:
        if capacity_bytes <= 0 or capacity_entries <= 0:
            raise ValueError("cache capacities must be positive")
        self.capacity_bytes = capacity_bytes
        self.capacity_entries = capacity_entries
        self._entries: "OrderedDict[Key, _Entry]" = OrderedDict()
        self._bytes = 0
        # Write epochs: bumped per invalidation; the optimizer's epoch
        # guard compares plan-time and fill-time stamps through these.
        self._index_epochs: Dict[int, int] = {}
        self._column_epochs: Dict[Tuple[int, str], int] = {}
        #: Lifetime accounting (end-to-end visible through BatchMetrics
        #: and the obs counters the frontend emits).
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.bypasses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_entries(self) -> int:
        """Entries currently cached."""
        return len(self._entries)

    @property
    def live_bytes(self) -> int:
        """Bytes currently cached."""
        return self._bytes

    def entries_for(self, index: object) -> List[Key]:
        """Keys of the live entries depending on ``index`` (test surface)."""
        return [key for key, entry in self._entries.items() if entry.index_id == id(index)]

    def live_for(self, index: object) -> List[Tuple[Key, Tuple[str, ...], int, int]]:
        """Live entries of ``index`` as ``(key, columns, num_rows, nbytes)``.

        The cache-consistency lint (:func:`repro.verify.plan_lint
        .lint_cache_consistency`) reads this instead of the stored
        buffers themselves, so certification never aliases cached bytes.
        """
        return [
            (key, entry.columns, entry.num_rows, entry.data.nbytes)
            for key, entry in self._entries.items()
            if entry.index_id == id(index)
        ]

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict accounting summary (reports and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "bypasses": self.bypasses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "live_entries": self.live_entries,
            "live_bytes": self.live_bytes,
        }

    # ------------------------------------------------------------------
    # Epoch guard
    # ------------------------------------------------------------------
    def write_epoch(self, index: object, columns: Iterable[str]) -> int:
        """Current write epoch of (index, dependency columns).

        Monotonic: any invalidation touching the index or one of the
        columns advances it, so equality between a plan-time and a
        fill-time stamp proves no write landed in between.
        """
        index_id = id(index)
        epoch = self._index_epochs.get(index_id, 0)
        for column in columns:
            epoch += self._column_epochs.get((index_id, column), 0)
        return epoch

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def get(self, key: Key, index: object, num_rows: int) -> Optional[np.ndarray]:
        """The cached packed bitmap for ``key``, or ``None``.

        Returns a *copy* of the stored buffer (alias-safety; the stored
        array is additionally read-only).  A hit whose recorded row count
        no longer matches the index is dropped defensively — writes
        should already have invalidated it.
        """
        entry = self._entries.get(key)
        if entry is None or entry.index_id != id(index):
            self.misses += 1
            return None
        if entry.num_rows != num_rows:
            self._drop(key)
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry.data.copy()

    def put(
        self,
        key: Key,
        index: object,
        columns: Iterable[str],
        packed: np.ndarray,
        num_rows: int,
    ) -> None:
        """Cache a finished result bitmap with its dependency columns."""
        data = np.asarray(packed, dtype=np.uint8).copy()
        data.setflags(write=False)
        existing = self._entries.pop(key, None)
        if existing is not None:
            self._bytes -= existing.data.nbytes
        entry = _Entry(key, id(index), tuple(columns), data, num_rows)
        self._entries[key] = entry
        self._bytes += data.nbytes
        self.fills += 1
        while self._entries and (
            self._bytes > self.capacity_bytes or len(self._entries) > self.capacity_entries
        ):
            evicted_key, evicted = self._entries.popitem(last=False)
            self._bytes -= evicted.data.nbytes
            self.evictions += 1
            if evicted_key == key:
                break

    def _drop(self, key: Key) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._bytes -= entry.data.nbytes

    # ------------------------------------------------------------------
    # Write-driven invalidation
    # ------------------------------------------------------------------
    def invalidate_columns(self, index: object, columns: Iterable[str]) -> int:
        """Drop entries of ``index`` depending on any of ``columns``;
        returns the number dropped.  Bumps the columns' write epochs."""
        index_id = id(index)
        stale = set(columns)
        if not stale:
            return 0
        for column in stale:
            key = (index_id, column)
            self._column_epochs[key] = self._column_epochs.get(key, 0) + 1
        dropped = [
            key
            for key, entry in self._entries.items()
            if entry.index_id == index_id and stale.intersection(entry.columns)
        ]
        for key in dropped:
            self._drop(key)
        self.invalidations += len(dropped)
        return len(dropped)

    def invalidate_index(self, index: object) -> int:
        """Drop every entry of ``index`` (row count changed); returns the
        number dropped.  Bumps the index-level write epoch."""
        index_id = id(index)
        self._index_epochs[index_id] = self._index_epochs.get(index_id, 0) + 1
        dropped = [key for key, entry in self._entries.items() if entry.index_id == index_id]
        for key in dropped:
            self._drop(key)
        self.invalidations += len(dropped)
        return len(dropped)

    def clear(self) -> None:
        """Drop everything (keeps lifetime accounting and epochs)."""
        self.invalidations += len(self._entries)
        self._entries.clear()
        self._bytes = 0


def resolve_cache(cache: Union[None, bool, ResultCache]) -> Optional[ResultCache]:
    """Normalize a ``cache=`` knob: ``True`` builds a default-capacity
    cache, ``False``/``None`` disables caching, an instance passes
    through (shareable across frontends of one device)."""
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache() if cache else None


__all__ = ["ResultCache", "resolve_cache"]
