"""``repro.cache`` — the repetition-aware cross-batch result cache.

Conjunction sub-chain bitmaps keyed by :mod:`repro.optimizer.canonical`
keys, consulted by the batch plan optimizer, invalidated by writes, and
accounted end-to-end through the metrics roll-ups.  See
:mod:`repro.cache.result_cache`.
"""

from __future__ import annotations

from repro.cache.result_cache import ResultCache, resolve_cache

__all__ = ["ResultCache", "resolve_cache"]
