"""Obs-driven elastic scale and re-placement controller.

:class:`ElasticController` is the closed-loop half of the cluster's
elasticity story: it ticks on the cluster's **virtual clock** (the
frontend fires :meth:`run_due` from ``advance_to``/``drain``, exactly
like a scheduled fault event) and decides from the **observability
plane only** — it reads ``Observer.snapshot()`` gauges and counters, not
private frontend state, per the ROADMAP's rule that control decisions
must flow through the same signals an operator would watch:

* ``cluster.backlog_ns.shard<i>`` / ``cluster.imbalance`` — queue skew;
* ``cluster.rejection_rate`` — admission pressure;
* ``cluster.key_reads.<label>`` — per-key read heat (what to replicate).

Three actuators, all on the cluster frontend's public surface:

* **Re-replication** (``imbalance > imbalance_threshold``): the hottest
  keys read on the most-backlogged shard gain a replica on the
  least-backlogged one — the copy bytes are charged to the destination
  shard's lanes as a :class:`~repro.service.requests.CopyRequest`
  through its normal admission path (:meth:`ClusterFrontend
  .add_replica`), so elasticity is never free.
* **Join** (mean backlog or rejection rate over threshold for
  ``overload_windows`` consecutive ticks): grow the pool by one shard,
  up to ``max_shards``.
* **Drain + retire** (every routable backlog zero for ``idle_windows``
  consecutive ticks): the youngest routable shard drains, its queue
  migrates, sole-replica keys are copied off, and it leaves the pool,
  down to ``min_shards``.

Every decision is appended to :attr:`ElasticController.events` as a
:class:`ScaleEvent` for post-run audit.  The controller is fully
deterministic: same arrival stream + same policy → same tick instants →
same snapshot values → same decisions.  Wall-clock and host-randomness
imports are banned here by the ``obs-wall-clock`` rule in
``tools/lint_invariants.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs import resolve_observe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.frontend import ClusterFrontend

#: Actions a controller tick may take (ScaleEvent.action values).
SCALE_ACTIONS = ("replicate", "join", "retire")


@dataclass
class ControllerPolicy:
    """Knobs of the elastic control loop (see module docstring).

    Attributes:
        interval_ns: Virtual-clock tick period.
        overload_backlog_ns: Mean routable backlog above which a tick
            counts as overloaded.
        overload_windows: Consecutive overloaded ticks before a join.
        idle_windows: Consecutive all-idle ticks before a retire.
        imbalance_threshold: Hottest/mean backlog ratio above which the
            tick re-replicates hot keys.
        rejection_rate_threshold: Cumulative rejected/offered ratio that
            also counts a tick as overloaded.
        max_shards: Pool-size ceiling for joins (alive shards).
        min_shards: Pool-size floor for retires (routable shards).
        max_replication: Replica-count ceiling per key.
        replicate_per_tick: Hot keys re-replicated per tick at most.
    """

    interval_ns: float = 50_000.0
    overload_backlog_ns: float = 200_000.0
    overload_windows: int = 2
    idle_windows: int = 4
    imbalance_threshold: float = 2.0
    rejection_rate_threshold: float = 0.05
    max_shards: int = 8
    min_shards: int = 1
    max_replication: int = 3
    replicate_per_tick: int = 1

    def __post_init__(self) -> None:
        if self.interval_ns <= 0.0:
            raise ValueError("interval_ns must be positive")
        if self.overload_windows < 1 or self.idle_windows < 1:
            raise ValueError("overload/idle windows must be at least 1")
        if self.imbalance_threshold < 1.0:
            raise ValueError("imbalance_threshold below 1 would always fire")
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        if self.max_replication < 1:
            raise ValueError("max_replication must be at least 1")


@dataclass(frozen=True)
class ScaleEvent:
    """One controller decision, for post-run audit.

    Attributes:
        at_ns: Tick instant the decision was taken.
        action: One of :data:`SCALE_ACTIONS`.
        shard_id: Destination shard (replica target, joined id, or the
            retired shard).
        key: The re-replicated key's label ("" for join/retire).
        detail: Free-form context (the signal that triggered it).
    """

    at_ns: float
    action: str
    shard_id: int
    key: str = ""
    detail: str = ""


class ElasticController:
    """Watches the obs plane and resizes/re-places the cluster.

    Registers itself as ``cluster.controller`` so the frontend's event
    loop fires its ticks; a cluster built without ``observe=`` gets a
    recording observer bound (the controller cannot read a null plane —
    and recording never changes schedules or results).

    Args:
        cluster: The frontend to control.
        policy: Control knobs (defaults to :class:`ControllerPolicy`).
        start_ns: Virtual instant of tick 0 (first tick fires one
            ``interval_ns`` later).
    """

    def __init__(
        self,
        cluster: "ClusterFrontend",
        policy: Optional[ControllerPolicy] = None,
        start_ns: float = 0.0,
    ) -> None:
        self.cluster = cluster
        self.policy = policy or ControllerPolicy()
        if not cluster.obs.enabled:
            cluster.bind_observer(resolve_observe(True))
        self._next_tick = float(start_ns) + self.policy.interval_ns
        #: Decision audit log, in tick order.
        self.events: List[ScaleEvent] = []
        #: Ticks executed so far.
        self.ticks = 0
        self._hot_streak = 0
        self._idle_streak = 0
        cluster.controller = self

    # ------------------------------------------------------------------
    # Schedule surface (consumed by ClusterFrontend.advance_to/drain)
    # ------------------------------------------------------------------
    def next_tick_ns(self) -> float:
        """Instant of the next pending tick."""
        return self._next_tick

    def run_due(self, at_ns: float) -> int:
        """Execute the tick due at or before ``at_ns`` (missed ticks —
        the clock jumped past several periods — collapse into one tick at
        the latest due instant; the skipped windows carried no new
        information, the snapshot is cumulative).  Returns ticks run."""
        if self._next_tick > at_ns:
            return 0
        interval = self.policy.interval_ns
        missed = math.floor((at_ns - self._next_tick) / interval)
        tick_at = self._next_tick + missed * interval
        self.step(tick_at)
        self._next_tick = tick_at + interval
        return 1

    # ------------------------------------------------------------------
    # The control loop body
    # ------------------------------------------------------------------
    def step(self, now_ns: float) -> None:
        """One control decision at ``now_ns`` from the current snapshot."""
        self.ticks += 1
        cluster = self.cluster
        policy = self.policy
        router = cluster.router
        cluster.publish_gauges(now_ns)
        snapshot = cluster.obs.snapshot()
        gauges: Dict[str, float] = snapshot["gauges"]
        counters: Dict[str, float] = snapshot["counters"]

        routable = router.routable_shards()
        backlogs = {
            shard: gauges.get(f"cluster.backlog_ns.shard{shard}", 0.0)
            for shard in routable
        }
        mean = sum(backlogs.values()) / len(backlogs) if backlogs else 0.0
        peak = max(backlogs.values()) if backlogs else 0.0
        imbalance = gauges.get("cluster.imbalance", 1.0)
        rejection_rate = gauges.get("cluster.rejection_rate", 0.0)

        if imbalance > policy.imbalance_threshold and len(routable) > 1:
            self._replicate_hot_keys(now_ns, backlogs, counters)

        overloaded = (
            mean > policy.overload_backlog_ns
            or rejection_rate > policy.rejection_rate_threshold
        )
        if overloaded:
            self._hot_streak += 1
            self._idle_streak = 0
        elif peak <= 0.0:
            self._idle_streak += 1
            self._hot_streak = 0
        else:
            self._hot_streak = 0
            self._idle_streak = 0

        if (
            self._hot_streak >= policy.overload_windows
            and len(router.alive_shards()) < policy.max_shards
        ):
            new_id = cluster.join_shard(at_ns=now_ns)
            self.events.append(
                ScaleEvent(
                    at_ns=now_ns,
                    action="join",
                    shard_id=new_id,
                    detail=f"mean_backlog_ns={mean:.0f} rejection_rate={rejection_rate:.3f}",
                )
            )
            self._hot_streak = 0
        elif (
            self._idle_streak >= policy.idle_windows
            and len(routable) > policy.min_shards
        ):
            victim = max(routable)  # youngest first: joins retire before seeds
            if cluster.retire_shard(victim, at_ns=now_ns):
                self.events.append(
                    ScaleEvent(
                        at_ns=now_ns,
                        action="retire",
                        shard_id=victim,
                        detail=f"idle_windows={self._idle_streak}",
                    )
                )
            self._idle_streak = 0

    def _replicate_hot_keys(
        self,
        now_ns: float,
        backlogs: Dict[int, float],
        counters: Dict[str, float],
    ) -> None:
        """Give the hottest keys of the most-backlogged shard a replica
        on the least-backlogged one (the copy is charged there)."""
        policy = self.policy
        router = self.cluster.router
        hot_shard = max(backlogs, key=lambda shard: (backlogs[shard], shard))
        cold_shard = min(backlogs, key=lambda shard: (backlogs[shard], shard))
        if hot_shard == cold_shard:
            return
        replicated = 0
        for label, reads in self._keys_by_heat(counters):
            if replicated >= policy.replicate_per_tick:
                break
            key = router.key_for_label(label)
            if key is None:
                continue
            replicas = router.replicas(key)
            if (
                hot_shard not in replicas
                or cold_shard in replicas
                or len(replicas) >= policy.max_replication
            ):
                continue
            if self.cluster.add_replica(key, cold_shard, at_ns=now_ns):
                self.events.append(
                    ScaleEvent(
                        at_ns=now_ns,
                        action="replicate",
                        shard_id=cold_shard,
                        key=label,
                        detail=f"reads={reads:.0f} from=shard{hot_shard}",
                    )
                )
                replicated += 1

    @staticmethod
    def _keys_by_heat(counters: Dict[str, float]) -> List[Tuple[str, float]]:
        """Key labels by cumulative read count, hottest first."""
        prefix = "cluster.key_reads."
        heat = [
            (name[len(prefix):], value)
            for name, value in counters.items()
            if name.startswith(prefix)
        ]
        return sorted(heat, key=lambda item: (-item[1], item[0]))


__all__ = [
    "SCALE_ACTIONS",
    "ControllerPolicy",
    "ElasticController",
    "ScaleEvent",
]
