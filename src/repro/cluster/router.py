"""Replica-aware placement of columns onto shard executors.

The router owns one decision: **where data lives**.  Every routable key —
a bitmap-index column name, a :class:`~repro.database.bitweaving
.BitWeavingColumn` object — is placed on ``replication_factor``
consecutive shards (1 for cold keys), and stays there for the router's
lifetime, exactly like a column's planes stay in their banks on one
device.  Two placement strategies:

* ``"hash"`` — a stable CRC32 of the column name picks the home shard
  (deterministic across processes, unlike Python's randomized ``hash``);
  anonymous objects are placed round-robin in first-seen order.
* ``"range"`` — the registered column-name universe is sorted and split
  into contiguous runs, one per shard (range scans over adjacent columns
  co-locate).

**Replication (space-for-bandwidth).**  A hot column's bitmaps are worth
storing on several devices: scans of it then route to the *least-loaded*
replica, which resolves at cluster level the "plane replication across
banks" gap the single-device pipeline left open.  ``hot_columns=None``
replicates every key; otherwise only the named keys get
``replication_factor`` replicas.

The router never inspects load itself — callers pass a ``load`` function
(the cluster frontend supplies its per-shard backlog vector) so placement
stays deterministic and routing stays load-aware.
"""

from __future__ import annotations

import weakref
import zlib
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: Signature of the load oracle callers supply: shard id -> current load
#: (any monotone congestion measure; the cluster frontend uses modeled ns).
LoadFn = Callable[[int], float]


class ShardRouter:
    """Partitions columns across shards; routes reads to replicas.

    Args:
        num_shards: Number of shard executors in the cluster.
        replication_factor: Replicas per *hot* key (consecutive shards
            from the home shard).  Capped by ``num_shards``.
        hot_columns: Keys that deserve replication.  None replicates every
            key; an explicit collection replicates only its members (by
            name for strings, by identity for objects).
        strategy: ``"hash"`` or ``"range"`` (see module docstring).
    """

    def __init__(
        self,
        num_shards: int,
        replication_factor: int = 1,
        hot_columns: Optional[Sequence] = None,
        strategy: str = "hash",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if replication_factor < 1:
            raise ValueError("replication_factor must be at least 1")
        if strategy not in ("hash", "range"):
            raise ValueError(f"unknown placement strategy {strategy!r}")
        self.num_shards = num_shards
        self.replication_factor = min(replication_factor, num_shards)
        self.strategy = strategy
        self._hot_names: Optional[set] = None
        self._hot_ids: Optional[set] = None
        if hot_columns is not None:
            self._hot_names = {k for k in hot_columns if isinstance(k, str)}
            self._hot_ids = {id(k) for k in hot_columns if not isinstance(k, str)}
        self._named_home: Dict[str, int] = {}
        self._object_home: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._round_robin = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def register_names(self, names: Sequence[str]) -> None:
        """Fix the placement of a column-name universe.

        For the ``"range"`` strategy this is where placement happens: the
        sorted names are split into ``num_shards`` contiguous runs — so
        register the whole universe up front for contiguity.  Names that
        trickle in later (or one at a time via :meth:`replicas`) cannot be
        placed contiguously and fall back to round-robin, which at least
        keeps the load spread instead of piling every latecomer onto
        shard 0.  For ``"hash"`` this simply materializes the CRC
        placements eagerly.  Re-registering a known name keeps its
        existing home (placement is sticky, like rows in banks).
        """
        if self.strategy == "range":
            fresh = sorted(n for n in names if n not in self._named_home)
            if len(fresh) == 1:
                self._named_home[fresh[0]] = self._round_robin
                self._round_robin = (self._round_robin + 1) % self.num_shards
                return
            for i, name in enumerate(fresh):
                self._named_home[name] = min(
                    i * self.num_shards // max(1, len(fresh)), self.num_shards - 1
                )
        else:
            for name in names:
                self._named_home.setdefault(
                    name, zlib.crc32(name.encode()) % self.num_shards
                )

    def replicas(self, key: Hashable) -> List[int]:
        """Shard ids holding ``key``, home shard first."""
        home = self._home(key)
        count = self.replication_factor if self._is_hot(key) else 1
        return [(home + i) % self.num_shards for i in range(count)]

    def _home(self, key: Hashable) -> int:
        if isinstance(key, str):
            if key not in self._named_home:
                self.register_names([key])
            return self._named_home[key]
        home = self._object_home.get(key)
        if home is None:
            # Anonymous objects (BitWeaving columns) place round-robin in
            # first-seen order: deterministic per run and perfectly spread.
            home = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.num_shards
            self._object_home[key] = home
        return home

    def _is_hot(self, key: Hashable) -> bool:
        if self._hot_names is None:
            return True
        if isinstance(key, str):
            return key in self._hot_names
        return id(key) in self._hot_ids

    def partition(self, names: Sequence[str]) -> List[List[str]]:
        """Per-shard column lists (replicas included) for a name universe."""
        self.register_names(list(names))
        placed: List[List[str]] = [[] for _ in range(self.num_shards)]
        for name in names:
            for shard in self.replicas(name):
                placed[shard].append(name)
        return placed

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, key: Hashable, load: LoadFn) -> int:
        """Least-loaded replica of ``key`` (home shard wins ties)."""
        return min(self.replicas(key), key=lambda shard: (load(shard), shard))

    def route_any(self, load: LoadFn) -> int:
        """Least-loaded shard overall — for work with no column affinity."""
        return min(range(self.num_shards), key=lambda shard: (load(shard), shard))

    def assign_scatter(
        self, keys: Sequence[Hashable], load: LoadFn
    ) -> List[Tuple[Hashable, int]]:
        """Assign each key of one scatter request to a replica shard.

        Greedy fan-out minimization: a key lands on a shard already chosen
        for a sibling key whenever one of its replicas is, otherwise on
        its least-loaded replica.  Fewer shards touched means fewer
        host-side merges and partial bitmaps on the gather path.
        """
        chosen: List[int] = []
        assignment: List[Tuple[Hashable, int]] = []
        for key in keys:
            candidates = self.replicas(key)
            shared = [s for s in candidates if s in chosen]
            pool = shared if shared else candidates
            shard = min(pool, key=lambda s: (load(s), s))
            if shard not in chosen:
                chosen.append(shard)
            assignment.append((key, shard))
        return assignment
