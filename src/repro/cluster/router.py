"""Replica-aware placement of columns onto shard executors.

The router owns one decision: **where data lives**.  Every routable key —
a bitmap-index column name, a :class:`~repro.database.bitweaving
.BitWeavingColumn` object — is placed on ``replication_factor``
consecutive shards (1 for cold keys), and stays there for the router's
lifetime, exactly like a column's planes stay in their banks on one
device.  Two placement strategies:

* ``"hash"`` — a stable CRC32 of the column name picks the home shard
  (deterministic across processes, unlike Python's randomized ``hash``);
  anonymous objects are placed round-robin in first-seen order.
* ``"range"`` — the registered column-name universe is sorted and split
  into contiguous runs, one per shard (range scans over adjacent columns
  co-locate).

**Replication (space-for-bandwidth).**  A hot column's bitmaps are worth
storing on several devices: scans of it then route to the *least-loaded*
replica, which resolves at cluster level the "plane replication across
banks" gap the single-device pipeline left open.  ``hot_columns=None``
replicates every key; otherwise only the named keys get
``replication_factor`` replicas.

**Health and elasticity.**  The fault-tolerance layer (``repro.cluster
.faults`` / ``repro.cluster.controller``) flips per-shard health bits:

* *down* — the shard failed; it holds its replicas (placement is
  orthogonal to health) but receives no work until revived;
* *draining* — the shard accepts no new work while its queue migrates
  off (the prelude to retirement);
* *retired* — permanently removed from the pool; its index stays valid
  (shard ids are stable) but it can never become routable again.

Routing (:meth:`route`, :meth:`route_any`, :meth:`assign_scatter`)
considers only *routable* replicas — alive and not draining — and raises
:class:`PlacementUnavailable` when a key has none left, which the
cluster frontend turns into a degraded-mode rejection.  With every shard
healthy the routable set equals the replica set and routing is exactly
the fixed-pool behaviour.

**Live re-placement.**  The elasticity controller may *override* a key's
computed placement: :meth:`add_replica` / :meth:`drop_replica` /
:meth:`set_replicas` pin an explicit replica list (re-replicating a hot
key, or moving the last copy off a retiring shard).  Every placement or
health change bumps :attr:`epoch` so callers caching partition-derived
state (the cluster frontend's shard views) can invalidate.

The router never inspects load itself — callers pass a ``load`` function
(the cluster frontend supplies its per-shard backlog vector) so placement
stays deterministic and routing stays load-aware.
"""

from __future__ import annotations

import weakref
import zlib
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

#: Signature of the load oracle callers supply: shard id -> current load
#: (any monotone congestion measure; the cluster frontend uses modeled ns).
LoadFn = Callable[[int], float]


class PlacementUnavailable(LookupError):
    """No routable shard can serve ``key`` (every replica is down,
    draining, or retired).  The cluster frontend maps this to a
    ``"shard_unavailable"`` degraded-mode rejection.

    Attributes:
        key: The unroutable key (None for affinity-free routing when the
            whole pool is unroutable).
    """

    def __init__(self, message: str, key: Optional[Hashable] = None) -> None:
        super().__init__(message)
        self.key = key


class ShardRouter:
    """Partitions columns across shards; routes reads to replicas.

    Args:
        num_shards: Number of shard executors in the cluster.
        replication_factor: Replicas per *hot* key (consecutive shards
            from the home shard).  Capped by ``num_shards``.
        hot_columns: Keys that deserve replication.  None replicates every
            key; an explicit collection replicates only its members (by
            name for strings, by identity for objects).
        strategy: ``"hash"`` or ``"range"`` (see module docstring).
    """

    def __init__(
        self,
        num_shards: int,
        replication_factor: int = 1,
        hot_columns: Optional[Sequence] = None,
        strategy: str = "hash",
    ) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if replication_factor < 1:
            raise ValueError("replication_factor must be at least 1")
        if strategy not in ("hash", "range"):
            raise ValueError(f"unknown placement strategy {strategy!r}")
        self.num_shards = num_shards
        self.replication_factor = min(replication_factor, num_shards)
        self.strategy = strategy
        #: Bumped on every placement or health change; callers caching
        #: partition-derived state key their caches on it.
        self.epoch = 0
        self._hot_names: Optional[set] = None
        self._hot_ids: Optional[set] = None
        if hot_columns is not None:
            self._hot_names = {k for k in hot_columns if isinstance(k, str)}
            self._hot_ids = {id(k) for k in hot_columns if not isinstance(k, str)}
        self._named_home: Dict[str, int] = {}
        self._object_home: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._round_robin = 0
        # Health bits (see module docstring): placement is orthogonal.
        self._down: set = set()
        self._draining: set = set()
        self._retired: set = set()
        # Controller-pinned placements overriding the computed replicas.
        self._named_override: Dict[str, List[int]] = {}
        self._object_override: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        # Stable labels for anonymous object keys (obs counter names).
        self._object_label: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._label_object: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()
        self._label_seq = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def register_names(self, names: Sequence[str]) -> None:
        """Fix the placement of a column-name universe.

        For the ``"range"`` strategy this is where placement happens: the
        sorted names are split into ``num_shards`` contiguous runs — so
        register the whole universe up front for contiguity.  Names that
        trickle in later (or one at a time via :meth:`replicas`) cannot be
        placed contiguously and fall back to round-robin, which at least
        keeps the load spread instead of piling every latecomer onto
        shard 0.  For ``"hash"`` this simply materializes the CRC
        placements eagerly.  Re-registering a known name keeps its
        existing home (placement is sticky, like rows in banks).
        """
        if self.strategy == "range":
            fresh = sorted(n for n in names if n not in self._named_home)
            if len(fresh) == 1:
                self._named_home[fresh[0]] = self._round_robin
                self._round_robin = (self._round_robin + 1) % self.num_shards
                return
            for i, name in enumerate(fresh):
                self._named_home[name] = min(
                    i * self.num_shards // max(1, len(fresh)), self.num_shards - 1
                )
        else:
            for name in names:
                self._named_home.setdefault(
                    name, zlib.crc32(name.encode()) % self.num_shards
                )

    def replicas(self, key: Hashable) -> List[int]:
        """Shard ids holding ``key``, home shard first.

        A controller-pinned override (see :meth:`set_replicas`) wins over
        the computed consecutive-shard placement.
        """
        override = self._override_for(key)
        if override is not None:
            return list(override)
        home = self._home(key)
        count = self.replication_factor if self._is_hot(key) else 1
        return [(home + i) % self.num_shards for i in range(count)]

    def _override_for(self, key: Hashable) -> Optional[List[int]]:
        if isinstance(key, str):
            return self._named_override.get(key)
        try:
            return self._object_override.get(key)
        except TypeError:  # unweakrefable key: never overridden
            return None

    def _home(self, key: Hashable) -> int:
        if isinstance(key, str):
            if key not in self._named_home:
                self.register_names([key])
            return self._named_home[key]
        home = self._object_home.get(key)
        if home is None:
            # Anonymous objects (BitWeaving columns) place round-robin in
            # first-seen order: deterministic per run and perfectly spread.
            home = self._round_robin
            self._round_robin = (self._round_robin + 1) % self.num_shards
            self._object_home[key] = home
        return home

    def _is_hot(self, key: Hashable) -> bool:
        if self._hot_names is None:
            return True
        if isinstance(key, str):
            return key in self._hot_names
        return id(key) in self._hot_ids

    def partition(self, names: Sequence[str]) -> List[List[str]]:
        """Per-shard column lists (replicas included) for a name universe."""
        self.register_names(list(names))
        placed: List[List[str]] = [[] for _ in range(self.num_shards)]
        for name in names:
            for shard in self.replicas(name):
                placed[shard].append(name)
        return placed

    # ------------------------------------------------------------------
    # Live re-placement (controller surface)
    # ------------------------------------------------------------------
    def set_replicas(self, key: Hashable, shards: Sequence[int]) -> None:
        """Pin ``key``'s replica list, overriding computed placement."""
        shards = list(dict.fromkeys(int(s) for s in shards))
        if not shards:
            raise ValueError("a key must keep at least one replica")
        for shard in shards:
            if not 0 <= shard < self.num_shards:
                raise ValueError(f"shard {shard} does not exist")
            if shard in self._retired:
                raise ValueError(f"shard {shard} is retired")
        if isinstance(key, str):
            self._named_home.setdefault(key, shards[0])
            self._named_override[key] = shards
        else:
            self._object_home.setdefault(key, shards[0])
            self._object_override[key] = shards
        self.epoch += 1

    def add_replica(self, key: Hashable, shard: int) -> bool:
        """Add ``shard`` to ``key``'s replica set; False when already there."""
        current = self.replicas(key)
        if shard in current:
            return False
        self.set_replicas(key, current + [shard])
        return True

    def drop_replica(self, key: Hashable, shard: int) -> bool:
        """Remove ``shard`` from ``key``'s replica set; False when absent.

        Raises:
            ValueError: Dropping would leave the key with no replica.
        """
        current = self.replicas(key)
        if shard not in current:
            return False
        remaining = [s for s in current if s != shard]
        if not remaining:
            raise ValueError(
                f"dropping shard {shard} would leave {self.key_label(key)!r} "
                "with no replica"
            )
        self.set_replicas(key, remaining)
        return True

    def placed_keys(self, shard: int) -> List[Hashable]:
        """Every known key whose replica set includes ``shard`` (registered
        names sorted first, then live object keys in first-seen order)."""
        keys: List[Hashable] = [
            name for name in sorted(self._named_home) if shard in self.replicas(name)
        ]
        keys.extend(
            key for key in self._object_home if shard in self.replicas(key)
        )
        return keys

    # ------------------------------------------------------------------
    # Health and pool membership
    # ------------------------------------------------------------------
    def is_alive(self, shard: int) -> bool:
        """True when the shard is neither down nor retired."""
        return shard not in self._down and shard not in self._retired

    def is_routable(self, shard: int) -> bool:
        """True when the shard may receive new work (alive, not draining)."""
        return self.is_alive(shard) and shard not in self._draining

    def is_retired(self, shard: int) -> bool:
        """True when the shard was permanently removed from the pool."""
        return shard in self._retired

    def alive_shards(self) -> List[int]:
        return [s for s in range(self.num_shards) if self.is_alive(s)]

    def routable_shards(self) -> List[int]:
        return [s for s in range(self.num_shards) if self.is_routable(s)]

    def routable_replicas(self, key: Hashable) -> List[int]:
        """Replicas of ``key`` that may receive new work, home first."""
        return [s for s in self.replicas(key) if self.is_routable(s)]

    def mark_down(self, shard: int) -> bool:
        """Record a shard failure; False when it was already down/retired."""
        if shard in self._retired or shard in self._down:
            return False
        self._down.add(shard)
        self.epoch += 1
        return True

    def mark_up(self, shard: int) -> bool:
        """Revive a failed shard; False when it was not down (or retired)."""
        if shard in self._retired or shard not in self._down:
            return False
        self._down.discard(shard)
        self.epoch += 1
        return True

    def mark_draining(self, shard: int, draining: bool = True) -> None:
        """Flip the no-new-work bit (retirement prelude)."""
        if draining:
            self._draining.add(shard)
        else:
            self._draining.discard(shard)
        self.epoch += 1

    def add_shard(self) -> int:
        """Grow the pool by one shard; returns the new shard id.

        Existing placements are sticky (known names keep their homes);
        only keys first seen after the join spread over the larger pool.
        """
        shard = self.num_shards
        self.num_shards += 1
        self.epoch += 1
        return shard

    def retire(self, shard: int) -> None:
        """Permanently remove a shard from the pool.

        The shard id stays valid (indices are stable) but the shard can
        never become routable again.  Every key must have moved off first
        — retiring the last copy of a key would orphan it.

        Raises:
            ValueError: Some key still has ``shard`` in its replica set.
        """
        stranded = self.placed_keys(shard)
        if stranded:
            labels = [self.key_label(k) for k in stranded[:5]]
            raise ValueError(
                f"cannot retire shard {shard}: keys still placed there "
                f"({', '.join(labels)}{', ...' if len(stranded) > 5 else ''})"
            )
        self._retired.add(shard)
        self._down.discard(shard)
        self._draining.discard(shard)
        self.epoch += 1

    # ------------------------------------------------------------------
    # Key labels (obs counter names)
    # ------------------------------------------------------------------
    def key_label(self, key: Hashable) -> str:
        """Stable printable label of a key: the name itself for strings,
        ``obj<N>`` (first-labelled order) for anonymous objects."""
        if isinstance(key, str):
            return key
        try:
            label = self._object_label.get(key)
        except TypeError:
            return f"id{id(key)}"
        if label is None:
            label = f"obj{self._label_seq}"
            self._label_seq += 1
            self._object_label[key] = label
            self._label_object[label] = key
        return label

    def key_for_label(self, label: str) -> Optional[Hashable]:
        """Invert :meth:`key_label`; None for unknown/collected objects."""
        if label in self._named_home:
            return label
        obj = self._label_object.get(label)
        if obj is not None:
            return obj
        # A never-seen name is still a valid key (hash placement is lazy).
        return label if not label.startswith("obj") else None

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route(self, key: Hashable, load: LoadFn) -> int:
        """Least-loaded *routable* replica of ``key`` (home wins ties).

        Raises:
            PlacementUnavailable: Every replica is down/draining/retired.
        """
        candidates = self.routable_replicas(key)
        if not candidates:
            raise PlacementUnavailable(
                f"no routable replica holds {self.key_label(key)!r}", key=key
            )
        return min(candidates, key=lambda shard: (load(shard), shard))

    def route_any(self, load: LoadFn) -> int:
        """Least-loaded routable shard — for work with no column affinity.

        Raises:
            PlacementUnavailable: The whole pool is unroutable.
        """
        candidates = self.routable_shards()
        if not candidates:
            raise PlacementUnavailable("no routable shard in the pool")
        return min(candidates, key=lambda shard: (load(shard), shard))

    def assign_scatter(
        self, keys: Sequence[Hashable], load: LoadFn
    ) -> List[Tuple[Hashable, int]]:
        """Assign each key of one scatter request to a routable replica.

        Greedy fan-out minimization: a key lands on a shard already chosen
        for a sibling key whenever one of its replicas is, otherwise on
        its least-loaded replica.  Fewer shards touched means fewer
        host-side merges and partial bitmaps on the gather path.

        Raises:
            PlacementUnavailable: Some key has no routable replica left.
        """
        chosen: List[int] = []
        assignment: List[Tuple[Hashable, int]] = []
        for key in keys:
            candidates = self.routable_replicas(key)
            if not candidates:
                raise PlacementUnavailable(
                    f"no routable replica holds {self.key_label(key)!r}", key=key
                )
            shared = [s for s in candidates if s in chosen]
            pool = shared if shared else candidates
            shard = min(pool, key=lambda s: (load(s), s))
            if shard not in chosen:
                chosen.append(shard)
            assignment.append((key, shard))
        return assignment
