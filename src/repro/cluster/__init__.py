"""The sharded multi-device cluster tier.

One :class:`~repro.service.frontend.ServiceFrontend` saturates one
device's banks and then queues; the cluster tier scales the service
pipeline *across* devices, the same way the paper scales bulk bitwise
throughput across banks:

* :class:`ShardRouter` — partitions table columns and bitmap planes
  across N shard executors by hash or range, with a replication factor
  for hot columns (space-for-bandwidth: replicated reads route to the
  least-loaded replica), per-shard health bits (down/draining/retired),
  and controller-pinned live re-placement;
* :class:`ClusterFrontend` — one admission-controlled
  :class:`~repro.service.frontend.ServiceFrontend` per shard, a
  per-shard backlog vector for load-aware routing, and scatter-gather of
  cross-shard work (per-shard partial bitmaps merged host-side,
  bit-exact with single-device execution);
* :class:`FaultPlan` — deterministic virtual-clock fault injection:
  shard kills, revivals, drains, retirements, and joins at scheduled
  instants or on predicate triggers, with replica failover of the
  victim's queued work;
* :class:`ElasticController` — the obs-driven scale/re-placement loop:
  re-replicates hot keys under imbalance, joins shards under sustained
  overload, drains and retires them when idle — every copy byte charged
  to the lanes it occupies;
* :class:`~repro.analysis.metrics.ClusterMetrics` — the roll-up:
  per-shard utilization, imbalance factor, cross-shard fan-out,
  aggregate latency percentiles, and the failover/scale accounting.
"""

from repro.cluster.controller import ControllerPolicy, ElasticController, ScaleEvent
from repro.cluster.faults import (
    FaultEvent,
    FaultLogEntry,
    FaultPlan,
    FaultTrigger,
    kill_revive_schedule,
)
from repro.cluster.frontend import ClusterFrontend, ClusterRecord, ClusterResult
from repro.cluster.router import PlacementUnavailable, ShardRouter

__all__ = [
    "ClusterFrontend",
    "ClusterRecord",
    "ClusterResult",
    "ControllerPolicy",
    "ElasticController",
    "FaultEvent",
    "FaultLogEntry",
    "FaultPlan",
    "FaultTrigger",
    "PlacementUnavailable",
    "ScaleEvent",
    "ShardRouter",
    "kill_revive_schedule",
]
