"""The sharded multi-device cluster tier.

One :class:`~repro.service.frontend.ServiceFrontend` saturates one
device's banks and then queues; the cluster tier scales the service
pipeline *across* devices, the same way the paper scales bulk bitwise
throughput across banks:

* :class:`ShardRouter` — partitions table columns and bitmap planes
  across N shard executors by hash or range, with a replication factor
  for hot columns (space-for-bandwidth: replicated reads route to the
  least-loaded replica);
* :class:`ClusterFrontend` — one admission-controlled
  :class:`~repro.service.frontend.ServiceFrontend` per shard, a
  per-shard backlog vector for load-aware routing, and scatter-gather of
  cross-shard work (per-shard partial bitmaps merged host-side,
  bit-exact with single-device execution);
* :class:`~repro.analysis.metrics.ClusterMetrics` — the roll-up:
  per-shard utilization, imbalance factor, cross-shard fan-out, and
  aggregate latency percentiles.
"""

from repro.cluster.frontend import ClusterFrontend, ClusterRecord, ClusterResult
from repro.cluster.router import ShardRouter

__all__ = [
    "ClusterFrontend",
    "ClusterRecord",
    "ClusterResult",
    "ShardRouter",
]
