"""The scatter-gather cluster frontend over N shard executors.

:class:`ClusterFrontend` turns the single-device service pipeline
(frontend → planner → executor) into a multi-shard cluster: one
:class:`~repro.service.frontend.ServiceFrontend` — with its own
:class:`~repro.service.executor.BatchExecutor` over its own
:class:`~repro.ambit.engine.AmbitEngine`-backed device — per shard, an
admission story inherited wholesale from the per-shard frontends, and a
router (:class:`~repro.cluster.router.ShardRouter`) deciding where data
lives.

**Routing.**  A predicate scan has column affinity: it goes to the shard
holding its column's planes — or, for a replicated hot column, to the
*least-loaded* replica, measured by the per-shard backlog vector
(:meth:`shard_load`: remaining in-service time plus the shard's queued
hottest-bank backlog).  Work with no affinity (bulk ops over host
vectors, copies) goes wherever the backlog is smallest, which is what
rebalances the cluster under skew.

**Scatter-gather.**  A :class:`~repro.service.requests
.BitmapConjunctionRequest` whose predicate columns live on different
shards is *scattered*: each shard gets a sub-conjunction over its own
:class:`~repro.database.sharding.BitmapIndexShardView` (lowered and
executed entirely shard-locally), and the gather path merges the partial
bitmaps host-side with bitwise ANDs — bit-exact with single-device
evaluation, because every predicate is applied exactly once.  Scatter
admission is all-or-nothing: if any shard refuses its part, the siblings
are withdrawn (:meth:`ServiceFrontend.cancel`) and the cluster record is
rejected.

**Virtual time.**  Every shard runs its own virtual clock; the cluster
drives them together: arrivals are processed in global order, each shard
serves whatever batches its policy closes before the next arrival, and
routing decisions read the shard loads *at the arrival instant*.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import ClusterMetrics, OperationMetrics, combine_serial
from repro.cache.result_cache import ResultCache
from repro.cluster.faults import FaultPlan
from repro.cluster.router import PlacementUnavailable, ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.sharding import BitmapIndexShardView
from repro.obs import Observer, resolve_observe
from repro.service.executor import BatchExecutor
from repro.service.frontend import ArrivalEvent, PipelineResult, ServiceFrontend
from repro.service.planner import BatchPolicy
from repro.service.requests import (
    BitmapConjunctionRequest,
    CopyRequest,
    FrontendRequest,
    QueuedRequest,
    ScanRequest,
)
from repro.storage.maintenance import MaintenancePolicy, resolve_maintenance
from repro.storage.requests import WriteRequest, charged_columns, is_write_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.controller import ElasticController
    from repro.optimizer.passes import OptimizerConfig

#: ``rejected_reason`` values that mean infrastructure failure (a shard
#: died or no replica holds the data), not admission-control refusal.
#: :meth:`repro.api.session.Future.result` maps these to the typed
#: :class:`~repro.api.session.ShardUnavailable` outcome.
FAILURE_REASONS = frozenset({"shard_failed", "shard_unavailable", "shard_retired"})


@dataclass
class ClusterRecord:
    """Envelope of one cluster-level request across its shard parts.

    A request that scatters over G shards has G ``parts`` (one per-shard
    :class:`~repro.service.requests.QueuedRequest`); a routed scan has
    one.  Times are absolute nanoseconds on the cluster's virtual clock.

    Attributes:
        request: The cluster-level request as the client offered it.
        arrival_ns: When the request reached the cluster frontend.
        priority: Larger values are served first (propagated to parts).
        deadline_ns: Absolute completion deadline, or None.
        seq: Cluster admission sequence number.
        shard_ids: Shards the request was routed/scattered to.
        parts: Per-shard sub-request envelopes, aligned with shard_ids.
        admitted: False when any shard refused its part.
        rejected_reason: Why admission refused it ("" if admitted).
        value: Gathered result (merged partial bitmaps for a scattered
            conjunction; the part's own value otherwise).
        metrics: Serial device cost across the parts (host-side merge ANDs
            are *not* device work and are tallied in
            :attr:`ClusterMetrics.merge_ops` /
            :attr:`ClusterMetrics.host_merge_ns` instead).
        host_merge_ns: Host time charged for this record's gather-side
            AND-merges (``merge_ns_per_op`` per merge; 0 for a single
            part).  Included in ``finish_ns`` and therefore the sojourn.
            Shard-local host merges (the plan optimizer's split-mode
            joins) are already inside each part's finish and roll up in
            the per-shard :class:`~repro.analysis.metrics.QueueMetrics`.
        start_ns / finish_ns: First part's service start / last part's
            finish plus the host merge time (NaN before service).
    """

    request: FrontendRequest
    arrival_ns: float = 0.0
    priority: int = 0
    deadline_ns: Optional[float] = None
    seq: int = 0
    shard_ids: List[int] = field(default_factory=list)
    parts: List[QueuedRequest] = field(default_factory=list)
    admitted: bool = True
    rejected_reason: str = ""
    value: Any = None
    metrics: Optional[OperationMetrics] = None
    host_merge_ns: float = 0.0
    start_ns: float = math.nan
    finish_ns: float = math.nan
    #: Cached bitmaps this write dropped across the shard-local caches
    #: (set by the coordinator's invalidation step; 0 for reads).
    cache_invalidations: int = 0
    #: Rows the coordinator's functional mutation touched (write requests
    #: only; the authoritative gather value — charge-only scatter parts
    #: report pre-deduplication estimates).
    rows_affected: Optional[int] = None
    #: Root :class:`repro.obs.Span` of the record's lifecycle (set only
    #: when the cluster's observability plane is recording); the shard
    #: parts' spans are adopted as its children at scatter time.
    trace: Any = field(default=None, repr=False, compare=False)
    #: Times any part of this record was re-offered off a failed or
    #: draining shard (0 for requests untouched by faults).
    failovers: int = 0
    #: The cancelled originals of re-offered parts, in migration order
    #: (the live replacements sit in :attr:`parts`); audit trail for the
    #: conservation property — nothing is dropped, only re-homed.
    migrated_parts: List[QueuedRequest] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """True once every part has been served (and none was shed)."""
        return self.admitted and bool(self.parts) and all(p.completed for p in self.parts)

    @property
    def fanout(self) -> int:
        """Shards this request touched."""
        return len(self.shard_ids)

    @property
    def ops_eliminated(self) -> int:
        """Device ops shard-local plan optimizers removed across the parts."""
        return sum(p.ops_eliminated for p in self.parts)

    @property
    def shared_subchains(self) -> int:
        """Sub-chains the parts served from another request's lowering."""
        return sum(p.shared_subchains for p in self.parts)

    @property
    def cache_hits(self) -> int:
        """Sub-chains served from the shard-local result caches."""
        return sum(p.cache_hits for p in self.parts)

    @property
    def cache_misses(self) -> int:
        """Shard-local result-cache lookups that missed."""
        return sum(p.cache_misses for p in self.parts)

    @property
    def wait_ns(self) -> float:
        """Arrival to first part's service start (NaN before service)."""
        return self.start_ns - self.arrival_ns

    @property
    def sojourn_ns(self) -> float:
        """Arrival to last part's finish (NaN before service)."""
        return self.finish_ns - self.arrival_ns

    @property
    def deadline_missed(self) -> bool:
        """True when the gathered result completed after the deadline."""
        return (
            self.deadline_ns is not None
            and self.completed
            and self.finish_ns > self.deadline_ns + 1e-9
        )


@dataclass
class ClusterResult:
    """Outcome of serving a request stream through the cluster.

    Attributes:
        records: Every offered cluster request's envelope, in offer order.
        per_shard: Each shard frontend's own pipeline result.
        metrics: The cluster roll-up (utilization, imbalance, fan-out,
            aggregate percentiles).
    """

    records: List[ClusterRecord] = field(default_factory=list)
    per_shard: List[PipelineResult] = field(default_factory=list)
    metrics: Optional[ClusterMetrics] = None

    def completed(self) -> List[ClusterRecord]:
        """Envelopes that finished service, in offer order."""
        return [r for r in self.records if r.completed]

    def rejected(self) -> List[ClusterRecord]:
        """Envelopes refused by admission control, in offer order."""
        return [r for r in self.records if not r.admitted]


def _default_engine_factory() -> AmbitEngine:
    return AmbitEngine(config=AmbitConfig(vectorized_functional=True))


class ClusterFrontend:
    """Routes, scatters, and gathers requests over N shard executors.

    Args:
        num_shards: Shard executors to build (ignored when ``shards`` is
            given).
        router: Placement/routing policy (defaults to a hash router with
            no replication over ``num_shards`` shards).
        engine_factory: Builds one engine **per shard** — each shard is
            its own device; sharing an engine would share banks and void
            the scaling story.
        policy: Batch-closing policy applied to every shard's planner.
        max_queue_depth / max_backlog_ns / shed_low_priority: Per-shard
            admission knobs (see :class:`ServiceFrontend`).
        functional: Execute shard batches on the simulated banks.
        pipeline: Per-shard lane pipelining (the default; see
            :class:`~repro.service.executor.BatchExecutor`).  Each shard
            advances its own bank lanes independently, so a hot shard
            dispatches its next batch the moment one of its banks drains
            instead of stalling behind its own prior batch's makespan.
            ``False`` restores batch-synchronous shards for A/B runs.
        sanitize: Run the static verification layer cluster-wide: every
            shard executor is built with ``sanitize=True`` (schedule race
            detector on each dispatch, plan lint on each lowered chain)
            and every scattered conjunction's shard parts are certified
            to cover the full predicate set exactly once before being
            offered.  Ignored for pre-built ``shards``, which keep their
            own executors' setting.
        shards: Pre-built shard frontends (overrides the factory path).
        merge_ns_per_op: Host time charged per *level* of the gather-side
            AND-merge tree of shard partials.  The merge runs on the
            host, not on a device: partials are merged pairwise in
            parallel — ``ceil(log2(fanout))`` tree levels, not a serial
            per-op chain — and the total is charged to the record's
            completion time (and rolled up in
            :attr:`ClusterMetrics.host_merge_ns`) rather than to device
            metrics.  The default prices one AND over an 8 KiB row-sized
            bitmap through host memory (read two operands, write one
            result at tens of GB/s); 0 restores the pre-costing
            behaviour.
        optimize: Enable the batch plan optimizer on every shard's
            planner: ``True`` for the default
            :class:`~repro.optimizer.OptimizerConfig`, or an explicit
            config.  Each shard's batches CSE and split shard-locally
            (over its own shard views and bank lanes); the gather path is
            untouched.  Ignored for pre-built ``shards``.
        cache: Shard-local result caching: ``True`` gives every shard
            frontend its *own* :class:`~repro.cache.ResultCache` (entries
            are keyed by the shard's index views, so caches never share
            bitmaps across shards); an instance is shared verbatim (the
            view-scoped keys keep shard entries disjoint even then).
            Writes invalidate the affected entries on every shard at the
            coordinator (see :meth:`offer`).  Ignored for pre-built
            ``shards`` — their planners' caches win.
        maintenance: Index-maintenance policy for cluster writes: a
            strategy name or one :class:`~repro.storage
            .MaintenancePolicy` shared by the coordinator and every shard
            planner (so hybrid hotness aggregates reads cluster-wide).
            For pre-built ``shards`` the policy still drives the
            coordinator's functional write step, but each shard keeps
            its planner's own policy for charging.
        observe: Observability plane (``repro.obs``): ``True`` records
            one span tree per cluster request (scatter → per-shard parts
            → gather-merge) with every shard's frontend and executor
            sharing the plane (shard-prefixed lane tracks), plus
            cluster-level counters/histograms.  Applies to pre-built
            ``shards`` too (they are re-bound).  Recording never changes
            routing, admission, schedules, or results.
    """

    #: Default host cost of AND-merging two 8 KiB partial bitmaps.
    DEFAULT_MERGE_NS_PER_OP = 250.0

    def __init__(
        self,
        num_shards: int = 2,
        router: Optional[ShardRouter] = None,
        engine_factory: Optional[Callable[[], AmbitEngine]] = None,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: int = 64,
        max_backlog_ns: Optional[float] = None,
        functional: bool = False,
        pipeline: bool = True,
        shed_low_priority: bool = False,
        sanitize: bool = False,
        shards: Optional[List[ServiceFrontend]] = None,
        merge_ns_per_op: float = DEFAULT_MERGE_NS_PER_OP,
        optimize: Union[bool, "OptimizerConfig"] = False,
        cache: Union[None, bool, ResultCache] = None,
        maintenance: Union[None, str, MaintenancePolicy] = None,
        observe: Union[bool, Observer] = False,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        if merge_ns_per_op < 0.0:
            raise ValueError("merge_ns_per_op must be non-negative")
        self.merge_ns_per_op = float(merge_ns_per_op)
        self.sanitize = sanitize
        self.maintenance = resolve_maintenance(maintenance)
        # Shard-construction knobs are kept so :meth:`join_shard` can mint
        # new shards identical to the originals (pre-built ``shards`` get
        # joins built from the same knobs the defaults would use).
        self._engine_factory = engine_factory or _default_engine_factory
        self._pipeline = pipeline
        self._shard_kwargs: Dict[str, Any] = dict(
            policy=policy,
            max_queue_depth=max_queue_depth,
            max_backlog_ns=max_backlog_ns,
            functional=functional,
            shed_low_priority=shed_low_priority,
            optimize=optimize,
            cache=cache,
            maintenance=self.maintenance,
        )
        if shards is not None:
            if not shards:
                raise ValueError("shards must not be empty")
            self.shards = list(shards)
        else:
            if num_shards < 1:
                raise ValueError("num_shards must be at least 1")
            self.shards = [self._build_shard() for _ in range(num_shards)]
        self.router = router or ShardRouter(len(self.shards))
        if self.router.num_shards != len(self.shards):
            raise ValueError("router shard count must match the cluster's")
        self.records: List[ClusterRecord] = []
        self.clock_ns = 0.0
        self._seq = 0
        self.obs = resolve_observe(False)
        resolved = resolve_observe(observe)
        if resolved.enabled:
            self.bind_observer(resolved)
        # Shard views per index, pinned by the index object itself (id()
        # reuse must not hand one index's placement to another) and by
        # the router's placement epoch (live re-placement, joins, and
        # retires must re-partition the shard views).
        self._index_views: Dict[int, Tuple[BitmapIndex, int, Dict[int, BitmapIndexShardView]]] = {}
        #: The fault schedule driven by :meth:`advance_to`/:meth:`drain`
        #: (None runs the healthy fixed-pool behaviour untouched).
        self.faults = faults
        #: The elastic controller, when one is attached
        #: (:class:`~repro.cluster.controller.ElasticController` registers
        #: itself here).
        self.controller: Optional["ElasticController"] = None
        # Elastic accounting (mirrors the cluster.failover.* and
        # cluster.scale.* obs counters, so obs-off runs still report).
        self.shards_failed = 0
        self.shards_revived = 0
        self.shards_joined = 0
        self.shards_retired = 0
        self.failover_parts = 0
        self.failover_records_failed = 0
        self.replications = 0
        self.copied_bytes = 0
        self.copy_ns_total = 0.0

    def _build_shard(self) -> ServiceFrontend:
        return ServiceFrontend(
            executor=BatchExecutor(
                engine=self._engine_factory(),
                pipeline=self._pipeline,
                sanitize=self.sanitize,
            ),
            **self._shard_kwargs,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, obs: Observer) -> None:
        """Share one observability plane across the whole cluster.

        Every shard frontend and executor records into the same tracer
        and metrics registry; each shard's executor gets a ``shard<i>/``
        track prefix so identical bank keys on different shard devices
        stay distinct Perfetto tracks.
        """
        self.obs = obs
        for shard_id, shard in enumerate(self.shards):
            shard.executor.obs_prefix = f"shard{shard_id}/"
            shard.bind_observer(obs)

    def _obs_offered(self, record: ClusterRecord) -> None:
        """Open the cluster record's root span at arrival."""
        record.trace = self.obs.tracer.span(
            "cluster_request", category="cluster", start_ns=record.arrival_ns
        ).set(
            kind=type(record.request).__name__,
            seq=record.seq,
            priority=record.priority,
        )
        self.obs.metrics.counter("cluster.offered").inc()

    def _obs_scattered(self, record: ClusterRecord) -> None:
        """Record the scatter outcome and adopt the part spans."""
        span = record.trace
        span.child(
            "scatter",
            category="cluster",
            start_ns=record.arrival_ns,
            end_ns=record.arrival_ns,
        ).set(
            fanout=record.fanout,
            shard_ids=",".join(str(s) for s in record.shard_ids),
            admitted=record.admitted,
        )
        for shard_id, part in zip(record.shard_ids, record.parts):
            if part.trace is not None:
                part.trace.set(shard=shard_id)
                self.obs.tracer.adopt(part.trace, span)
        registry = self.obs.metrics
        registry.counter("cluster.fanout").inc(float(record.fanout))
        if record.admitted:
            registry.counter("cluster.admitted").inc()
        else:
            span.end(record.arrival_ns).set(
                status="rejected", reason=record.rejected_reason
            )
            registry.counter("cluster.rejected").inc()

    def _obs_key_reads(self, request: FrontendRequest) -> None:
        """Count per-key read touches (the controller's hotness signal)."""
        registry = self.obs.metrics
        if isinstance(request, ScanRequest):
            label = self.router.key_label(request.column)
            registry.counter(f"cluster.key_reads.{label}").inc()
        elif isinstance(request, BitmapConjunctionRequest):
            for column, _ in request.predicates:
                label = self.router.key_label(column)
                registry.counter(f"cluster.key_reads.{label}").inc()

    def _obs_gathered(self, record: ClusterRecord, tree_depth: int) -> None:
        """Attach the gather-merge child and close the record's root."""
        span = record.trace
        if span is None:
            return
        if record.host_merge_ns > 0.0:
            span.child(
                "gather_merge",
                category="cluster",
                start_ns=record.finish_ns - record.host_merge_ns,
                end_ns=record.finish_ns,
            ).set(parts=len(record.parts), tree_levels=tree_depth)
        span.end(record.finish_ns).set(
            status="completed", deadline_missed=record.deadline_missed
        )
        registry = self.obs.metrics
        registry.counter("cluster.completed").inc()
        registry.counter("cluster.merge_ops").inc(float(max(0, len(record.parts) - 1)))
        registry.histogram("cluster.sojourn_ns").observe(record.sojourn_ns)
        if record.host_merge_ns > 0.0:
            registry.histogram("cluster.host_merge_ns").observe(record.host_merge_ns)

    # ------------------------------------------------------------------
    # Load and placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_load(self, shard_id: int, at_ns: Optional[float] = None) -> float:
        """Backlog of one shard at an instant: remaining in-service time
        (how far the shard's completion horizon — its clock, or with
        pipelining the busiest lane's in-flight horizon — sits past
        ``at_ns``) plus its queued hottest-bank backlog."""
        at = self.clock_ns if at_ns is None else at_ns
        shard = self.shards[shard_id]
        return max(0.0, shard.completion_ns - at) + shard.backlog_ns

    def backlog_vector(self, at_ns: Optional[float] = None) -> List[float]:
        """Per-shard backlog (the routing signal), shard order."""
        return [self.shard_load(i, at_ns) for i in range(self.num_shards)]

    def _views_for(self, index: BitmapIndex) -> Dict[int, BitmapIndexShardView]:
        entry = self._index_views.get(id(index))
        if entry is not None and entry[0] is index and entry[1] == self.router.epoch:
            return entry[2]
        placed = self.router.partition(index.indexed_columns())
        views = {
            shard: index.shard_view(columns)
            for shard, columns in enumerate(placed)
            if columns
        }
        self._index_views[id(index)] = (index, self.router.epoch, views)
        return views

    # ------------------------------------------------------------------
    # Admission (routing + scatter)
    # ------------------------------------------------------------------
    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ) -> ClusterRecord:
        """Route one request to its shard(s); returns the cluster envelope.

        Scans go to the least-loaded replica of their column's shard set;
        conjunctions scatter into shard-local sub-conjunctions; everything
        else goes to the least-loaded shard.  Scatter admission is
        all-or-nothing: one refused part withdraws the rest.
        """
        arrival = self.clock_ns if arrival_ns is None else float(arrival_ns)
        self.clock_ns = max(self.clock_ns, arrival)
        record = ClusterRecord(
            request=request,
            arrival_ns=arrival,
            priority=priority,
            deadline_ns=deadline_ns,
            seq=self._seq,
        )
        self._seq += 1
        self.records.append(record)
        if self.obs.enabled:
            self._obs_offered(record)

        load = lambda shard: self.shard_load(shard, arrival)  # noqa: E731
        try:
            if isinstance(request, BitmapConjunctionRequest):
                plan = self._scatter_conjunction(request, load)
            elif is_write_request(request):
                plan = self._scatter_write(request, load)
            elif isinstance(request, ScanRequest):
                plan = [(self.router.route(request.column, load), request)]
            else:
                plan = [(self.router.route_any(load), request)]
        except PlacementUnavailable:
            # Degraded mode: no routable replica holds the data.  Reject
            # with a failure-typed reason (mapped to ShardUnavailable by
            # the session layer) instead of serving a wrong answer.
            record.admitted = False
            record.rejected_reason = "shard_unavailable"
            if self.obs.enabled:
                self.obs.metrics.counter("cluster.failover.unavailable").inc()
                self._obs_scattered(record)
            return record
        if self.obs.enabled:
            self._obs_key_reads(request)

        for shard_id, sub_request in plan:
            part = self.shards[shard_id].offer(
                sub_request,
                priority=priority,
                deadline_ns=deadline_ns,
                arrival_ns=arrival,
            )
            record.shard_ids.append(shard_id)
            record.parts.append(part)
            if not part.admitted:
                record.admitted = False
                record.rejected_reason = part.rejected_reason
                for shard, sibling in zip(record.shard_ids[:-1], record.parts[:-1]):
                    self.shards[shard].cancel(sibling)
                break
        if record.admitted and is_write_request(request):
            # The scatter parts are charge-only; the functional mutation
            # and the shard-cache invalidations commit exactly once, at
            # the coordinator, only after the all-or-nothing admission
            # held (a rejected write must not mutate the table).
            self._commit_write(request, record)
        if self.obs.enabled:
            self._obs_scattered(record)
        return record

    def _scatter_write(
        self, request: WriteRequest, load
    ) -> List[Tuple[int, WriteRequest]]:
        """Split a write into charge-only shard parts by column placement.

        Every shard holding an affected column gets a part restricted to
        its locally-placed columns (``apply=False`` — the coordinator's
        :meth:`_commit_write` performs the mutation and the parent-index
        maintenance once).  A replicated column appears in every
        replica's part: each replica's device pays to maintain its copy.
        A write touching no placed column (e.g. an update of an
        unindexed column) still charges its row traffic on the
        least-loaded shard.
        """
        views = self._views_for(request.index)
        charged = charged_columns(request)
        parts: List[Tuple[int, WriteRequest]] = []
        covered: set = set()
        placed_anywhere: set = set()
        for shard_id, view in sorted(views.items()):
            local = tuple(c for c in charged if c in view.columns)
            placed_anywhere.update(local)
            if not self.router.is_routable(shard_id):
                # A down/draining replica skips its maintenance charge —
                # the surviving replicas still cover the column (checked
                # below); the copy is rebuilt by re-replication, not here.
                continue
            if local:
                covered.update(local)
                parts.append(
                    (shard_id, dataclasses.replace(request, columns=local, apply=False))
                )
        missing = placed_anywhere - covered
        if missing:
            column = sorted(missing)[0]
            raise PlacementUnavailable(
                f"no routable replica holds written column {column!r}", key=column
            )
        if not parts:
            parts = [
                (
                    self.router.route_any(load),
                    dataclasses.replace(request, columns=(), apply=False),
                )
            ]
        if self.sanitize:
            from repro.verify.plan_lint import check_write_scatter  # local: avoid cycle

            # Certify the scatter before any shard sees its part: the
            # charged columns must all land on some replica, and no part
            # may charge a column the write does not affect.
            check_write_scatter(charged, [(s, p.columns or ()) for s, p in parts])
        return parts

    def _commit_write(self, request: WriteRequest, record: ClusterRecord) -> None:
        """Apply the mutation + parent maintenance; invalidate shard caches.

        Runs at the write's arrival instant, so every read lowered after
        it computes from (and caches) post-write planes, while fills
        planned from pre-write planes are killed by the caches' epoch
        guards — the coordinator bumps the epochs here.  The returned
        primitives are discarded: maintenance *cost* is charged by the
        shard parts, on the devices that hold the columns.
        """
        coordinator = dataclasses.replace(request, columns=None, apply=True)
        outcome = self.maintenance.lower_write(
            coordinator, self.shards[record.shard_ids[0]].executor
        )
        record.rows_affected = outcome.rows_affected
        views = self._views_for(request.index)
        dropped = 0
        for shard_id, shard in enumerate(self.shards):
            cache = shard.cache
            view = views.get(shard_id)
            if cache is None or view is None:
                continue
            if outcome.invalidate_all:
                dropped += cache.invalidate_index(view)
            else:
                local = [c for c in outcome.invalidate_columns if c in view.columns]
                if local:
                    dropped += cache.invalidate_columns(view, local)
        record.cache_invalidations = dropped

    def _scatter_conjunction(
        self, request: BitmapConjunctionRequest, load
    ) -> List[Tuple[int, BitmapConjunctionRequest]]:
        """Split a conjunction into shard-local sub-conjunctions."""
        index = request.index
        views = self._views_for(index)
        assignment = self.router.assign_scatter(
            [column for column, _ in request.predicates], load
        )
        by_shard: Dict[int, List[Tuple[str, Tuple[int, ...]]]] = {}
        for (column, values), (_, shard) in zip(request.predicates, assignment):
            by_shard.setdefault(shard, []).append((column, values))
        parts = [
            (
                shard,
                BitmapConjunctionRequest(
                    index=views[shard], predicates=tuple(predicates)
                ),
            )
            for shard, predicates in sorted(by_shard.items())
        ]
        if self.sanitize:
            from repro.verify.plan_lint import check_scatter_coverage  # local: avoid cycle

            # Certify the scatter before any shard sees its part: the
            # shard-local sub-conjunctions must cover the predicate set
            # exactly once, else the gather AND silently corrupts.
            check_scatter_coverage(
                request.predicates,
                [(shard, sub.predicates) for shard, sub in parts],
            )
        return parts

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _next_event_ns(self, include_controller: bool = True) -> Optional[float]:
        """Next fault event or controller tick due, or None."""
        candidates: List[float] = []
        if self.faults is not None:
            due = self.faults.next_fire_ns()
            if due is not None:
                candidates.append(due)
        if include_controller and self.controller is not None:
            candidates.append(self.controller.next_tick_ns())
        return min(candidates) if candidates else None

    def _fire_events(self, at_ns: float) -> None:
        """Apply every fault event and controller tick due at ``at_ns``.

        The caller must have advanced all shards to ``at_ns`` first, so
        a kill lands exactly at its scheduled instant: dispatched batches
        have completed (fail-stop at the dispatch boundary) and the
        victim's still-queued work migrates from the current state.
        """
        if self.faults is not None:
            self.faults.fire_due(self, at_ns)
        if self.controller is not None:
            self.controller.run_due(at_ns)

    def advance_to(self, until_ns: float) -> None:
        """Advance every shard's virtual clock towards ``until_ns``,
        firing fault events and controller ticks at their due instants."""
        until = float(until_ns)
        while True:
            due = self._next_event_ns()
            if due is None or due > until:
                break
            fire_at = max(due, self.clock_ns)
            for shard in self.shards:
                shard.advance_to(fire_at)
            self.clock_ns = max(self.clock_ns, fire_at)
            self._fire_events(fire_at)
        for shard in self.shards:
            shard.advance_to(until)
        self.clock_ns = max(self.clock_ns, until)
        if self.faults is not None:
            self.faults.poll(self, self.clock_ns)

    def drain(self) -> None:
        """Serve every shard until all queues are empty, then gather.

        Fault events and controller ticks due before the work horizon
        still fire in order; events scheduled past the horizon stay
        pending (an empty cluster does not spin its clock forward to
        meet a far-future kill).
        """
        while True:
            busy = any(shard.queue_depth > 0 for shard in self.shards)
            due = self._next_event_ns(include_controller=busy)
            if due is None:
                break
            horizon = max(
                [self.clock_ns] + [shard.completion_ns for shard in self.shards]
            )
            if due > horizon:
                if not busy:
                    break
                # Serve the queued work up to the event instant, then
                # re-evaluate: if the queues empty before ``due`` the
                # event lies beyond this stream and stays pending.
                progressed = False
                for shard in self.shards:
                    before = (shard.clock_ns, shard.queue_depth)
                    shard.advance_to(due)
                    if (shard.clock_ns, shard.queue_depth) != before:
                        progressed = True
                if not progressed:
                    # Batch policies sleeping for arrivals that never
                    # come are forced batch-by-batch, exactly as an
                    # eventless drain would close them (their dispatch
                    # instants precede the event: horizon < due).
                    for shard in self.shards:
                        if shard.queue_depth > 0:
                            shard.serve_batch()
                continue
            fire_at = max(due, self.clock_ns)
            for shard in self.shards:
                shard.advance_to(fire_at)
            self.clock_ns = max(self.clock_ns, fire_at)
            self._fire_events(fire_at)
        for shard in self.shards:
            shard.drain()
        self.clock_ns = max(
            [self.clock_ns] + [s.clock_ns for s in self.shards]
        )
        if self.faults is not None:
            self.faults.poll(self, self.clock_ns)
        self._finalize_records()

    # ------------------------------------------------------------------
    # Faults and failover
    # ------------------------------------------------------------------
    def fail_shard(self, shard_id: int, at_ns: Optional[float] = None) -> bool:
        """Kill one shard at an instant (fail-stop at the dispatch
        boundary): work already dispatched to its lanes completes, work
        still queued on it is cancelled and re-offered to surviving
        replicas.  Returns False when the shard was already down/retired.
        """
        now = self.clock_ns if at_ns is None else float(at_ns)
        if not self.router.mark_down(shard_id):
            return False
        self.shards_failed += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cluster.failover.kills").inc()
        self._migrate_queued(shard_id, now, reason="shard_failed")
        return True

    def revive_shard(self, shard_id: int, at_ns: Optional[float] = None) -> bool:
        """Bring a failed shard back into the routable pool.  Its replicas
        were never unplaced (placement is orthogonal to health), so reads
        route to it again immediately.  False when it was not down."""
        del at_ns  # revival is a pure health flip; nothing to reschedule
        if not self.router.mark_up(shard_id):
            return False
        self.shards_revived += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cluster.failover.revives").inc()
        return True

    def drain_shard(self, shard_id: int, at_ns: Optional[float] = None) -> bool:
        """Stop routing new work to a shard and migrate its queue off
        (the retirement prelude).  In-flight batches complete in place."""
        now = self.clock_ns if at_ns is None else float(at_ns)
        if not self.router.is_routable(shard_id):
            return False
        self.router.mark_draining(shard_id)
        if self.obs.enabled:
            self.obs.metrics.counter("cluster.scale.drains").inc()
        self._migrate_queued(shard_id, now, reason="shard_draining")
        return True

    def retire_shard(self, shard_id: int, at_ns: Optional[float] = None) -> bool:
        """Permanently remove a shard: drain its queue, move the last
        copy of every key it solely holds onto a surviving shard (the
        copy bytes are charged to the destination's lanes), then retire
        it in the router.  Returns False when the pool cannot absorb the
        shard's data (the retire is then abandoned, shard left draining).
        """
        now = self.clock_ns if at_ns is None else float(at_ns)
        if self.router.is_retired(shard_id):
            return False
        if self.router.is_routable(shard_id):
            self.router.mark_draining(shard_id)
            self._migrate_queued(shard_id, now, reason="shard_retired")
        load = lambda shard: self.shard_load(shard, now)  # noqa: E731
        for key in self.router.placed_keys(shard_id):
            survivors = [
                s
                for s in self.router.replicas(key)
                if s != shard_id and not self.router.is_retired(s)
            ]
            if not survivors:
                try:
                    target = self.router.route_any(load)
                except PlacementUnavailable:
                    return False  # nowhere to move the last copy
                self.add_replica(key, target, at_ns=now, force=True)
            self.router.drop_replica(key, shard_id)
        self.router.retire(shard_id)
        self.shards_retired += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cluster.scale.retires").inc()
        return True

    def join_shard(self, at_ns: Optional[float] = None) -> int:
        """Grow the pool by one shard (built from the cluster's own
        construction knobs) starting life at ``at_ns``; returns its id.
        Existing placements are sticky — the new shard takes load via
        affinity-free routing, controller re-replication, and keys first
        seen after the join."""
        now = self.clock_ns if at_ns is None else float(at_ns)
        shard = self._build_shard()
        shard.clock_ns = max(shard.clock_ns, now)
        self.shards.append(shard)
        new_id = self.router.add_shard()
        if new_id != len(self.shards) - 1:
            raise RuntimeError(
                "router and cluster shard counts diverged on join "
                f"(router says {new_id}, cluster has {len(self.shards)} shards)"
            )
        if self.obs.enabled:
            # Re-bind so the joined shard records into the shared plane
            # with its own shard-prefixed lane tracks.
            self.bind_observer(self.obs)
            self.obs.metrics.counter("cluster.scale.joins").inc()
        self.shards_joined += 1
        return new_id

    def _migrate_queued(self, shard_id: int, now: float, reason: str) -> int:
        """Cancel every still-queued part on ``shard_id`` and re-offer it
        to surviving shards; returns how many parts migrated.  Parts
        already dispatched complete in place (fail-stop boundary); a part
        with no surviving placement fails its whole record (typed
        degraded-mode outcome, never a silent drop)."""
        migrated = 0
        for record in self.records:
            if not record.admitted or record.completed:
                continue
            k = 0
            while k < len(record.parts):
                part = record.parts[k]
                if (
                    record.shard_ids[k] == shard_id
                    and part.admitted
                    and not part.completed
                    and self.shards[shard_id].cancel(part, reason=reason)
                ):
                    replaced = self._reoffer_part(record, k, shard_id, part, now)
                    if replaced is None:
                        break  # record failed; siblings already withdrawn
                    migrated += 1
                    k += replaced
                else:
                    k += 1
        return migrated

    def _reoffer_part(
        self,
        record: ClusterRecord,
        k: int,
        old_shard: int,
        part: QueuedRequest,
        now: float,
    ) -> Optional[int]:
        """Re-offer one cancelled part of ``record`` onto surviving
        shards at ``now``; returns how many replacement parts took its
        place in :attr:`ClusterRecord.parts`, or None when no surviving
        placement exists (the record is failed, siblings withdrawn)."""
        load = lambda shard: self.shard_load(shard, now)  # noqa: E731
        request = part.request
        plan: List[Tuple[int, FrontendRequest]]
        try:
            if isinstance(request, BitmapConjunctionRequest) and isinstance(
                request.index, BitmapIndexShardView
            ):
                # Re-scatter the sub-conjunction's predicates over the
                # surviving replicas of the parent index.
                parent = request.index.index
                views = self._views_for(parent)
                assignment = self.router.assign_scatter(
                    [column for column, _ in request.predicates], load
                )
                by_shard: Dict[int, List[Tuple[str, Tuple[int, ...]]]] = {}
                for (column, values), (_, shard) in zip(request.predicates, assignment):
                    by_shard.setdefault(shard, []).append((column, values))
                plan = [
                    (
                        shard,
                        BitmapConjunctionRequest(
                            index=views[shard], predicates=tuple(predicates)
                        ),
                    )
                    for shard, predicates in sorted(by_shard.items())
                ]
            elif isinstance(request, ScanRequest):
                plan = [(self.router.route(request.column, load), request)]
            elif is_write_request(request):
                # Charge-only maintenance part: prefer a surviving replica
                # of one of its columns, else charge the least-loaded shard.
                target: Optional[int] = None
                for column in request.columns or ():
                    try:
                        target = self.router.route(column, load)
                        break
                    except PlacementUnavailable:
                        continue
                if target is None:
                    target = self.router.route_any(load)
                plan = [(target, request)]
            else:
                plan = [(self.router.route_any(load), request)]
        except PlacementUnavailable:
            self._fail_record(record, "shard_unavailable", now)
            return None
        if self.sanitize:
            from repro.verify.plan_lint import check_failover_reoffer  # local: avoid cycle

            check_failover_reoffer(self.router, old_shard, [s for s, _ in plan])
        new_ids: List[int] = []
        new_parts: List[QueuedRequest] = []
        for shard_id, sub_request in plan:
            new_part = self.shards[shard_id].offer(
                sub_request,
                priority=record.priority,
                deadline_ns=record.deadline_ns,
                arrival_ns=now,
            )
            new_ids.append(shard_id)
            new_parts.append(new_part)
            if record.trace is not None and new_part.trace is not None:
                new_part.trace.set(shard=shard_id, failover=True)
                self.obs.tracer.adopt(new_part.trace, record.trace)
        record.shard_ids[k : k + 1] = new_ids
        record.parts[k : k + 1] = new_parts
        record.migrated_parts.append(part)
        record.failovers += 1
        self.failover_parts += 1
        if self.obs.enabled:
            self.obs.metrics.counter("cluster.failover.migrated_parts").inc()
            self.obs.metrics.counter("cluster.failover.reoffers").inc(float(len(plan)))
        # A replacement refused by target admission flows through the
        # existing all-or-nothing rejection in _finalize_records.
        return len(new_parts)

    def _fail_record(self, record: ClusterRecord, reason: str, now: float) -> None:
        """Terminal degraded-mode failure: mark the record rejected with a
        failure-typed reason and withdraw its still-queued siblings."""
        record.admitted = False
        record.rejected_reason = reason
        for shard, sibling in zip(record.shard_ids, record.parts):
            if sibling.admitted and not sibling.completed:
                self.shards[shard].cancel(sibling, reason=reason)
        self.failover_records_failed += 1
        if self.obs.enabled:
            registry = self.obs.metrics
            registry.counter("cluster.failover.records_failed").inc()
            registry.counter("cluster.rejected").inc()
            if record.trace is not None:
                record.trace.end(now).set(status="failed", reason=reason)

    # ------------------------------------------------------------------
    # Elasticity (controller surface)
    # ------------------------------------------------------------------
    def add_replica(
        self,
        key,
        shard_id: int,
        at_ns: Optional[float] = None,
        priority: int = 0,
        force: bool = False,
    ) -> bool:
        """Replicate ``key`` onto ``shard_id``, charging the copy bytes
        to the destination shard's lanes as a
        :class:`~repro.service.requests.CopyRequest` through its own
        admission path.  Returns False when the shard already holds the
        key, is unroutable, or refuses the copy (``force=True`` places
        anyway — the retire path must not strand data)."""
        now = self.clock_ns if at_ns is None else float(at_ns)
        if shard_id in self.router.replicas(key):
            return False
        if not force and not self.router.is_routable(shard_id):
            return False
        num_bytes = self._replica_bytes(key)
        copy = self.shards[shard_id].offer(
            CopyRequest(num_bytes=num_bytes), priority=priority, arrival_ns=now
        )
        if not copy.admitted and not force:
            return False
        self.router.add_replica(key, shard_id)
        self.replications += 1
        self.copied_bytes += num_bytes
        copy_ns = copy.modeled_ns if copy.admitted else 0.0
        self.copy_ns_total += copy_ns
        if self.obs.enabled:
            registry = self.obs.metrics
            registry.counter("cluster.scale.replications").inc()
            registry.counter("cluster.scale.copied_bytes").inc(float(num_bytes))
            registry.counter("cluster.scale.copy_ns").inc(copy_ns)
        return True

    def _replica_bytes(self, key) -> int:
        """Bytes a new replica of ``key`` must copy onto its shard."""
        if isinstance(key, str):
            total = 0
            for index, _, _ in self._index_views.values():
                planes = index.bitmaps.get(key)
                if planes:
                    total += sum(int(plane.size) for plane in planes.values())
            if total:
                return total
        else:
            size = getattr(key, "storage_bytes", None)
            if callable(size):
                return int(size())
        return 8192  # one DRAM row: conservative floor for unknown keys

    def publish_gauges(self, at_ns: Optional[float] = None) -> None:
        """Publish the cluster health gauges the controller reads:
        per-shard backlog, imbalance factor, pool size, rejection rate."""
        if not self.obs.enabled:
            return
        now = self.clock_ns if at_ns is None else float(at_ns)
        registry = self.obs.metrics
        routable = self.router.routable_shards()
        backlogs = []
        for shard_id in range(self.num_shards):
            backlog = self.shard_load(shard_id, now)
            registry.gauge(f"cluster.backlog_ns.shard{shard_id}").set(backlog)
            registry.gauge(f"cluster.queue_depth.shard{shard_id}").set(
                float(self.shards[shard_id].queue_depth)
            )
            if shard_id in routable:
                backlogs.append(backlog)
        registry.gauge("cluster.shards_alive").set(float(len(self.router.alive_shards())))
        registry.gauge("cluster.shards_routable").set(float(len(routable)))
        mean = sum(backlogs) / len(backlogs) if backlogs else 0.0
        imbalance = (max(backlogs) / mean) if mean > 0.0 else 1.0
        registry.gauge("cluster.imbalance").set(imbalance)
        offered = registry.counter("cluster.offered").value
        rejected = registry.counter("cluster.rejected").value
        registry.gauge("cluster.rejection_rate").set(
            rejected / offered if offered > 0.0 else 0.0
        )

    def elastic_summary(self) -> Dict[str, Any]:
        """Failover/scale accounting for :class:`ClusterMetrics` (kept as
        plain attributes so obs-off runs report identically)."""
        return {
            "shard_failures": self.shards_failed,
            "shard_revivals": self.shards_revived,
            "shards_joined": self.shards_joined,
            "shards_retired": self.shards_retired,
            "failovers": self.failover_parts,
            "failover_failures": self.failover_records_failed,
            "replications": self.replications,
            "copied_bytes": self.copied_bytes,
            "copy_ns": self.copy_ns_total,
        }

    def run(self, events: Iterable[ArrivalEvent], name: str = "cluster") -> ClusterResult:
        """Serve a whole arrival stream across the cluster.

        Arrivals are processed in global order; every shard serves the
        batches its own policy closes before each arrival, so routing
        reads shard loads as they stand at the arrival instant.
        """
        for event in sorted(events, key=lambda e: e.arrival_ns):
            self.advance_to(event.arrival_ns)
            self.offer(
                event.request,
                priority=event.priority,
                deadline_ns=event.deadline_ns,
                arrival_ns=event.arrival_ns,
            )
        self.drain()
        return self.result(name)

    # ------------------------------------------------------------------
    # Gather and reporting
    # ------------------------------------------------------------------
    def _gather(self, record: ClusterRecord) -> None:
        """Merge a completed record's shard parts into its final value."""
        parts = record.parts
        record.start_ns = min(p.start_ns for p in parts)
        record.finish_ns = max(p.finish_ns for p in parts)
        if is_write_request(record.request):
            # A write's parts carry charge-only estimates; the gather
            # value is the coordinator's authoritative rows-affected
            # count, and there is no bitmap merge to price.
            record.value = (
                record.rows_affected
                if record.rows_affected is not None
                else parts[0].value
            )
            record.metrics = (
                parts[0].metrics
                if len(parts) == 1
                else combine_serial("cluster_write", (p.metrics for p in parts))
            )
            self._obs_gathered(record, tree_depth=0)
            return
        if len(parts) == 1:
            record.value = parts[0].value
            record.metrics = parts[0].metrics
            self._obs_gathered(record, tree_depth=0)
            return
        # Scattered conjunction: AND the per-shard partial bitmaps.  The
        # merge runs host-side (it is NOT charged as device work); device
        # cost is the serial combination of the shard chains.  The host
        # cost model charges the *merge tree*: partials merge pairwise in
        # parallel, so a G-way gather costs ceil(log2(G)) levels of
        # `merge_ns_per_op` on the record's completion time — a gathered
        # result is not ready until the host has actually merged it, but
        # independent pairs never serialize behind each other.
        record.value = np.bitwise_and.reduce([p.value for p in parts])
        tree_depth = (len(parts) - 1).bit_length()
        record.host_merge_ns = tree_depth * self.merge_ns_per_op
        record.finish_ns += record.host_merge_ns
        merged = combine_serial("cluster_gather", (p.metrics for p in parts))
        merged.notes = (
            f"{len(parts)} shard partials, host-side AND merge tree "
            f"({tree_depth} levels)"
        )
        record.metrics = merged
        self._obs_gathered(record, tree_depth=tree_depth)

    def gather(self) -> int:
        """Gather every finished record (public hook for sessions/futures);
        returns the total host merge count so far."""
        return self._finalize_records()

    def _finalize_records(self) -> int:
        """Sync scatter failures and gather finished records; host merges."""
        merge_ops = 0
        for record in self.records:
            # A part shed after admission sinks the whole scatter: mark the
            # record rejected and withdraw siblings still queued (siblings
            # already served are wasted work, as in a real scatter).
            if record.admitted and any(not p.admitted for p in record.parts):
                failed = next(p for p in record.parts if not p.admitted)
                record.admitted = False
                record.rejected_reason = failed.rejected_reason
                for shard, sibling in zip(record.shard_ids, record.parts):
                    if sibling.admitted and not sibling.completed:
                        self.shards[shard].cancel(sibling)
                if record.trace is not None:
                    record.trace.end(self.clock_ns).set(
                        status="rejected", reason=record.rejected_reason
                    )
                    self.obs.metrics.counter("cluster.rejected").inc()
            if record.completed:
                if math.isnan(record.finish_ns):
                    self._gather(record)
                merge_ops += max(0, len(record.parts) - 1)
        return merge_ops

    def result(self, name: str = "cluster") -> ClusterResult:
        """Gather all finished records and roll up cluster metrics."""
        merge_ops = self._finalize_records()
        per_shard = [
            shard.result(f"{name}/shard{i}") for i, shard in enumerate(self.shards)
        ]
        metrics = ClusterMetrics.from_records(
            name,
            self.records,
            [r.metrics for r in per_shard],
            merge_ops=merge_ops,
            elastic=self.elastic_summary(),
        )
        return ClusterResult(
            records=list(self.records), per_shard=per_shard, metrics=metrics
        )
