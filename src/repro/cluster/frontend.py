"""The scatter-gather cluster frontend over N shard executors.

:class:`ClusterFrontend` turns the single-device service pipeline
(frontend → planner → executor) into a multi-shard cluster: one
:class:`~repro.service.frontend.ServiceFrontend` — with its own
:class:`~repro.service.executor.BatchExecutor` over its own
:class:`~repro.ambit.engine.AmbitEngine`-backed device — per shard, an
admission story inherited wholesale from the per-shard frontends, and a
router (:class:`~repro.cluster.router.ShardRouter`) deciding where data
lives.

**Routing.**  A predicate scan has column affinity: it goes to the shard
holding its column's planes — or, for a replicated hot column, to the
*least-loaded* replica, measured by the per-shard backlog vector
(:meth:`shard_load`: remaining in-service time plus the shard's queued
hottest-bank backlog).  Work with no affinity (bulk ops over host
vectors, copies) goes wherever the backlog is smallest, which is what
rebalances the cluster under skew.

**Scatter-gather.**  A :class:`~repro.service.requests
.BitmapConjunctionRequest` whose predicate columns live on different
shards is *scattered*: each shard gets a sub-conjunction over its own
:class:`~repro.database.sharding.BitmapIndexShardView` (lowered and
executed entirely shard-locally), and the gather path merges the partial
bitmaps host-side with bitwise ANDs — bit-exact with single-device
evaluation, because every predicate is applied exactly once.  Scatter
admission is all-or-nothing: if any shard refuses its part, the siblings
are withdrawn (:meth:`ServiceFrontend.cancel`) and the cluster record is
rejected.

**Virtual time.**  Every shard runs its own virtual clock; the cluster
drives them together: arrivals are processed in global order, each shard
serves whatever batches its policy closes before the next arrival, and
routing decisions read the shard loads *at the arrival instant*.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import ClusterMetrics, OperationMetrics, combine_serial
from repro.cache.result_cache import ResultCache
from repro.cluster.router import ShardRouter
from repro.database.bitmap_index import BitmapIndex
from repro.database.sharding import BitmapIndexShardView
from repro.obs import Observer, resolve_observe
from repro.service.executor import BatchExecutor
from repro.service.frontend import ArrivalEvent, PipelineResult, ServiceFrontend
from repro.service.planner import BatchPolicy
from repro.service.requests import (
    BitmapConjunctionRequest,
    FrontendRequest,
    QueuedRequest,
    ScanRequest,
)
from repro.storage.maintenance import MaintenancePolicy, resolve_maintenance
from repro.storage.requests import WriteRequest, charged_columns, is_write_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.passes import OptimizerConfig


@dataclass
class ClusterRecord:
    """Envelope of one cluster-level request across its shard parts.

    A request that scatters over G shards has G ``parts`` (one per-shard
    :class:`~repro.service.requests.QueuedRequest`); a routed scan has
    one.  Times are absolute nanoseconds on the cluster's virtual clock.

    Attributes:
        request: The cluster-level request as the client offered it.
        arrival_ns: When the request reached the cluster frontend.
        priority: Larger values are served first (propagated to parts).
        deadline_ns: Absolute completion deadline, or None.
        seq: Cluster admission sequence number.
        shard_ids: Shards the request was routed/scattered to.
        parts: Per-shard sub-request envelopes, aligned with shard_ids.
        admitted: False when any shard refused its part.
        rejected_reason: Why admission refused it ("" if admitted).
        value: Gathered result (merged partial bitmaps for a scattered
            conjunction; the part's own value otherwise).
        metrics: Serial device cost across the parts (host-side merge ANDs
            are *not* device work and are tallied in
            :attr:`ClusterMetrics.merge_ops` /
            :attr:`ClusterMetrics.host_merge_ns` instead).
        host_merge_ns: Host time charged for this record's gather-side
            AND-merges (``merge_ns_per_op`` per merge; 0 for a single
            part).  Included in ``finish_ns`` and therefore the sojourn.
            Shard-local host merges (the plan optimizer's split-mode
            joins) are already inside each part's finish and roll up in
            the per-shard :class:`~repro.analysis.metrics.QueueMetrics`.
        start_ns / finish_ns: First part's service start / last part's
            finish plus the host merge time (NaN before service).
    """

    request: FrontendRequest
    arrival_ns: float = 0.0
    priority: int = 0
    deadline_ns: Optional[float] = None
    seq: int = 0
    shard_ids: List[int] = field(default_factory=list)
    parts: List[QueuedRequest] = field(default_factory=list)
    admitted: bool = True
    rejected_reason: str = ""
    value: Any = None
    metrics: Optional[OperationMetrics] = None
    host_merge_ns: float = 0.0
    start_ns: float = math.nan
    finish_ns: float = math.nan
    #: Cached bitmaps this write dropped across the shard-local caches
    #: (set by the coordinator's invalidation step; 0 for reads).
    cache_invalidations: int = 0
    #: Rows the coordinator's functional mutation touched (write requests
    #: only; the authoritative gather value — charge-only scatter parts
    #: report pre-deduplication estimates).
    rows_affected: Optional[int] = None
    #: Root :class:`repro.obs.Span` of the record's lifecycle (set only
    #: when the cluster's observability plane is recording); the shard
    #: parts' spans are adopted as its children at scatter time.
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        """True once every part has been served (and none was shed)."""
        return self.admitted and bool(self.parts) and all(p.completed for p in self.parts)

    @property
    def fanout(self) -> int:
        """Shards this request touched."""
        return len(self.shard_ids)

    @property
    def ops_eliminated(self) -> int:
        """Device ops shard-local plan optimizers removed across the parts."""
        return sum(p.ops_eliminated for p in self.parts)

    @property
    def shared_subchains(self) -> int:
        """Sub-chains the parts served from another request's lowering."""
        return sum(p.shared_subchains for p in self.parts)

    @property
    def cache_hits(self) -> int:
        """Sub-chains served from the shard-local result caches."""
        return sum(p.cache_hits for p in self.parts)

    @property
    def cache_misses(self) -> int:
        """Shard-local result-cache lookups that missed."""
        return sum(p.cache_misses for p in self.parts)

    @property
    def wait_ns(self) -> float:
        """Arrival to first part's service start (NaN before service)."""
        return self.start_ns - self.arrival_ns

    @property
    def sojourn_ns(self) -> float:
        """Arrival to last part's finish (NaN before service)."""
        return self.finish_ns - self.arrival_ns

    @property
    def deadline_missed(self) -> bool:
        """True when the gathered result completed after the deadline."""
        return (
            self.deadline_ns is not None
            and self.completed
            and self.finish_ns > self.deadline_ns + 1e-9
        )


@dataclass
class ClusterResult:
    """Outcome of serving a request stream through the cluster.

    Attributes:
        records: Every offered cluster request's envelope, in offer order.
        per_shard: Each shard frontend's own pipeline result.
        metrics: The cluster roll-up (utilization, imbalance, fan-out,
            aggregate percentiles).
    """

    records: List[ClusterRecord] = field(default_factory=list)
    per_shard: List[PipelineResult] = field(default_factory=list)
    metrics: Optional[ClusterMetrics] = None

    def completed(self) -> List[ClusterRecord]:
        """Envelopes that finished service, in offer order."""
        return [r for r in self.records if r.completed]

    def rejected(self) -> List[ClusterRecord]:
        """Envelopes refused by admission control, in offer order."""
        return [r for r in self.records if not r.admitted]


def _default_engine_factory() -> AmbitEngine:
    return AmbitEngine(config=AmbitConfig(vectorized_functional=True))


class ClusterFrontend:
    """Routes, scatters, and gathers requests over N shard executors.

    Args:
        num_shards: Shard executors to build (ignored when ``shards`` is
            given).
        router: Placement/routing policy (defaults to a hash router with
            no replication over ``num_shards`` shards).
        engine_factory: Builds one engine **per shard** — each shard is
            its own device; sharing an engine would share banks and void
            the scaling story.
        policy: Batch-closing policy applied to every shard's planner.
        max_queue_depth / max_backlog_ns / shed_low_priority: Per-shard
            admission knobs (see :class:`ServiceFrontend`).
        functional: Execute shard batches on the simulated banks.
        pipeline: Per-shard lane pipelining (the default; see
            :class:`~repro.service.executor.BatchExecutor`).  Each shard
            advances its own bank lanes independently, so a hot shard
            dispatches its next batch the moment one of its banks drains
            instead of stalling behind its own prior batch's makespan.
            ``False`` restores batch-synchronous shards for A/B runs.
        sanitize: Run the static verification layer cluster-wide: every
            shard executor is built with ``sanitize=True`` (schedule race
            detector on each dispatch, plan lint on each lowered chain)
            and every scattered conjunction's shard parts are certified
            to cover the full predicate set exactly once before being
            offered.  Ignored for pre-built ``shards``, which keep their
            own executors' setting.
        shards: Pre-built shard frontends (overrides the factory path).
        merge_ns_per_op: Host time charged per *level* of the gather-side
            AND-merge tree of shard partials.  The merge runs on the
            host, not on a device: partials are merged pairwise in
            parallel — ``ceil(log2(fanout))`` tree levels, not a serial
            per-op chain — and the total is charged to the record's
            completion time (and rolled up in
            :attr:`ClusterMetrics.host_merge_ns`) rather than to device
            metrics.  The default prices one AND over an 8 KiB row-sized
            bitmap through host memory (read two operands, write one
            result at tens of GB/s); 0 restores the pre-costing
            behaviour.
        optimize: Enable the batch plan optimizer on every shard's
            planner: ``True`` for the default
            :class:`~repro.optimizer.OptimizerConfig`, or an explicit
            config.  Each shard's batches CSE and split shard-locally
            (over its own shard views and bank lanes); the gather path is
            untouched.  Ignored for pre-built ``shards``.
        cache: Shard-local result caching: ``True`` gives every shard
            frontend its *own* :class:`~repro.cache.ResultCache` (entries
            are keyed by the shard's index views, so caches never share
            bitmaps across shards); an instance is shared verbatim (the
            view-scoped keys keep shard entries disjoint even then).
            Writes invalidate the affected entries on every shard at the
            coordinator (see :meth:`offer`).  Ignored for pre-built
            ``shards`` — their planners' caches win.
        maintenance: Index-maintenance policy for cluster writes: a
            strategy name or one :class:`~repro.storage
            .MaintenancePolicy` shared by the coordinator and every shard
            planner (so hybrid hotness aggregates reads cluster-wide).
            For pre-built ``shards`` the policy still drives the
            coordinator's functional write step, but each shard keeps
            its planner's own policy for charging.
        observe: Observability plane (``repro.obs``): ``True`` records
            one span tree per cluster request (scatter → per-shard parts
            → gather-merge) with every shard's frontend and executor
            sharing the plane (shard-prefixed lane tracks), plus
            cluster-level counters/histograms.  Applies to pre-built
            ``shards`` too (they are re-bound).  Recording never changes
            routing, admission, schedules, or results.
    """

    #: Default host cost of AND-merging two 8 KiB partial bitmaps.
    DEFAULT_MERGE_NS_PER_OP = 250.0

    def __init__(
        self,
        num_shards: int = 2,
        router: Optional[ShardRouter] = None,
        engine_factory: Optional[Callable[[], AmbitEngine]] = None,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: int = 64,
        max_backlog_ns: Optional[float] = None,
        functional: bool = False,
        pipeline: bool = True,
        shed_low_priority: bool = False,
        sanitize: bool = False,
        shards: Optional[List[ServiceFrontend]] = None,
        merge_ns_per_op: float = DEFAULT_MERGE_NS_PER_OP,
        optimize: Union[bool, "OptimizerConfig"] = False,
        cache: Union[None, bool, ResultCache] = None,
        maintenance: Union[None, str, MaintenancePolicy] = None,
        observe: Union[bool, Observer] = False,
    ) -> None:
        if merge_ns_per_op < 0.0:
            raise ValueError("merge_ns_per_op must be non-negative")
        self.merge_ns_per_op = float(merge_ns_per_op)
        self.sanitize = sanitize
        self.maintenance = resolve_maintenance(maintenance)
        if shards is not None:
            if not shards:
                raise ValueError("shards must not be empty")
            self.shards = list(shards)
        else:
            if num_shards < 1:
                raise ValueError("num_shards must be at least 1")
            factory = engine_factory or _default_engine_factory
            self.shards = [
                ServiceFrontend(
                    executor=BatchExecutor(
                        engine=factory(), pipeline=pipeline, sanitize=sanitize
                    ),
                    policy=policy,
                    max_queue_depth=max_queue_depth,
                    max_backlog_ns=max_backlog_ns,
                    functional=functional,
                    shed_low_priority=shed_low_priority,
                    optimize=optimize,
                    cache=cache,
                    maintenance=self.maintenance,
                )
                for _ in range(num_shards)
            ]
        self.router = router or ShardRouter(len(self.shards))
        if self.router.num_shards != len(self.shards):
            raise ValueError("router shard count must match the cluster's")
        self.records: List[ClusterRecord] = []
        self.clock_ns = 0.0
        self._seq = 0
        self.obs = resolve_observe(False)
        resolved = resolve_observe(observe)
        if resolved.enabled:
            self.bind_observer(resolved)
        # Shard views per index, pinned by the index object itself (id()
        # reuse must not hand one index's placement to another).
        self._index_views: Dict[int, Tuple[BitmapIndex, Dict[int, BitmapIndexShardView]]] = {}

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, obs: Observer) -> None:
        """Share one observability plane across the whole cluster.

        Every shard frontend and executor records into the same tracer
        and metrics registry; each shard's executor gets a ``shard<i>/``
        track prefix so identical bank keys on different shard devices
        stay distinct Perfetto tracks.
        """
        self.obs = obs
        for shard_id, shard in enumerate(self.shards):
            shard.executor.obs_prefix = f"shard{shard_id}/"
            shard.bind_observer(obs)

    def _obs_offered(self, record: ClusterRecord) -> None:
        """Open the cluster record's root span at arrival."""
        record.trace = self.obs.tracer.span(
            "cluster_request", category="cluster", start_ns=record.arrival_ns
        ).set(
            kind=type(record.request).__name__,
            seq=record.seq,
            priority=record.priority,
        )
        self.obs.metrics.counter("cluster.offered").inc()

    def _obs_scattered(self, record: ClusterRecord) -> None:
        """Record the scatter outcome and adopt the part spans."""
        span = record.trace
        span.child(
            "scatter",
            category="cluster",
            start_ns=record.arrival_ns,
            end_ns=record.arrival_ns,
        ).set(
            fanout=record.fanout,
            shard_ids=",".join(str(s) for s in record.shard_ids),
            admitted=record.admitted,
        )
        for shard_id, part in zip(record.shard_ids, record.parts):
            if part.trace is not None:
                part.trace.set(shard=shard_id)
                self.obs.tracer.adopt(part.trace, span)
        registry = self.obs.metrics
        registry.counter("cluster.fanout").inc(float(record.fanout))
        if record.admitted:
            registry.counter("cluster.admitted").inc()
        else:
            span.end(record.arrival_ns).set(
                status="rejected", reason=record.rejected_reason
            )
            registry.counter("cluster.rejected").inc()

    def _obs_gathered(self, record: ClusterRecord, tree_depth: int) -> None:
        """Attach the gather-merge child and close the record's root."""
        span = record.trace
        if span is None:
            return
        if record.host_merge_ns > 0.0:
            span.child(
                "gather_merge",
                category="cluster",
                start_ns=record.finish_ns - record.host_merge_ns,
                end_ns=record.finish_ns,
            ).set(parts=len(record.parts), tree_levels=tree_depth)
        span.end(record.finish_ns).set(
            status="completed", deadline_missed=record.deadline_missed
        )
        registry = self.obs.metrics
        registry.counter("cluster.completed").inc()
        registry.counter("cluster.merge_ops").inc(float(max(0, len(record.parts) - 1)))
        registry.histogram("cluster.sojourn_ns").observe(record.sojourn_ns)
        if record.host_merge_ns > 0.0:
            registry.histogram("cluster.host_merge_ns").observe(record.host_merge_ns)

    # ------------------------------------------------------------------
    # Load and placement
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_load(self, shard_id: int, at_ns: Optional[float] = None) -> float:
        """Backlog of one shard at an instant: remaining in-service time
        (how far the shard's completion horizon — its clock, or with
        pipelining the busiest lane's in-flight horizon — sits past
        ``at_ns``) plus its queued hottest-bank backlog."""
        at = self.clock_ns if at_ns is None else at_ns
        shard = self.shards[shard_id]
        return max(0.0, shard.completion_ns - at) + shard.backlog_ns

    def backlog_vector(self, at_ns: Optional[float] = None) -> List[float]:
        """Per-shard backlog (the routing signal), shard order."""
        return [self.shard_load(i, at_ns) for i in range(self.num_shards)]

    def _views_for(self, index: BitmapIndex) -> Dict[int, BitmapIndexShardView]:
        entry = self._index_views.get(id(index))
        if entry is not None and entry[0] is index:
            return entry[1]
        placed = self.router.partition(index.indexed_columns())
        views = {
            shard: index.shard_view(columns)
            for shard, columns in enumerate(placed)
            if columns
        }
        self._index_views[id(index)] = (index, views)
        return views

    # ------------------------------------------------------------------
    # Admission (routing + scatter)
    # ------------------------------------------------------------------
    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ) -> ClusterRecord:
        """Route one request to its shard(s); returns the cluster envelope.

        Scans go to the least-loaded replica of their column's shard set;
        conjunctions scatter into shard-local sub-conjunctions; everything
        else goes to the least-loaded shard.  Scatter admission is
        all-or-nothing: one refused part withdraws the rest.
        """
        arrival = self.clock_ns if arrival_ns is None else float(arrival_ns)
        self.clock_ns = max(self.clock_ns, arrival)
        record = ClusterRecord(
            request=request,
            arrival_ns=arrival,
            priority=priority,
            deadline_ns=deadline_ns,
            seq=self._seq,
        )
        self._seq += 1
        self.records.append(record)
        if self.obs.enabled:
            self._obs_offered(record)

        load = lambda shard: self.shard_load(shard, arrival)  # noqa: E731
        if isinstance(request, BitmapConjunctionRequest):
            plan = self._scatter_conjunction(request, load)
        elif is_write_request(request):
            plan = self._scatter_write(request, load)
        elif isinstance(request, ScanRequest):
            plan = [(self.router.route(request.column, load), request)]
        else:
            plan = [(self.router.route_any(load), request)]

        for shard_id, sub_request in plan:
            part = self.shards[shard_id].offer(
                sub_request,
                priority=priority,
                deadline_ns=deadline_ns,
                arrival_ns=arrival,
            )
            record.shard_ids.append(shard_id)
            record.parts.append(part)
            if not part.admitted:
                record.admitted = False
                record.rejected_reason = part.rejected_reason
                for shard, sibling in zip(record.shard_ids[:-1], record.parts[:-1]):
                    self.shards[shard].cancel(sibling)
                break
        if record.admitted and is_write_request(request):
            # The scatter parts are charge-only; the functional mutation
            # and the shard-cache invalidations commit exactly once, at
            # the coordinator, only after the all-or-nothing admission
            # held (a rejected write must not mutate the table).
            self._commit_write(request, record)
        if self.obs.enabled:
            self._obs_scattered(record)
        return record

    def _scatter_write(
        self, request: WriteRequest, load
    ) -> List[Tuple[int, WriteRequest]]:
        """Split a write into charge-only shard parts by column placement.

        Every shard holding an affected column gets a part restricted to
        its locally-placed columns (``apply=False`` — the coordinator's
        :meth:`_commit_write` performs the mutation and the parent-index
        maintenance once).  A replicated column appears in every
        replica's part: each replica's device pays to maintain its copy.
        A write touching no placed column (e.g. an update of an
        unindexed column) still charges its row traffic on the
        least-loaded shard.
        """
        views = self._views_for(request.index)
        charged = charged_columns(request)
        parts: List[Tuple[int, WriteRequest]] = []
        for shard_id, view in sorted(views.items()):
            local = tuple(c for c in charged if c in view.columns)
            if local:
                parts.append(
                    (shard_id, dataclasses.replace(request, columns=local, apply=False))
                )
        if not parts:
            parts = [
                (
                    self.router.route_any(load),
                    dataclasses.replace(request, columns=(), apply=False),
                )
            ]
        if self.sanitize:
            from repro.verify.plan_lint import check_write_scatter  # local: avoid cycle

            # Certify the scatter before any shard sees its part: the
            # charged columns must all land on some replica, and no part
            # may charge a column the write does not affect.
            check_write_scatter(charged, [(s, p.columns or ()) for s, p in parts])
        return parts

    def _commit_write(self, request: WriteRequest, record: ClusterRecord) -> None:
        """Apply the mutation + parent maintenance; invalidate shard caches.

        Runs at the write's arrival instant, so every read lowered after
        it computes from (and caches) post-write planes, while fills
        planned from pre-write planes are killed by the caches' epoch
        guards — the coordinator bumps the epochs here.  The returned
        primitives are discarded: maintenance *cost* is charged by the
        shard parts, on the devices that hold the columns.
        """
        coordinator = dataclasses.replace(request, columns=None, apply=True)
        outcome = self.maintenance.lower_write(
            coordinator, self.shards[record.shard_ids[0]].executor
        )
        record.rows_affected = outcome.rows_affected
        views = self._views_for(request.index)
        dropped = 0
        for shard_id, shard in enumerate(self.shards):
            cache = shard.cache
            view = views.get(shard_id)
            if cache is None or view is None:
                continue
            if outcome.invalidate_all:
                dropped += cache.invalidate_index(view)
            else:
                local = [c for c in outcome.invalidate_columns if c in view.columns]
                if local:
                    dropped += cache.invalidate_columns(view, local)
        record.cache_invalidations = dropped

    def _scatter_conjunction(
        self, request: BitmapConjunctionRequest, load
    ) -> List[Tuple[int, BitmapConjunctionRequest]]:
        """Split a conjunction into shard-local sub-conjunctions."""
        index = request.index
        views = self._views_for(index)
        assignment = self.router.assign_scatter(
            [column for column, _ in request.predicates], load
        )
        by_shard: Dict[int, List[Tuple[str, Tuple[int, ...]]]] = {}
        for (column, values), (_, shard) in zip(request.predicates, assignment):
            by_shard.setdefault(shard, []).append((column, values))
        parts = [
            (
                shard,
                BitmapConjunctionRequest(
                    index=views[shard], predicates=tuple(predicates)
                ),
            )
            for shard, predicates in sorted(by_shard.items())
        ]
        if self.sanitize:
            from repro.verify.plan_lint import check_scatter_coverage  # local: avoid cycle

            # Certify the scatter before any shard sees its part: the
            # shard-local sub-conjunctions must cover the predicate set
            # exactly once, else the gather AND silently corrupts.
            check_scatter_coverage(
                request.predicates,
                [(shard, sub.predicates) for shard, sub in parts],
            )
        return parts

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def advance_to(self, until_ns: float) -> None:
        """Advance every shard's virtual clock towards ``until_ns``."""
        for shard in self.shards:
            shard.advance_to(until_ns)
        self.clock_ns = max(self.clock_ns, until_ns)

    def drain(self) -> None:
        """Serve every shard until all queues are empty, then gather."""
        for shard in self.shards:
            shard.drain()
        self.clock_ns = max(
            [self.clock_ns] + [s.clock_ns for s in self.shards]
        )
        self._finalize_records()

    def run(self, events: Iterable[ArrivalEvent], name: str = "cluster") -> ClusterResult:
        """Serve a whole arrival stream across the cluster.

        Arrivals are processed in global order; every shard serves the
        batches its own policy closes before each arrival, so routing
        reads shard loads as they stand at the arrival instant.
        """
        for event in sorted(events, key=lambda e: e.arrival_ns):
            self.advance_to(event.arrival_ns)
            self.offer(
                event.request,
                priority=event.priority,
                deadline_ns=event.deadline_ns,
                arrival_ns=event.arrival_ns,
            )
        self.drain()
        return self.result(name)

    # ------------------------------------------------------------------
    # Gather and reporting
    # ------------------------------------------------------------------
    def _gather(self, record: ClusterRecord) -> None:
        """Merge a completed record's shard parts into its final value."""
        parts = record.parts
        record.start_ns = min(p.start_ns for p in parts)
        record.finish_ns = max(p.finish_ns for p in parts)
        if is_write_request(record.request):
            # A write's parts carry charge-only estimates; the gather
            # value is the coordinator's authoritative rows-affected
            # count, and there is no bitmap merge to price.
            record.value = (
                record.rows_affected
                if record.rows_affected is not None
                else parts[0].value
            )
            record.metrics = (
                parts[0].metrics
                if len(parts) == 1
                else combine_serial("cluster_write", (p.metrics for p in parts))
            )
            self._obs_gathered(record, tree_depth=0)
            return
        if len(parts) == 1:
            record.value = parts[0].value
            record.metrics = parts[0].metrics
            self._obs_gathered(record, tree_depth=0)
            return
        # Scattered conjunction: AND the per-shard partial bitmaps.  The
        # merge runs host-side (it is NOT charged as device work); device
        # cost is the serial combination of the shard chains.  The host
        # cost model charges the *merge tree*: partials merge pairwise in
        # parallel, so a G-way gather costs ceil(log2(G)) levels of
        # `merge_ns_per_op` on the record's completion time — a gathered
        # result is not ready until the host has actually merged it, but
        # independent pairs never serialize behind each other.
        record.value = np.bitwise_and.reduce([p.value for p in parts])
        tree_depth = (len(parts) - 1).bit_length()
        record.host_merge_ns = tree_depth * self.merge_ns_per_op
        record.finish_ns += record.host_merge_ns
        merged = combine_serial("cluster_gather", (p.metrics for p in parts))
        merged.notes = (
            f"{len(parts)} shard partials, host-side AND merge tree "
            f"({tree_depth} levels)"
        )
        record.metrics = merged
        self._obs_gathered(record, tree_depth=tree_depth)

    def gather(self) -> int:
        """Gather every finished record (public hook for sessions/futures);
        returns the total host merge count so far."""
        return self._finalize_records()

    def _finalize_records(self) -> int:
        """Sync scatter failures and gather finished records; host merges."""
        merge_ops = 0
        for record in self.records:
            # A part shed after admission sinks the whole scatter: mark the
            # record rejected and withdraw siblings still queued (siblings
            # already served are wasted work, as in a real scatter).
            if record.admitted and any(not p.admitted for p in record.parts):
                failed = next(p for p in record.parts if not p.admitted)
                record.admitted = False
                record.rejected_reason = failed.rejected_reason
                for shard, sibling in zip(record.shard_ids, record.parts):
                    if sibling.admitted and not sibling.completed:
                        self.shards[shard].cancel(sibling)
                if record.trace is not None:
                    record.trace.end(self.clock_ns).set(
                        status="rejected", reason=record.rejected_reason
                    )
                    self.obs.metrics.counter("cluster.rejected").inc()
            if record.completed:
                if math.isnan(record.finish_ns):
                    self._gather(record)
                merge_ops += max(0, len(record.parts) - 1)
        return merge_ops

    def result(self, name: str = "cluster") -> ClusterResult:
        """Gather all finished records and roll up cluster metrics."""
        merge_ops = self._finalize_records()
        per_shard = [
            shard.result(f"{name}/shard{i}") for i, shard in enumerate(self.shards)
        ]
        metrics = ClusterMetrics.from_records(
            name,
            self.records,
            [r.metrics for r in per_shard],
            merge_ops=merge_ops,
        )
        return ClusterResult(
            records=list(self.records), per_shard=per_shard, metrics=metrics
        )
