"""Deterministic virtual-clock fault injection for the cluster tier.

A :class:`FaultPlan` is a *schedule* of shard lifecycle events — kills,
revivals, drains, retirements, joins — pinned to absolute nanosecond
timestamps on the cluster's virtual clock, plus optional
predicate-triggered events evaluated as the clock advances.  The plan is
pure data: it never advances time itself.  The cluster frontend owns the
clock and asks the plan two questions while it advances:

* :meth:`FaultPlan.next_fire_ns` — when is the next timed event due?
  The frontend advances its shards *to that instant* before firing, so a
  kill lands at exactly its scheduled time: batches dispatched before it
  complete (fail-stop at the dispatch boundary), work still queued on
  the victim migrates at the kill instant.
* :meth:`FaultPlan.fire_due` — apply every event due at or before
  ``now`` (in timestamp order; ties break in plan order).

Predicate triggers (:class:`FaultTrigger`) are polled *after* the clock
has moved (:meth:`FaultPlan.poll`): the predicate reads cluster state —
backlogs, health, record counts — and fires its action at the current
instant.  Triggers fire at clock-advance granularity, which is exactly
the granularity at which cluster state changes.

Everything here is deterministic: same plan + same arrival stream →
same fault timeline, which is what makes the bit-exactness property in
``tests/test_cluster_faults.py`` checkable at all.  Wall-clock and
host-randomness imports are banned by the ``obs-wall-clock`` rule in
``tools/lint_invariants.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.frontend import ClusterFrontend

#: Shard lifecycle actions a fault event may apply.
FAULT_ACTIONS = ("kill", "revive", "drain", "retire", "join")

#: Predicate signature of a trigger: (cluster, now_ns) -> fire?
FaultPredicate = Callable[["ClusterFrontend", float], bool]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled shard lifecycle event.

    Attributes:
        at_ns: Absolute virtual-clock instant the event fires.
        action: One of :data:`FAULT_ACTIONS`.
        shard_id: The victim/subject shard (ignored for ``"join"``,
            which always grows the pool by one).
    """

    at_ns: float
    action: str
    shard_id: int = -1

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (one of {FAULT_ACTIONS})"
            )
        if self.at_ns < 0.0:
            raise ValueError("at_ns must be non-negative")
        if self.action != "join" and self.shard_id < 0:
            raise ValueError(f"{self.action!r} needs a shard_id")


@dataclass
class FaultTrigger:
    """A predicate-armed fault: fires when its condition first holds.

    Attributes:
        action: One of :data:`FAULT_ACTIONS`.
        predicate: ``(cluster, now_ns) -> bool`` — read-only cluster
            inspection; must not mutate state.
        shard_id: Subject shard (ignored for ``"join"``).
        once: Disarm after the first firing (default).  A repeating
            trigger re-fires on every poll where the predicate holds —
            the applied action is idempotent (killing a dead shard is a
            no-op), so repeats are safe.
        fired: Times the trigger has fired (bookkeeping).
    """

    action: str
    predicate: FaultPredicate
    shard_id: int = -1
    once: bool = True
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (one of {FAULT_ACTIONS})"
            )

    @property
    def armed(self) -> bool:
        return self.fired == 0 or not self.once


@dataclass(frozen=True)
class FaultLogEntry:
    """One applied fault, for post-run audit.

    Attributes:
        at_ns: When the action was applied.
        action: What was applied.
        shard_id: The subject shard (the *new* shard id for a join).
        applied: False when the action was a no-op (e.g. killing an
            already-dead shard).
        source: ``"event"`` or ``"trigger"``.
    """

    at_ns: float
    action: str
    shard_id: int
    applied: bool
    source: str


class FaultPlan:
    """An ordered schedule of fault events plus predicate triggers.

    Args:
        events: Timed events, any order (sorted internally by
            ``(at_ns, insertion order)``).
        triggers: Predicate-armed events polled as the clock advances.
    """

    def __init__(
        self,
        events: Iterable[FaultEvent] = (),
        triggers: Iterable[FaultTrigger] = (),
    ) -> None:
        stamped = list(events)
        self._pending: List[Tuple[float, int, FaultEvent]] = sorted(
            ((event.at_ns, i, event) for i, event in enumerate(stamped)),
            key=lambda item: (item[0], item[1]),
        )
        self.triggers: List[FaultTrigger] = list(triggers)
        #: Applied-action audit log, in firing order.
        self.log: List[FaultLogEntry] = []

    # ------------------------------------------------------------------
    # Schedule surface (consumed by ClusterFrontend.advance_to/drain)
    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[FaultEvent]:
        """Timed events not yet fired, soonest first."""
        return [event for _, _, event in self._pending]

    def next_fire_ns(self) -> Optional[float]:
        """Instant of the next timed event; None when none remain."""
        return self._pending[0][0] if self._pending else None

    def fire_due(self, cluster: "ClusterFrontend", now_ns: float) -> int:
        """Apply every timed event due at or before ``now_ns``; returns
        how many fired.  The caller must have advanced the cluster's
        shards to the event instant first (see module docstring)."""
        fired = 0
        while self._pending and self._pending[0][0] <= now_ns:
            _, _, event = self._pending.pop(0)
            self._apply(cluster, event.action, event.shard_id, event.at_ns, "event")
            fired += 1
        return fired

    def poll(self, cluster: "ClusterFrontend", now_ns: float) -> int:
        """Evaluate armed triggers at ``now_ns``; returns how many fired."""
        fired = 0
        for trigger in self.triggers:
            if not trigger.armed:
                continue
            if trigger.predicate(cluster, now_ns):
                self._apply(cluster, trigger.action, trigger.shard_id, now_ns, "trigger")
                trigger.fired += 1
                fired += 1
        return fired

    # ------------------------------------------------------------------
    # Action application
    # ------------------------------------------------------------------
    def _apply(
        self,
        cluster: "ClusterFrontend",
        action: str,
        shard_id: int,
        at_ns: float,
        source: str,
    ) -> None:
        if action == "kill":
            applied = cluster.fail_shard(shard_id, at_ns=at_ns)
        elif action == "revive":
            applied = cluster.revive_shard(shard_id, at_ns=at_ns)
        elif action == "drain":
            applied = cluster.drain_shard(shard_id, at_ns=at_ns)
        elif action == "retire":
            applied = cluster.retire_shard(shard_id, at_ns=at_ns)
        else:  # join
            shard_id = cluster.join_shard(at_ns=at_ns)
            applied = True
        self.log.append(
            FaultLogEntry(
                at_ns=at_ns,
                action=action,
                shard_id=shard_id,
                applied=bool(applied),
                source=source,
            )
        )


def kill_revive_schedule(
    intervals: Iterable[Tuple[int, float, Optional[float]]],
) -> FaultPlan:
    """Build a plan from ``(shard_id, kill_ns, revive_ns)`` intervals
    (``revive_ns=None`` kills without revival)."""
    events: List[FaultEvent] = []
    for shard_id, kill_ns, revive_ns in intervals:
        events.append(FaultEvent(at_ns=kill_ns, action="kill", shard_id=shard_id))
        if revive_ns is not None:
            if revive_ns <= kill_ns:
                raise ValueError("revive_ns must come after kill_ns")
            events.append(
                FaultEvent(at_ns=revive_ns, action="revive", shard_id=shard_id)
            )
    return FaultPlan(events=events)


__all__ = [
    "FAULT_ACTIONS",
    "FaultEvent",
    "FaultLogEntry",
    "FaultPlan",
    "FaultTrigger",
    "kill_revive_schedule",
]
