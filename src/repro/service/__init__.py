"""Batched bulk-operation service layer.

Accepts streams of Ambit bulk bitwise operations, BitWeaving predicate
scans, and RowClone copies; plans them across banks with operation fusion
and allocation reuse; executes them batched with bank-level overlap.
"""

from repro.service.pool import VectorPool
from repro.service.requests import (
    BatchResult,
    BulkOpRequest,
    CopyRequest,
    RequestResult,
    SCAN_KINDS,
    ScanRequest,
)
from repro.service.scheduler import BatchScheduler

__all__ = [
    "BatchResult",
    "BatchScheduler",
    "BulkOpRequest",
    "CopyRequest",
    "RequestResult",
    "SCAN_KINDS",
    "ScanRequest",
    "VectorPool",
]
