"""The admission-controlled bulk-operation service pipeline.

Three stages serve streams of in-DRAM work (Ambit bulk bitwise operations,
BitWeaving predicate scans, RowClone copies, bitmap-index conjunctions):

* :class:`ServiceFrontend` — arrival processes (Poisson / trace), a
  bounded priority queue with admission control, and per-request deadlines;
* :class:`BatchPlanner` — closes batches by policy (size / time window /
  deadline urgency) and lowers high-level requests into primitives;
* :class:`BatchExecutor` — pure execution with bank-level overlap (LPT
  makespan scheduling), operation fusion, and allocation reuse.

:class:`BatchScheduler` remains as the one-shot facade for callers that
hand-build their own batches.
"""

from repro.service.client import BackoffPolicy, RetryClient, RetryOutcome, RetryRecord
from repro.service.executor import BatchExecutor
from repro.service.lanes import HOST_LANE, LaneSchedule
from repro.service.frontend import (
    ArrivalEvent,
    PipelineResult,
    ServiceFrontend,
    poisson_schedule,
    summarize_records,
    trace_schedule,
)
from repro.service.planner import BatchPlanner, BatchPolicy, LoweredGroup
from repro.service.pool import VectorPool
from repro.service.requests import (
    BatchResult,
    BitmapConjunctionRequest,
    BulkOpRequest,
    CopyRequest,
    FrontendRequest,
    QueuedRequest,
    RequestResult,
    SCAN_KINDS,
    ScanRequest,
)
from repro.service.scheduler import BatchScheduler

__all__ = [
    "ArrivalEvent",
    "BackoffPolicy",
    "BatchExecutor",
    "BatchPlanner",
    "BatchPolicy",
    "BatchResult",
    "BatchScheduler",
    "BitmapConjunctionRequest",
    "BulkOpRequest",
    "CopyRequest",
    "FrontendRequest",
    "HOST_LANE",
    "LaneSchedule",
    "LoweredGroup",
    "PipelineResult",
    "QueuedRequest",
    "RequestResult",
    "RetryClient",
    "RetryOutcome",
    "RetryRecord",
    "SCAN_KINDS",
    "ScanRequest",
    "ServiceFrontend",
    "VectorPool",
    "poisson_schedule",
    "summarize_records",
    "trace_schedule",
]
