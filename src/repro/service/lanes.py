"""Persistent per-bank lane timelines for cross-batch pipelining.

A :class:`LaneSchedule` carries one *lane* per schedulable resource — each
DRAM bank the executor rotates work onto, plus one dedicated
:data:`HOST_LANE` for work that never touches a bank — and remembers each
lane's **busy-until horizon** *across* batches.  That persistence is what
replaces the batch-synchronous barrier: when the executor dispatches a new
batch, requests bound for banks the previous batch has already drained
start immediately, while requests bound for a still-busy bank queue behind
that lane's horizon.  Within one dependency chain nothing moves — a
request still occupies all of its banks for its full sequential latency,
and requests contending for a bank serialize in dispatch order — so lane
pipelining changes *when* work runs, never *what* it computes or what the
hardware is charged.

Besides the horizons, the schedule keeps the accounting that makes the
pipelining win measurable:

* **per-lane busy time** — the sequential latency charged onto each lane,
  from which per-lane utilization and the bank idle fraction derive;
* **device-busy union** — the union of all scheduled ``[start, finish)``
  intervals across lanes, i.e. the virtual time during which *any* lane
  was busy.  This is the honest "busy" for throughput math: summing batch
  makespans would double-count the overlap pipelining creates;
* **cross-batch overlap** — the portion of each batch's work that ran
  before the previous batch's completion horizon, which is exactly the
  time the barrier used to waste.

Every placement is additionally appended to an **interval log**
(:attr:`LaneSchedule.log` of :class:`LanePlacement` entries) — the primary
input of the schedule race detector
(:mod:`repro.verify.schedule_check`), which replays the log to certify
that no two requests overlapped on a lane, that causality held (no start
before release, completions within the barrier bound), and that the
busy/union/overlap accounting above reconciles with the placements that
produced it.

The schedule is deliberately policy-free: the executor decides lane
membership (bank assignment) and request order (LPT), the frontend decides
dispatch instants; :meth:`place` only advances the timelines.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from repro.analysis.metrics import LaneMetrics

#: Lane key of work that runs host-side and occupies no DRAM bank.  Kept a
#: string so it can never collide with the device's ``(channel, rank,
#: bank)`` tuple keys — host-only bulk operations must not contend with
#: real bank-0 traffic.
HOST_LANE = "host"

#: Key type of a lane: a device bank key tuple, or :data:`HOST_LANE`.
LaneKey = Hashable


@dataclass(frozen=True)
class LanePlacement:
    """One scheduled request interval, as the race detector consumes it.

    Attributes:
        lanes: Lane keys the request occupied (all for ``latency_ns``).
        latency_ns: Sequential latency charged to every occupied lane.
        release_ns: Dispatch instant the placement was released at.
        start_ns: Scheduled start (release + queueing behind lanes).
        finish_ns: Scheduled finish (``start_ns + latency_ns``).
        batch_index: Which :meth:`LaneSchedule.open_batch` window the
            placement belongs to (0 before any batch was opened).
    """

    lanes: Tuple[LaneKey, ...]
    latency_ns: float
    release_ns: float
    start_ns: float
    finish_ns: float
    batch_index: int


class LaneSchedule:
    """Per-lane busy-until timelines that persist across batches.

    Args:
        lane_keys: Lanes to pre-create (the executor's active bank keys).
            Further lanes — notably :data:`HOST_LANE` — are created lazily
            the first time work is placed on them.
    """

    def __init__(self, lane_keys: Iterable[LaneKey] = ()) -> None:
        #: Busy-until horizon per lane (absolute virtual ns).
        self.horizon: Dict[LaneKey, float] = {key: 0.0 for key in lane_keys}
        #: Total busy time charged per lane.
        self.busy: Dict[LaneKey, float] = {key: 0.0 for key in self.horizon}
        #: Virtual time during which at least one lane was busy (the union
        #: of all placed intervals).
        self.busy_union_ns = 0.0
        #: Work that ran before the previous batch's completion horizon.
        self.cross_batch_overlap_ns = 0.0
        #: Requests placed across the schedule's lifetime.
        self.requests = 0
        #: Batches dispatched across the schedule's lifetime.
        self.batches = 0
        #: Interval log of every placement, in placement order — the
        #: schedule race detector's input (see module docstring).
        self.log: List[LanePlacement] = []
        #: Batch windows opened via :meth:`open_batch` (stamps the log).
        self.batches_opened = 0
        # Disjoint, sorted union intervals (parallel start/end arrays).
        self._starts: List[float] = []
        self._ends: List[float] = []

    # ------------------------------------------------------------------
    # Horizons
    # ------------------------------------------------------------------
    def lane_horizon_ns(self, key: LaneKey) -> float:
        """Busy-until horizon of one lane (0 for an untouched lane)."""
        return self.horizon.get(key, 0.0)

    def horizon_ns(self) -> float:
        """The overall completion horizon (the busiest lane's)."""
        return max(self.horizon.values(), default=0.0)

    def ready_ns(self) -> float:
        """Earliest instant some *bank* lane is idle — the dispatch gate.

        A pipelined frontend may dispatch its next batch as soon as any
        bank has drained (the batch's requests on still-busy banks simply
        queue behind those lanes); the host lane never gates dispatch.
        """
        return min(
            (h for key, h in self.horizon.items() if key != HOST_LANE),
            default=0.0,
        )

    def lane_load_ns(self, keys: Iterable[LaneKey]) -> float:
        """Latest busy-until horizon over ``keys`` (0 if all untouched).

        The batch plan optimizer prices candidate bank offsets with this
        when spreading a request's independent sub-chains: a sub-chain
        lands on the lanes that drain first.
        """
        return max((self.horizon.get(key, 0.0) for key in keys), default=0.0)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def open_batch(self) -> int:
        """Open the next batch window; subsequent placements are stamped
        with its index.  Purely bookkeeping for the interval log (and the
        race detector's per-batch barrier bound); horizons are untouched.
        """
        self.batches_opened += 1
        return self.batches_opened

    def place(
        self,
        lanes: Sequence[LaneKey],
        latency_ns: float,
        release_ns: float = 0.0,
    ) -> Tuple[float, float]:
        """Place one request on its lanes; returns ``(start, finish)``.

        The request starts once it is released *and* every one of its
        lanes has drained, then occupies all of them for ``latency_ns``.
        """
        start = release_ns
        for key in lanes:
            start = max(start, self.horizon.get(key, 0.0))
        finish = start + latency_ns
        for key in lanes:
            self.horizon[key] = finish
            self.busy[key] = self.busy.get(key, 0.0) + latency_ns
        self._add_interval(start, finish)
        self.requests += 1
        self.log.append(
            LanePlacement(
                lanes=tuple(lanes),
                latency_ns=latency_ns,
                release_ns=release_ns,
                start_ns=start,
                finish_ns=finish,
                batch_index=self.batches_opened,
            )
        )
        return start, finish

    def _add_interval(self, start: float, finish: float) -> float:
        """Fold ``[start, finish)`` into the busy union; returns the ns added."""
        if finish <= start:
            return 0.0
        starts, ends = self._starts, self._ends
        i = bisect.bisect_left(ends, start)
        j = bisect.bisect_right(starts, finish)
        overlap = 0.0
        new_start, new_end = start, finish
        for k in range(i, j):
            overlap += max(0.0, min(ends[k], finish) - max(starts[k], start))
            new_start = min(new_start, starts[k])
            new_end = max(new_end, ends[k])
        added = (finish - start) - overlap
        starts[i:j] = [new_start]
        ends[i:j] = [new_end]
        self.busy_union_ns += added
        return added

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def metrics(self, name: str = "lanes") -> LaneMetrics:
        """Snapshot the lane accounting into a :class:`LaneMetrics`."""
        return LaneMetrics(
            name=name,
            lanes=len(self.horizon),
            span_ns=self.horizon_ns(),
            busy_union_ns=self.busy_union_ns,
            cross_batch_overlap_ns=self.cross_batch_overlap_ns,
            requests=self.requests,
            batches=self.batches,
            per_lane_busy_ns=dict(self.busy),
            host_lane_key=HOST_LANE,
        )
