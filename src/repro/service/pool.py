"""A small LRU pool of placed bit vectors for intermediate results.

Functional execution of a scan or a fused operation chain needs short-lived
intermediate vectors (complemented planes, partial predicates).  Allocating
a fresh vector per intermediate would bleed DRAM rows out of the
:class:`~repro.ambit.allocator.RowAllocator`; the pool instead recycles a
bounded set of vectors keyed by (length, bank offset), and frees the rows
of whatever it evicts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitEngine


class VectorPool:
    """LRU cache of placed :class:`BulkBitVector` row allocations.

    Args:
        engine: Ambit engine whose allocator backs the pooled vectors.
        capacity: Maximum vectors kept across all keys; the least recently
            released vector is evicted (and its rows freed) beyond that.
    """

    def __init__(self, engine: AmbitEngine, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        # Key -> stack of idle vectors; insertion order across keys is the
        # LRU order (OrderedDict moves a key to the end on every release).
        self._idle: "OrderedDict[Tuple[int, int], List[BulkBitVector]]" = OrderedDict()
        self._idle_count = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def acquire(self, num_bits: int, bank_offset: int = 0) -> BulkBitVector:
        """Return a placed vector of ``num_bits`` bits, reusing rows if possible.

        The vector's previous contents are undefined; callers must fill it.
        """
        key = (num_bits, bank_offset)
        stack = self._idle.get(key)
        if stack:
            vector = stack.pop()
            if not stack:
                del self._idle[key]
            self._idle_count -= 1
            self.hits += 1
            return vector
        self.misses += 1
        row_size = self.engine.device.geometry.row_size_bytes
        rows = max(1, -(-((num_bits + 7) // 8) // row_size))
        allocation = self.engine.allocator.allocate(rows, bank_offset=bank_offset)
        return BulkBitVector(num_bits, row_size, allocation)

    def release(self, vector: BulkBitVector, bank_offset: int = 0) -> None:
        """Return a vector to the pool (evicting the LRU entry when full)."""
        key = (vector.num_bits, bank_offset)
        self._idle.setdefault(key, []).append(vector)
        self._idle.move_to_end(key)
        self._idle_count += 1
        while self._idle_count > self.capacity:
            old_key, stack = next(iter(self._idle.items()))
            evicted = stack.pop(0)
            if not stack:
                del self._idle[old_key]
            self._idle_count -= 1
            self.evictions += 1
            if evicted.allocation is not None:
                self.engine.allocator.free(evicted.allocation)

    def drain(self) -> None:
        """Free the rows of every idle vector and empty the pool."""
        for stack in self._idle.values():
            for vector in stack:
                if vector.allocation is not None:
                    self.engine.allocator.free(vector.allocation)
        self._idle.clear()
        self._idle_count = 0

    @property
    def idle_vectors(self) -> int:
        """Vectors currently cached and idle."""
        return self._idle_count
