"""A retrying client model: rejected requests re-offer after backoff.

Admission control turns overload into rejections; a real client does not
let its request vanish — it backs off exponentially and offers it again.
:class:`RetryClient` models exactly that on the frontend's virtual clock:
every rejected offer is rescheduled ``base_ns * multiplier**attempt``
later (with optional seeded jitter to de-synchronize retry storms), up to
``max_attempts`` total tries.  The deadline, priority, and the request
itself are preserved across attempts — only the arrival time moves.

Two fault-tolerance refinements: the retry budget is **deadline-aware**
(a retry whose backoff delay would land past the request's deadline is
not offered at all — the budget is the remaining slack, not a fixed
attempt count), and jitter draws are **keyed** per (request, attempt)
from the client seed, so the de-synchronization is deterministic on the
virtual clock and independent of the order retries interleave — exactly
what keeps a post-failure retry storm from re-spiking the surviving
shards in lockstep.

The client drives anything that speaks the
:class:`~repro.api.backends.Backend` protocol (``offer`` /
``advance_to`` / ``drain`` / ``result``) — the single-device
:class:`~repro.service.frontend.ServiceFrontend`, the sharded
:class:`~repro.cluster.frontend.ClusterFrontend`, the serial
:class:`~repro.api.backends.HostBackend` — or a
:class:`~repro.api.session.PimSession` wrapping any of them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.service.frontend import ArrivalEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.backends import Backend
    from repro.api.session import PimSession


@dataclass
class BackoffPolicy:
    """Exponential backoff with optional jitter.

    Attributes:
        base_ns: Delay before the first retry.
        multiplier: Growth factor per attempt (2.0 = classic doubling).
        max_attempts: Total tries (first offer included); 1 disables
            retrying.
        jitter: Fractional spread: each delay is scaled by a uniform
            draw from ``[1 - jitter, 1 + jitter]``.  0 is deterministic.
    """

    base_ns: float = 5_000.0
    multiplier: float = 2.0
    max_attempts: int = 4
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base_ns <= 0:
            raise ValueError("base_ns must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_ns(
        self,
        attempt: int,
        rng: Optional[np.random.Generator] = None,
        *,
        seed: int = 0,
        key: int = 0,
    ) -> float:
        """Backoff before retry number ``attempt`` (1-based).

        Jitter draws come from ``rng`` when given (legacy shared-stream
        mode), else from a generator keyed on ``(seed, key, attempt)`` —
        every (request, attempt) pair gets its own deterministic draw,
        independent of the order retries pop off the virtual-time heap.
        Keyed jitter is what de-synchronizes the retry storm after a
        shard failure: the victims' re-offers spread over the backoff
        window instead of landing on the survivors in one spike.
        """
        delay = self.base_ns * self.multiplier ** (attempt - 1)
        if self.jitter > 0.0:
            if rng is None:
                rng = np.random.default_rng((seed, key, attempt))
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


@dataclass
class RetryRecord:
    """One logical request's journey through its offer attempts.

    Attributes:
        event: The original arrival.
        attempts: The frontend envelope of every offer, in attempt order
            (the last one is the final outcome).
    """

    event: ArrivalEvent
    attempts: List = field(default_factory=list)

    @property
    def final(self):
        """The envelope of the last attempt."""
        return self.attempts[-1]

    @property
    def delivered(self) -> bool:
        """True when some attempt was admitted."""
        return self.final.admitted

    @property
    def retries(self) -> int:
        """Re-offers beyond the first attempt."""
        return len(self.attempts) - 1

    @property
    def gave_up(self) -> bool:
        """True when every attempt was rejected."""
        return not self.delivered


@dataclass
class RetryOutcome:
    """Outcome of serving a stream through a retrying client.

    Attributes:
        result: The frontend's own pipeline/cluster result.
        records: Per logical request, its attempts.
    """

    result: object
    records: List[RetryRecord] = field(default_factory=list)

    @property
    def delivered(self) -> int:
        return sum(1 for r in self.records if r.delivered)

    @property
    def delivered_after_retry(self) -> int:
        """Requests that only got in thanks to a retry."""
        return sum(1 for r in self.records if r.delivered and r.retries > 0)

    @property
    def gave_up(self) -> int:
        return sum(1 for r in self.records if r.gave_up)

    @property
    def total_attempts(self) -> int:
        return sum(len(r.attempts) for r in self.records)


class RetryClient:
    """Drives a backend, re-offering rejected requests after backoff.

    Args:
        frontend: Any :class:`~repro.api.backends.Backend` — a
            :class:`ServiceFrontend`, a
            :class:`~repro.cluster.frontend.ClusterFrontend`, a
            :class:`~repro.api.backends.HostBackend` — or a
            :class:`~repro.api.session.PimSession`, whose backend is
            driven directly (the session's own futures/report stay
            consistent, since both share the backend's records).
        policy: Backoff schedule (defaults to 5 µs doubling, 4 attempts).
        seed: Seed of the jitter draws.
    """

    def __init__(
        self,
        frontend: Union["Backend", "PimSession"],
        policy: Optional[BackoffPolicy] = None,
        seed: int = 0,
    ) -> None:
        from repro.api.session import PimSession  # local: avoid cycle

        # A PimSession wraps its backend; unwrap it explicitly.  Any
        # other object — including custom Backend decorators that happen
        # to carry a `backend` attribute — is driven as given.
        self.frontend = frontend.backend if isinstance(frontend, PimSession) else frontend
        self.policy = policy or BackoffPolicy()
        self.seed = seed
        #: Retries skipped because the remaining deadline slack could not
        #: cover the backoff delay (the attempt budget was cut short).
        self.deadline_exhausted = 0

    def run(self, events: Iterable[ArrivalEvent], name: str = "retry_client") -> RetryOutcome:
        """Serve a stream, retrying rejections, and report both views.

        Offers are processed in virtual-time order across first offers and
        retries together; the frontend serves batches in between exactly
        as it would for a plain arrival stream.
        """
        outcome = RetryOutcome(result=None)
        heap: List[Tuple[float, int, int, RetryRecord]] = []
        for i, event in enumerate(sorted(events, key=lambda e: e.arrival_ns)):
            record = RetryRecord(event=event)
            outcome.records.append(record)
            heapq.heappush(heap, (event.arrival_ns, i, 1, record))
        while heap:
            offer_ns, key, attempt, record = heapq.heappop(heap)
            self.frontend.advance_to(offer_ns)
            envelope = self.frontend.offer(
                record.event.request,
                priority=record.event.priority,
                deadline_ns=record.event.deadline_ns,
                arrival_ns=offer_ns,
            )
            record.attempts.append(envelope)
            if not envelope.admitted and attempt < self.policy.max_attempts:
                # Jitter is keyed per (request, attempt): deterministic,
                # order-independent, and de-synchronized across victims
                # of the same shard failure.
                delay = self.policy.delay_ns(
                    attempt, seed=self.seed, key=key
                )
                deadline = record.event.deadline_ns
                if deadline is not None and offer_ns + delay >= deadline:
                    # The remaining slack cannot cover the backoff: the
                    # retry would arrive already late, so the budget is
                    # capped here rather than wasting a doomed offer.
                    self.deadline_exhausted += 1
                    continue
                heapq.heappush(heap, (offer_ns + delay, key, attempt + 1, record))
        self.frontend.drain()
        outcome.result = self.frontend.result(name)
        return outcome
