"""The service frontend: arrivals, admission control, and the request queue.

:class:`ServiceFrontend` is the first stage of the service pipeline
(frontend → planner → executor).  It accepts a *stream* of requests — from
a Poisson arrival process, a recorded trace, or direct :meth:`offer` calls
— into a bounded priority queue, applies admission control, and drives the
:class:`~repro.service.planner.BatchPlanner` /
:class:`~repro.service.executor.BatchExecutor` pair on a virtual clock.

**Admission control.**  A request is rejected (never queued, never served)
when the queue is at ``max_queue_depth``, or when the modeled bank
occupancy already exceeds ``max_backlog_ns``.  Occupancy is tracked as a
**per-bank backlog vector**: each queued request charges its sequential
latency to the banks it is modeled to occupy (its column's banks, its
placement, its bank-offset hint), and requests with no affinity spread
evenly.  The admission bound applies to the *hottest* bank the candidate
would touch, so under bank skew the frontend rejects work piling onto a
hot bank while still admitting work bound for idle banks — with balanced
traffic the behaviour matches the older scalar model (queued serial
latency / banks) and ``max_backlog_ns`` keeps its meaning.  Rejected
requests are counted and returned to the caller with a reason; a real
deployment would translate this into backpressure (see
:class:`~repro.service.client.RetryClient` for a retrying client model).

**Load shedding.**  With ``shed_low_priority`` enabled, a request that
would be refused makes room by evicting queued work of *strictly lower*
priority (youngest of the lowest class first) — but only when shedding
actually lets the candidate fit.  Shed requests are marked
``rejected_reason="shed"`` and counted in
:attr:`~repro.analysis.metrics.QueueMetrics.shed`.

**Queue order.**  Higher ``priority`` first, then earliest deadline, then
FIFO — so latency-critical classes overtake bulk work without starving it
(the batch window bounds the wait of everything admitted).

**Virtual time.**  The frontend simulates in nanoseconds, consistent with
the rest of the stack: arrivals happen at their timestamps, and requests
arriving during service are admitted (against the live queue) before the
next batch closes.  Per-request wait and sojourn times, deadline misses,
and rejections are summarized in
:class:`~repro.analysis.metrics.QueueMetrics`.

**Lane pipelining.**  With a pipelined executor (the default), serving a
batch does *not* occupy the clock for the batch's makespan: the batch is
dispatched onto the executor's persistent per-bank lane timelines
(:class:`~repro.service.lanes.LaneSchedule`), and the next batch may be
dispatched as soon as *some* bank lane has drained
(:meth:`BatchExecutor.ready_ns`) — so a straggler on one bank no longer
holds every other bank idle.  Completion accounting then reads lane
horizons instead of batch makespans: request finish times come from the
lane schedule, :attr:`completion_ns` extends the clock by the in-flight
horizon, admission occupancy counts each bank's in-flight remainder on
top of its queued backlog, and :attr:`busy_ns` accumulates the
overlap-aware device-busy union rather than a sum of makespans.  With
``BatchExecutor(pipeline=False)`` every one of these reduces to the
batch-synchronous behaviour: the clock rides through each makespan and
in-flight remainders are zero.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.analysis.metrics import LaneMetrics, QueueMetrics, summarize_queue_records
from repro.cache.result_cache import ResultCache, resolve_cache
from repro.obs import Observer, resolve_observe
from repro.service.executor import BatchExecutor
from repro.service.lanes import HOST_LANE
from repro.service.planner import BatchPlanner, BatchPolicy, LoweredGroup
from repro.service.requests import BatchResult, FrontendRequest, QueuedRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.passes import OptimizerConfig
    from repro.storage.maintenance import MaintenancePolicy


@dataclass
class ArrivalEvent:
    """One request arriving at a point of virtual time.

    Attributes:
        request: The request (primitive or high-level).
        arrival_ns: Arrival timestamp on the frontend's clock.
        priority: Larger values are served first.
        deadline_ns: Absolute completion deadline, or None.
    """

    request: FrontendRequest
    arrival_ns: float
    priority: int = 0
    deadline_ns: Optional[float] = None


def poisson_schedule(
    requests: Sequence[FrontendRequest],
    rate_per_s: float,
    seed: int = 0,
    priorities: Optional[Sequence[int]] = None,
    deadline_slack_ns: Optional[float] = None,
    start_ns: float = 0.0,
) -> List[ArrivalEvent]:
    """Schedule requests as a Poisson arrival process.

    Args:
        requests: The requests, in arrival order.
        rate_per_s: Mean arrival rate (requests per second).
        seed: Seed of the exponential inter-arrival draws.
        priorities: Optional per-request priorities.
        deadline_slack_ns: When given, each request's deadline is its
            arrival time plus this slack.
        start_ns: Virtual-clock origin of the process.  When feeding a
            frontend that has already served traffic, pass its
            ``clock_ns`` — arrivals stamped before the frontend's current
            clock would be accounted as having waited since t=0.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    events: List[ArrivalEvent] = []
    now = float(start_ns)
    for i, request in enumerate(requests):
        now += rng.exponential(1e9 / rate_per_s)
        events.append(
            ArrivalEvent(
                request=request,
                arrival_ns=now,
                priority=priorities[i] if priorities is not None else 0,
                deadline_ns=now + deadline_slack_ns if deadline_slack_ns is not None else None,
            )
        )
    return events


def trace_schedule(
    requests: Sequence[FrontendRequest],
    arrival_times_ns: Sequence[float],
    priorities: Optional[Sequence[int]] = None,
    deadlines_ns: Optional[Sequence[Optional[float]]] = None,
) -> List[ArrivalEvent]:
    """Schedule requests at recorded trace timestamps."""
    if len(requests) != len(arrival_times_ns):
        raise ValueError("requests and arrival_times_ns differ in length")
    events = []
    for i, (request, at) in enumerate(zip(requests, arrival_times_ns)):
        events.append(
            ArrivalEvent(
                request=request,
                arrival_ns=float(at),
                priority=priorities[i] if priorities is not None else 0,
                deadline_ns=deadlines_ns[i] if deadlines_ns is not None else None,
            )
        )
    return events


@dataclass
class PipelineResult:
    """Outcome of serving a request stream through the pipeline.

    Attributes:
        records: Every offered request's envelope, in offer order —
            including rejected ones (check :attr:`QueuedRequest.admitted`).
        batches: The executor's per-batch results, in service order.
        metrics: Queueing summary (percentiles, misses, rejections).
    """

    records: List[QueuedRequest] = field(default_factory=list)
    batches: List[BatchResult] = field(default_factory=list)
    metrics: Optional[QueueMetrics] = None

    def completed(self) -> List[QueuedRequest]:
        """Envelopes that finished service, in offer order."""
        return [r for r in self.records if r.completed]

    def rejected(self) -> List[QueuedRequest]:
        """Envelopes refused by admission control, in offer order."""
        return [r for r in self.records if not r.admitted]


def summarize_records(
    name: str,
    records: Sequence[QueuedRequest],
    makespan_ns: float,
    busy_ns: float,
    batches: int,
) -> QueueMetrics:
    """Queueing summary over a window of request envelopes.

    Used by :meth:`ServiceFrontend.result` over the frontend's lifetime
    and by per-session reporting (:meth:`repro.api.session.PimSession
    .report`) over just one session's records, so a reused frontend never
    folds earlier traffic into a later report.  The roll-up arithmetic is
    shared with the cluster tier in
    :func:`repro.analysis.metrics.summarize_envelopes`.
    """
    return summarize_queue_records(
        name, records, makespan_ns=makespan_ns, busy_ns=busy_ns, batches=batches
    )


class ServiceFrontend:
    """Admission-controlled request frontend over the batch pipeline.

    Args:
        executor: The execution stage (a default one is created on demand).
        planner: The planning stage (defaults to one over ``executor``
            with ``policy``).
        policy: Batch-closing policy for the default planner.
        max_queue_depth: Admission bound on queued (not yet serving)
            requests.
        max_backlog_ns: Admission bound on modeled bank occupancy: the
            backlog already charged to the hottest bank the candidate
            would occupy, plus the candidate's own latency.  None disables
            occupancy-based admission.
        functional: Execute batches on the simulated banks (subject to the
            executor's ``verify_fraction``) instead of analytically.
        shed_low_priority: When over an admission bound, evict queued work
            of strictly lower priority (``rejected_reason="shed"``) to
            make room, instead of only rejecting the candidate at the door.
        optimize: Enable the batch plan optimizer on the default planner:
            ``True`` for the default
            :class:`~repro.optimizer.OptimizerConfig`, or an explicit
            config.  Ignored when an explicit ``planner`` is passed
            (configure that planner directly).
        cache: Cross-batch result cache (``repro.cache``): ``True``
            builds a default :class:`~repro.cache.ResultCache`, an
            instance is adopted as-is (shareable across frontends over
            one device), ``False``/``None`` disables caching.  Enabling
            the cache auto-enables the batch plan optimizer (consults
            and fills ride its canonical-key pass).  Ignored when an
            explicit ``planner`` is passed — the planner's own
            ``result_cache`` wins.
        maintenance: Index-maintenance policy for write requests
            (``repro.storage``): a strategy name (``"eager"``,
            ``"lazy"``, ``"hybrid"``) or a configured
            :class:`~repro.storage.MaintenancePolicy`; ``None`` means
            eager.  Ignored when an explicit ``planner`` is passed.
        observe: Observability plane (``repro.obs``): ``True`` records a
            span tree per request (admission → queue → service) plus
            frontend counters/gauges/histograms, and pushes the plane
            down to the executor (batch + lane spans).  An
            :class:`~repro.obs.Observer` shares one plane across
            components; ``False`` (the default) adopts whatever plane the
            executor already carries — so either end of the pipeline can
            switch tracing on.  Recording never changes admission,
            schedules, results, or accounting.
    """

    def __init__(
        self,
        executor: Optional[BatchExecutor] = None,
        planner: Optional[BatchPlanner] = None,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: int = 64,
        max_backlog_ns: Optional[float] = None,
        functional: bool = False,
        shed_low_priority: bool = False,
        optimize: Union[bool, "OptimizerConfig"] = False,
        cache: Union[None, bool, ResultCache] = None,
        maintenance: Union[None, str, "MaintenancePolicy"] = None,
        observe: Union[bool, Observer] = False,
    ) -> None:
        if max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        self.executor = executor or BatchExecutor()
        if planner is not None:
            self.planner = planner
            self.cache = planner.result_cache
        else:
            self.cache = resolve_cache(cache)
            self.planner = BatchPlanner(
                self.executor,
                policy,
                optimize=optimize,
                maintenance=maintenance,
                result_cache=self.cache,
            )
        self.max_queue_depth = max_queue_depth
        self.max_backlog_ns = max_backlog_ns
        self.functional = functional
        self.shed_low_priority = shed_low_priority
        self.clock_ns = 0.0
        self.records: List[QueuedRequest] = []
        self.batches: List[BatchResult] = []
        self.busy_ns = 0.0
        #: Queued requests evicted by priority-class load shedding.
        self.shed_requests = 0
        self._heap: List = []
        self._seq = 0
        self._backlog_ns = 0.0
        self._bank_backlog: Dict = {key: 0.0 for key in self.executor.active_bank_keys()}
        if observe is False:
            # Adopt the executor's plane, so `BatchExecutor(observe=True)`
            # alone traces the full pipeline (and the default stays the
            # shared no-op observer).
            self.obs = self.executor.obs
        else:
            self.bind_observer(resolve_observe(observe))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, obs: Observer) -> None:
        """Adopt an observability plane and push it to the executor."""
        self.obs = obs
        self.executor.bind_observer(obs)
        # The maintenance policy's hotness counters ride the same plane
        # (``storage.reads.<column>``) so hybrid strategy decisions are
        # inspectable wherever the frontend's metrics land.
        self.planner.maintenance.bind_observer(obs)

    def _obs_offered(self, queued: QueuedRequest) -> None:
        """Open the request's root span at arrival."""
        span = self.obs.tracer.span("request", category="request", start_ns=queued.arrival_ns)
        span.set(
            kind=type(queued.request).__name__,
            seq=queued.seq,
            priority=queued.priority,
        )
        if queued.deadline_ns is not None:
            span.set(
                deadline_ns=queued.deadline_ns,
                deadline_slack_ns=queued.deadline_ns - queued.arrival_ns,
            )
        queued.trace = span
        self.obs.metrics.counter("frontend.offered").inc()

    def _obs_admitted(self, queued: QueuedRequest) -> None:
        """Record the admission decision and refresh the queue gauges."""
        queued.trace.child(
            "admission",
            category="request",
            start_ns=queued.arrival_ns,
            end_ns=queued.arrival_ns,
        ).set(
            admitted=True,
            modeled_ns=queued.modeled_ns,
            modeled_banks=len(queued.modeled_banks),
        )
        registry = self.obs.metrics
        registry.counter("frontend.admitted").inc()
        registry.gauge("frontend.queue_depth").set(float(len(self._heap)))
        registry.gauge("frontend.backlog_ns").set(self.backlog_ns)

    def _obs_rejected(self, queued: QueuedRequest) -> None:
        """Close the root span of a request refused at the door."""
        queued.trace.child(
            "admission",
            category="request",
            start_ns=queued.arrival_ns,
            end_ns=queued.arrival_ns,
        ).set(admitted=False, reason=queued.rejected_reason)
        queued.trace.end(queued.arrival_ns).set(
            status="rejected", reason=queued.rejected_reason
        )
        registry = self.obs.metrics
        registry.counter("frontend.rejected").inc()
        registry.counter(f"frontend.rejected.{queued.rejected_reason}").inc()

    def _obs_served(self, queued: QueuedRequest, batch_index: int) -> None:
        """Attach queue/service children and close the root at finish."""
        span = queued.trace
        span.child(
            "queue",
            category="request",
            start_ns=queued.arrival_ns,
            end_ns=queued.start_ns,
        )
        span.child(
            "service",
            category="request",
            start_ns=queued.start_ns,
            end_ns=queued.finish_ns,
        ).set(
            batch=batch_index,
            ops_eliminated=queued.ops_eliminated,
            shared_subchains=queued.shared_subchains,
            host_merge_ns=queued.host_merge_ns,
            cache_hits=queued.cache_hits,
            cache_misses=queued.cache_misses,
        )
        span.end(queued.finish_ns).set(
            status="completed", deadline_missed=queued.deadline_missed
        )
        registry = self.obs.metrics
        registry.counter("frontend.completed").inc()
        if queued.deadline_missed:
            registry.counter("frontend.deadline_misses").inc()
        registry.histogram("frontend.wait_ns").observe(queued.wait_ns)
        registry.histogram("frontend.sojourn_ns").observe(queued.sojourn_ns)

    def _obs_maintenance(self, queued: QueuedRequest, group: LoweredGroup) -> None:
        """Attach a ``maintenance`` child span for index-maintenance work.

        Write requests get one carrying the policy's strategy decisions
        (per-column eager/lazy split, planes charged, invalidations);
        read requests that paid for deferred rebuilds get one naming the
        columns rebuilt into their service window.
        """
        outcome = group.write_outcome
        if outcome is not None:
            request = outcome.request
            span = queued.trace.child(
                "maintenance",
                category="storage",
                start_ns=queued.start_ns,
                end_ns=queued.finish_ns,
            )
            span.set(
                kind=request.kind,
                strategy=self.planner.maintenance.strategy,
                columns=",".join(
                    f"{col}={strat}" for col, strat in sorted(outcome.strategies.items())
                ),
                rows_affected=outcome.rows_affected,
                planes_charged=outcome.planes_charged,
                cache_invalidations=queued.cache_invalidations,
            )
        elif group.rebuild_columns:
            queued.trace.child(
                "maintenance",
                category="storage",
                start_ns=queued.start_ns,
                end_ns=queued.finish_ns,
            ).set(
                kind="rebuild",
                strategy=self.planner.maintenance.strategy,
                columns=",".join(group.rebuild_columns),
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted and waiting for a batch."""
        return len(self._heap)

    @property
    def backlog_ns(self) -> float:
        """Modeled queued occupancy of the hottest lane (the admission-binding value)."""
        return max(self._bank_backlog.values(), default=0.0)

    @property
    def mean_backlog_ns(self) -> float:
        """Queued serial latency spread over the banks (the old scalar model)."""
        return self._backlog_ns / self._banks()

    @property
    def completion_ns(self) -> float:
        """When everything dispatched so far finishes: the clock, extended
        by any in-flight lane horizon a pipelined executor still carries."""
        return max(self.clock_ns, self.executor.horizon_ns())

    def bank_backlog(self) -> Dict:
        """Copy of the per-lane backlog vector (lane key -> queued ns)."""
        return dict(self._bank_backlog)

    def lane_metrics(self, name: str = "lanes") -> LaneMetrics:
        """Per-lane utilization snapshot of the executor's timelines."""
        return self.executor.lane_metrics(name)

    def _banks(self) -> int:
        return max(1, self.executor.banks_available())

    def _inflight_ns(self, key) -> float:
        """In-flight (dispatched, unfinished) time still ahead of one lane.

        Zero for a barrier executor, whose in-service time rides on the
        clock itself; for a pipelined one it is the lane's horizon beyond
        the current clock, so admission occupancy keeps counting work the
        banks have accepted but not yet drained.
        """
        return max(0.0, self.executor.lane_horizon_ns(key) - self.clock_ns)

    def _occupancy_with(self, backlog: Dict, queued: QueuedRequest) -> float:
        """Hottest-lane occupancy if ``queued`` were charged onto ``backlog``.

        Occupancy of a lane is its queued backlog plus its in-flight
        remainder; pinned candidates bind on the hottest lane they would
        touch, unpinned ones on the hottest *bank* lane (host-lane load
        never blocks bank-bound work).
        """
        if queued.modeled_banks:
            return max(
                backlog.get(key, 0.0) + self._inflight_ns(key) + queued.modeled_ns
                for key in queued.modeled_banks
            )
        share = queued.modeled_ns / self._banks()
        hottest = max(
            (
                backlog.get(key, 0.0) + self._inflight_ns(key)
                for key in backlog
                if key != HOST_LANE
            ),
            default=0.0,
        )
        return hottest + share

    def _charge(self, queued: QueuedRequest, sign: float) -> None:
        amount = sign * queued.modeled_ns
        if queued.modeled_banks:
            for key in queued.modeled_banks:
                self._bank_backlog[key] = self._bank_backlog.get(key, 0.0) + amount
        else:
            share = amount / self._banks()
            for key in self._bank_backlog:
                if key != HOST_LANE:
                    self._bank_backlog[key] += share
        self._backlog_ns += amount

    def _reset_backlog(self) -> None:
        """Absorb float drift once the queue is empty."""
        self._backlog_ns = 0.0
        for key in self._bank_backlog:
            self._bank_backlog[key] = 0.0

    # ------------------------------------------------------------------
    # Priority-class load shedding
    # ------------------------------------------------------------------
    def _shed_order(self, candidate_priority: int) -> List[QueuedRequest]:
        """Sheddable queued work: lowest priority class first, youngest first."""
        victims = [q for _, q in self._heap if q.priority < candidate_priority]
        victims.sort(key=lambda q: (q.priority, -q.seq))
        return victims

    def _remove_queued(self, queued: QueuedRequest, reason: str) -> None:
        self._heap = [entry for entry in self._heap if entry[1] is not queued]
        heapq.heapify(self._heap)
        self._charge(queued, -1.0)
        if not self._heap:
            self._reset_backlog()
        queued.admitted = False
        queued.rejected_reason = reason
        if self.obs.enabled:
            if queued.trace is not None:
                # The span ends when the request leaves the system — at
                # the shed/cancel instant, not its arrival.
                queued.trace.end(self.clock_ns).set(status="rejected", reason=reason)
            self.obs.metrics.counter("frontend.rejected").inc()
            self.obs.metrics.counter(f"frontend.rejected.{reason}").inc()

    def _evict(self, victim: QueuedRequest, reason: str) -> None:
        self._remove_queued(victim, reason)
        self.shed_requests += 1

    def cancel(self, queued: QueuedRequest, reason: str = "cancelled") -> bool:
        """Withdraw a queued, not-yet-served request; True when removed.

        The envelope is marked rejected with ``reason``.  The cluster
        frontend uses this to keep scatter admission all-or-nothing: when
        one shard refuses a sub-request, the siblings already queued on
        other shards are withdrawn instead of running as wasted work.
        """
        if any(entry[1] is queued for entry in self._heap):
            self._remove_queued(queued, reason)
            return True
        return False

    def _uncharge_copy(self, backlog: Dict, victim: QueuedRequest) -> None:
        """Remove a victim's charge from a *copied* backlog vector."""
        if victim.modeled_banks:
            for key in victim.modeled_banks:
                backlog[key] = backlog.get(key, 0.0) - victim.modeled_ns
        else:
            share = victim.modeled_ns / self._banks()
            for key in backlog:
                if key != HOST_LANE:
                    backlog[key] -= share

    def _plan_occupancy_shed(
        self, candidate: QueuedRequest, pre_evicted: Sequence[QueuedRequest] = ()
    ) -> Optional[List[QueuedRequest]]:
        """Victims (beyond ``pre_evicted``) whose eviction fits ``candidate``.

        Planned against a copy of the backlog vector: returns the victim
        list ([] when the candidate already fits), or None when evicting
        the *entire* lower-priority backlog still would not admit it — in
        which case nothing may be shed (work is never wasted on a doomed
        admission).
        """
        backlog = dict(self._bank_backlog)
        for victim in pre_evicted:
            self._uncharge_copy(backlog, victim)
        chosen: List[QueuedRequest] = []
        for victim in self._shed_order(candidate.priority):
            if any(victim is evicted for evicted in pre_evicted):
                continue
            if self._occupancy_with(backlog, candidate) <= self.max_backlog_ns:
                break
            self._uncharge_copy(backlog, victim)
            chosen.append(victim)
        if self._occupancy_with(backlog, candidate) > self.max_backlog_ns:
            return None
        return chosen

    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ) -> QueuedRequest:
        """Offer one request; returns its envelope (possibly rejected).

        Admission control runs at the request's arrival time against the
        current queue; a rejected envelope has ``admitted=False`` and a
        ``rejected_reason`` and will never be served.
        """
        arrival = self.clock_ns if arrival_ns is None else float(arrival_ns)
        self.clock_ns = max(self.clock_ns, arrival)
        queued = QueuedRequest(
            request=request,
            arrival_ns=arrival,
            priority=priority,
            deadline_ns=deadline_ns,
            seq=self._seq,
        )
        self._seq += 1
        self.records.append(queued)
        observe = self.obs.enabled
        if observe:
            self._obs_offered(queued)

        # Depth check first: a queue-full rejection must not pay for the
        # latency model (for scans that is a full host-side evaluation).
        # With shedding on, a lower-priority victim *can* make room — but
        # its eviction is deferred until the whole admission plan (depth
        # plus occupancy) is known to fit, so no victim is ever destroyed
        # for a candidate that is rejected anyway.
        victims: List[QueuedRequest] = []
        if len(self._heap) >= self.max_queue_depth:
            if self.shed_low_priority:
                sheddable = self._shed_order(priority)
                if sheddable:
                    victims.append(sheddable[0])
            if not victims:
                queued.admitted = False
                queued.rejected_reason = "queue_full"
                if observe:
                    self._obs_rejected(queued)
                return queued
        queued.modeled_ns = self.planner.modeled_latency_ns(request)
        queued.modeled_banks = self.planner.modeled_banks(request)
        if self.max_backlog_ns is not None:
            if self.shed_low_priority:
                extra = self._plan_occupancy_shed(queued, pre_evicted=victims)
                if extra is None:
                    queued.admitted = False
                    queued.rejected_reason = "bank_occupancy"
                    if observe:
                        self._obs_rejected(queued)
                    return queued
                victims.extend(extra)
            elif self._occupancy_with(self._bank_backlog, queued) > self.max_backlog_ns:
                queued.admitted = False
                queued.rejected_reason = "bank_occupancy"
                if observe:
                    self._obs_rejected(queued)
                return queued
        for victim in victims:
            self._evict(victim, "shed")
        heapq.heappush(self._heap, (queued.sort_key(), queued))
        self._charge(queued, 1.0)
        if observe:
            self._obs_admitted(queued)
        return queued

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _queued(self) -> List[QueuedRequest]:
        return [q for _, q in self._heap]

    def _dispatch_ready_ns(self) -> float:
        """Earliest instant the *next* batch may be dispatched.

        A pipelined batch dispatches as soon as some bank lane is free
        (:meth:`BatchExecutor.ready_ns`); a batch made entirely of
        host-only work gates on the host lane instead — host work must
        never wait for a bank it will not touch.  Always the current
        clock's past (0) for a barrier executor.
        """
        if not self.executor.pipeline:
            return 0.0
        size = min(self.planner.policy.max_batch, len(self._heap))
        head = heapq.nsmallest(size, self._heap)
        if head and all(q.modeled_banks == [HOST_LANE] for _, q in head):
            return self.executor.lane_horizon_ns(HOST_LANE)
        return self.executor.ready_ns()

    def serve_batch(self, urgent: bool = False) -> Optional[BatchResult]:
        """Close and execute one batch from the queue (None when empty).

        The batch is dispatched at the current clock (lifted, under
        pipelining, to the first instant a bank lane is free).  A barrier
        executor then occupies the clock for the batch makespan; a
        pipelined one leaves the clock at the dispatch instant and lets
        the work ride the lane horizons, so the next batch can dispatch
        onto banks this one never touched — or has already drained.
        Lowered groups report the start of their first primitive and the
        finish of their last (plus any host-side merge the optimizer's
        sub-chain split charges).

        Args:
            urgent: Skip the pipelined dispatch gate: a horizon-priced
                deadline close (:meth:`BatchPlanner.urgent_close`) must
                reach its lane *now*, not after a full extra batch has
                drained — the lane schedule still serializes the actual
                placements.
        """
        if not self._heap:
            return None
        pipelined = self.executor.pipeline
        if pipelined and not urgent:
            # Dispatch gate: wait (on the virtual clock) until a lane is free.
            self.clock_ns = max(self.clock_ns, self._dispatch_ready_ns())
        size = min(self.planner.policy.max_batch, len(self._heap))
        closed: List[QueuedRequest] = []
        for _ in range(size):
            _, queued = heapq.heappop(self._heap)
            self._charge(queued, -1.0)
            closed.append(queued)
        if not self._heap:
            self._reset_backlog()

        primitives, groups = self.planner.lower_batch(closed)
        batch_start = self.clock_ns
        batch_index = len(self.batches)
        observe = self.obs.enabled
        if observe:
            # Instant marker on the batch row: what planning/optimization
            # did to this batch before it hit the lanes.
            self.obs.tracer.span(
                "plan",
                category="planner",
                start_ns=batch_start,
                end_ns=batch_start,
                track=(self.executor.batches_track(),),
            ).set(
                batch=batch_index,
                requests=len(closed),
                primitives=len(primitives),
                ops_eliminated=sum(g.ops_eliminated for g in groups),
                shared_subchains=sum(g.shared_subchains for g in groups),
            )
        batch = self.executor.run(
            primitives, functional=self.functional, release_ns=batch_start
        )
        # Park the batch's finished bitmaps in the result cache.  This
        # must happen *after* the run (the fill buffers are the lowered
        # chains' output vectors) and rides the optimizer's epoch guard:
        # a fill whose dependency columns took a write since plan time is
        # bypassed instead of caching a stale bitmap.
        self.planner.commit_cache_fills()
        for group in groups:
            queued = group.queued
            queued.batch_index = batch_index
            # A request's service spans its own steps *plus* any shared
            # steps it consumes (CSE deps bound its finish but are only
            # charged to their owner); split-mode host joins extend the
            # finish by the merge tree.
            cone = list(group.indices) + list(group.dep_indices)
            if cone:
                # Result start times are absolute against the frontend
                # clock (the executor scheduled from ``release_ns``).
                results = [batch.results[i] for i in cone]
                queued.start_ns = min(r.start_ns for r in results)
                queued.finish_ns = (
                    max(r.start_ns + r.metrics.latency_ns for r in results)
                    + group.host_merge_ns
                )
                own = [batch.results[i] for i in group.indices]
                queued.metrics = self.planner.group_metrics(group, own)
                queued.value = group.finalize(own)
            else:
                queued.start_ns = batch_start
                queued.finish_ns = batch_start + group.host_merge_ns
                queued.metrics = group.zero_cost_metrics
                queued.value = group.finalize([])
            queued.host_merge_ns = group.host_merge_ns
            queued.ops_eliminated = group.ops_eliminated
            queued.shared_subchains = group.shared_subchains
            queued.cache_hits = group.cache_hits
            queued.cache_misses = group.cache_misses
            queued.cache_invalidations = group.cache_invalidations
            if observe and queued.trace is not None:
                self._obs_served(queued, batch_index)
                self._obs_maintenance(queued, group)
        batch.metrics.ops_eliminated = sum(g.ops_eliminated for g in groups)
        batch.metrics.shared_subchains = sum(g.shared_subchains for g in groups)
        batch.metrics.cache_hits = sum(g.cache_hits for g in groups)
        batch.metrics.cache_misses = sum(g.cache_misses for g in groups)
        batch.metrics.cache_invalidations = sum(g.cache_invalidations for g in groups)
        if observe:
            registry = self.obs.metrics
            registry.gauge("frontend.queue_depth").set(float(len(self._heap)))
            registry.gauge("frontend.backlog_ns").set(self.backlog_ns)
            if batch.metrics.cache_hits:
                registry.counter("cache.hit").inc(batch.metrics.cache_hits)
            if batch.metrics.cache_misses:
                registry.counter("cache.miss").inc(batch.metrics.cache_misses)
            if batch.metrics.cache_invalidations:
                registry.counter("cache.invalidations").inc(
                    batch.metrics.cache_invalidations
                )
        if not pipelined:
            self.clock_ns = batch_start + batch.metrics.latency_ns
        self.busy_ns += batch.metrics.busy_ns
        self.batches.append(batch)
        return batch

    def drain(self) -> None:
        """Serve batches until the queue is empty, then ride out the lanes.

        On return the clock sits at the completion horizon, so a reused
        frontend starts its next stream against an idle executor exactly
        as a barrier one would.
        """
        while self._heap:
            self.serve_batch()
        self.clock_ns = max(self.clock_ns, self.executor.horizon_ns())

    def advance_to(self, until_ns: float) -> None:
        """Advance the virtual clock towards ``until_ns``, serving batches.

        Serves every batch the policy closes strictly before ``until_ns``,
        then stops so a pending arrival at ``until_ns`` can be admitted
        against the live queue.  With a barrier executor the clock may
        overshoot by an in-flight batch's makespan (service is
        batch-synchronous); a pipelined executor instead gates dispatch
        on :meth:`BatchExecutor.ready_ns` — a batch closes as soon as
        some bank lane is free, not when the whole previous batch has
        drained.  The clock is *not* lifted to ``until_ns``;
        :meth:`offer` does that at arrival.  Shared by :meth:`run`, the
        cluster frontend, and the retry client.
        """
        while self._heap and self.clock_ns < until_ns:
            if self.planner.should_close(self._queued(), self.clock_ns):
                # An urgent (horizon-priced deadline) close bypasses the
                # dispatch gate: waiting for a free lane is exactly what
                # would miss the deadline.  The lane schedule still
                # serializes the placements themselves.
                urgent = self.planner.urgent_close(self._queued(), self.clock_ns)
                ready = self._dispatch_ready_ns()
                if ready > self.clock_ns and not urgent:
                    # Every lane the next batch would use is busy: the
                    # next dispatch instant is when the first one drains.
                    if ready >= until_ns:
                        break
                    self.clock_ns = ready
                    continue
                self.serve_batch(urgent=urgent)
                continue
            # Sleep until the policy's next closing instant (window expiry /
            # the last moment an urgent deadline can still start on time).
            wake = self.planner.next_close_ns(self._queued(), self.clock_ns)
            if wake >= until_ns or wake <= self.clock_ns or math.isinf(wake):
                break
            self.clock_ns = wake

    def run(self, events: Iterable[ArrivalEvent], name: str = "frontend") -> PipelineResult:
        """Serve a whole arrival stream and return the pipeline outcome.

        Drives the virtual clock: requests are admitted at their arrival
        times, the planner decides when each batch closes (a batch is also
        forced once the stream has ended), and service rides the executor
        — the clock through each batch's makespan for a barrier executor,
        the per-bank lane horizons for a pipelined one.
        """
        for event in sorted(events, key=lambda e: e.arrival_ns):
            self.advance_to(event.arrival_ns)
            self.offer(
                event.request,
                priority=event.priority,
                deadline_ns=event.deadline_ns,
                arrival_ns=event.arrival_ns,
            )
        self.drain()
        return self.result(name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self, name: str = "frontend") -> PipelineResult:
        """Summarize everything served so far into a :class:`PipelineResult`."""
        metrics = summarize_records(
            name, self.records, self.completion_ns, self.busy_ns, len(self.batches)
        )
        return PipelineResult(records=list(self.records), batches=list(self.batches), metrics=metrics)
