"""The service frontend: arrivals, admission control, and the request queue.

:class:`ServiceFrontend` is the first stage of the service pipeline
(frontend → planner → executor).  It accepts a *stream* of requests — from
a Poisson arrival process, a recorded trace, or direct :meth:`offer` calls
— into a bounded priority queue, applies admission control, and drives the
:class:`~repro.service.planner.BatchPlanner` /
:class:`~repro.service.executor.BatchExecutor` pair on a virtual clock.

**Admission control.**  A request is rejected (never queued, never served)
when the queue is at ``max_queue_depth``, or when the modeled bank
occupancy — the queued requests' sequential latencies spread over the
device's parallel banks — already exceeds ``max_backlog_ns``.  Rejected
requests are counted and returned to the caller with a reason; a real
deployment would translate this into backpressure.

**Queue order.**  Higher ``priority`` first, then earliest deadline, then
FIFO — so latency-critical classes overtake bulk work without starving it
(the batch window bounds the wait of everything admitted).

**Virtual time.**  The frontend simulates in nanoseconds, consistent with
the rest of the stack: arrivals happen at their timestamps, a batch
occupies the executor for its makespan, and requests arriving during
service are admitted (against the live queue) before the next batch
closes.  Per-request wait and sojourn times, deadline misses, and
rejections are summarized in :class:`~repro.analysis.metrics.QueueMetrics`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.metrics import QueueMetrics
from repro.service.executor import BatchExecutor
from repro.service.planner import BatchPlanner, BatchPolicy
from repro.service.requests import BatchResult, FrontendRequest, QueuedRequest


@dataclass
class ArrivalEvent:
    """One request arriving at a point of virtual time.

    Attributes:
        request: The request (primitive or high-level).
        arrival_ns: Arrival timestamp on the frontend's clock.
        priority: Larger values are served first.
        deadline_ns: Absolute completion deadline, or None.
    """

    request: FrontendRequest
    arrival_ns: float
    priority: int = 0
    deadline_ns: Optional[float] = None


def poisson_schedule(
    requests: Sequence[FrontendRequest],
    rate_per_s: float,
    seed: int = 0,
    priorities: Optional[Sequence[int]] = None,
    deadline_slack_ns: Optional[float] = None,
    start_ns: float = 0.0,
) -> List[ArrivalEvent]:
    """Schedule requests as a Poisson arrival process.

    Args:
        requests: The requests, in arrival order.
        rate_per_s: Mean arrival rate (requests per second).
        seed: Seed of the exponential inter-arrival draws.
        priorities: Optional per-request priorities.
        deadline_slack_ns: When given, each request's deadline is its
            arrival time plus this slack.
        start_ns: Virtual-clock origin of the process.  When feeding a
            frontend that has already served traffic, pass its
            ``clock_ns`` — arrivals stamped before the frontend's current
            clock would be accounted as having waited since t=0.
    """
    if rate_per_s <= 0:
        raise ValueError("rate_per_s must be positive")
    rng = np.random.default_rng(seed)
    events: List[ArrivalEvent] = []
    now = float(start_ns)
    for i, request in enumerate(requests):
        now += rng.exponential(1e9 / rate_per_s)
        events.append(
            ArrivalEvent(
                request=request,
                arrival_ns=now,
                priority=priorities[i] if priorities is not None else 0,
                deadline_ns=now + deadline_slack_ns if deadline_slack_ns is not None else None,
            )
        )
    return events


def trace_schedule(
    requests: Sequence[FrontendRequest],
    arrival_times_ns: Sequence[float],
    priorities: Optional[Sequence[int]] = None,
    deadlines_ns: Optional[Sequence[Optional[float]]] = None,
) -> List[ArrivalEvent]:
    """Schedule requests at recorded trace timestamps."""
    if len(requests) != len(arrival_times_ns):
        raise ValueError("requests and arrival_times_ns differ in length")
    events = []
    for i, (request, at) in enumerate(zip(requests, arrival_times_ns)):
        events.append(
            ArrivalEvent(
                request=request,
                arrival_ns=float(at),
                priority=priorities[i] if priorities is not None else 0,
                deadline_ns=deadlines_ns[i] if deadlines_ns is not None else None,
            )
        )
    return events


@dataclass
class PipelineResult:
    """Outcome of serving a request stream through the pipeline.

    Attributes:
        records: Every offered request's envelope, in offer order —
            including rejected ones (check :attr:`QueuedRequest.admitted`).
        batches: The executor's per-batch results, in service order.
        metrics: Queueing summary (percentiles, misses, rejections).
    """

    records: List[QueuedRequest] = field(default_factory=list)
    batches: List[BatchResult] = field(default_factory=list)
    metrics: Optional[QueueMetrics] = None

    def completed(self) -> List[QueuedRequest]:
        """Envelopes that finished service, in offer order."""
        return [r for r in self.records if r.completed]

    def rejected(self) -> List[QueuedRequest]:
        """Envelopes refused by admission control, in offer order."""
        return [r for r in self.records if not r.admitted]


def summarize_records(
    name: str,
    records: Sequence[QueuedRequest],
    makespan_ns: float,
    busy_ns: float,
    batches: int,
) -> QueueMetrics:
    """Queueing summary over a window of request envelopes.

    Used by :meth:`ServiceFrontend.result` over the frontend's lifetime
    and by per-call entry points (e.g.
    :meth:`QueryEngine.scan_query_pipeline`) over just their own records,
    so a reused frontend never folds earlier traffic into a later report.
    """
    completed = [r for r in records if r.completed]
    return QueueMetrics.from_samples(
        name,
        wait_ns=[r.wait_ns for r in completed],
        sojourn_ns=[r.sojourn_ns for r in completed],
        offered=len(records),
        admitted=sum(1 for r in records if r.admitted),
        rejected=sum(1 for r in records if not r.admitted),
        completed=len(completed),
        deadline_misses=sum(1 for r in completed if r.deadline_missed),
        makespan_ns=makespan_ns,
        busy_ns=busy_ns,
        serial_latency_ns=sum(r.metrics.latency_ns for r in completed),
        energy_j=sum(r.metrics.energy_j for r in completed),
        batches=batches,
    )


class ServiceFrontend:
    """Admission-controlled request frontend over the batch pipeline.

    Args:
        executor: The execution stage (a default one is created on demand).
        planner: The planning stage (defaults to one over ``executor``
            with ``policy``).
        policy: Batch-closing policy for the default planner.
        max_queue_depth: Admission bound on queued (not yet serving)
            requests.
        max_backlog_ns: Admission bound on modeled bank occupancy: the
            queued requests' sequential latencies divided by the device's
            parallel banks, plus the candidate's own share.  None disables
            occupancy-based admission.
        functional: Execute batches on the simulated banks (subject to the
            executor's ``verify_fraction``) instead of analytically.
    """

    def __init__(
        self,
        executor: Optional[BatchExecutor] = None,
        planner: Optional[BatchPlanner] = None,
        policy: Optional[BatchPolicy] = None,
        max_queue_depth: int = 64,
        max_backlog_ns: Optional[float] = None,
        functional: bool = False,
    ) -> None:
        if max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        self.executor = executor or BatchExecutor()
        self.planner = planner or BatchPlanner(self.executor, policy)
        self.max_queue_depth = max_queue_depth
        self.max_backlog_ns = max_backlog_ns
        self.functional = functional
        self.clock_ns = 0.0
        self.records: List[QueuedRequest] = []
        self.batches: List[BatchResult] = []
        self.busy_ns = 0.0
        self._heap: List = []
        self._seq = 0
        self._backlog_ns = 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Requests admitted and waiting for a batch."""
        return len(self._heap)

    @property
    def backlog_ns(self) -> float:
        """Modeled bank occupancy of the queue (serial latency / banks)."""
        return self._backlog_ns / self._banks()

    def _banks(self) -> int:
        return max(1, self.executor.banks_available())

    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ) -> QueuedRequest:
        """Offer one request; returns its envelope (possibly rejected).

        Admission control runs at the request's arrival time against the
        current queue; a rejected envelope has ``admitted=False`` and a
        ``rejected_reason`` and will never be served.
        """
        arrival = self.clock_ns if arrival_ns is None else float(arrival_ns)
        self.clock_ns = max(self.clock_ns, arrival)
        queued = QueuedRequest(
            request=request,
            arrival_ns=arrival,
            priority=priority,
            deadline_ns=deadline_ns,
            seq=self._seq,
        )
        self._seq += 1
        self.records.append(queued)

        # Depth check first: a queue-full rejection must not pay for the
        # latency model (for scans that is a full host-side evaluation).
        if len(self._heap) >= self.max_queue_depth:
            queued.admitted = False
            queued.rejected_reason = "queue_full"
            return queued
        queued.modeled_ns = self.planner.modeled_latency_ns(request)
        if (
            self.max_backlog_ns is not None
            and (self._backlog_ns + queued.modeled_ns) / self._banks() > self.max_backlog_ns
        ):
            queued.admitted = False
            queued.rejected_reason = "bank_occupancy"
            return queued
        heapq.heappush(self._heap, (queued.sort_key(), queued))
        self._backlog_ns += queued.modeled_ns
        return queued

    # ------------------------------------------------------------------
    # Service
    # ------------------------------------------------------------------
    def _queued(self) -> List[QueuedRequest]:
        return [q for _, q in self._heap]

    def serve_batch(self) -> Optional[BatchResult]:
        """Close and execute one batch from the queue (None when empty).

        The batch starts at the current clock; the clock advances by the
        batch makespan.  Lowered groups report the start of their first
        primitive and the finish of their last.
        """
        if not self._heap:
            return None
        size = min(self.planner.policy.max_batch, len(self._heap))
        closed: List[QueuedRequest] = []
        for _ in range(size):
            _, queued = heapq.heappop(self._heap)
            self._backlog_ns -= queued.modeled_ns
            closed.append(queued)
        if not self._heap:
            self._backlog_ns = 0.0  # absorb float drift at empty queue

        primitives, groups = self.planner.lower_batch(closed)
        batch = self.executor.run(primitives, functional=self.functional)
        batch_start = self.clock_ns
        batch_index = len(self.batches)
        for group in groups:
            queued = group.queued
            queued.batch_index = batch_index
            if group.indices:
                results = [batch.results[i] for i in group.indices]
                queued.start_ns = batch_start + min(r.start_ns for r in results)
                queued.finish_ns = batch_start + max(
                    r.start_ns + r.metrics.latency_ns for r in results
                )
                queued.metrics = self.planner.group_metrics(group, results)
                queued.value = group.finalize(results)
            else:
                queued.start_ns = batch_start
                queued.finish_ns = batch_start
                queued.metrics = group.zero_cost_metrics
                queued.value = group.finalize([])
        self.clock_ns = batch_start + batch.metrics.latency_ns
        self.busy_ns += batch.metrics.latency_ns
        self.batches.append(batch)
        return batch

    def drain(self) -> None:
        """Serve batches until the queue is empty."""
        while self._heap:
            self.serve_batch()

    def run(self, events: Iterable[ArrivalEvent], name: str = "frontend") -> PipelineResult:
        """Serve a whole arrival stream and return the pipeline outcome.

        Drives the virtual clock: requests are admitted at their arrival
        times, the planner decides when each batch closes (a batch is also
        forced once the stream has ended), and service occupies the clock
        for each batch's makespan.
        """
        pending = sorted(events, key=lambda e: e.arrival_ns)
        i = 0
        while i < len(pending) or self._heap:
            if not self._heap and i < len(pending):
                self.clock_ns = max(self.clock_ns, pending[i].arrival_ns)
            while i < len(pending) and pending[i].arrival_ns <= self.clock_ns:
                event = pending[i]
                self.offer(
                    event.request,
                    priority=event.priority,
                    deadline_ns=event.deadline_ns,
                    arrival_ns=event.arrival_ns,
                )
                i += 1
            if not self._heap:
                continue
            if i >= len(pending) or self.planner.should_close(self._queued(), self.clock_ns):
                self.serve_batch()
            else:
                # Sleep until whichever comes first: the next arrival or the
                # policy's next closing instant (window expiry / the last
                # moment an urgent deadline can still start on time).
                wake = min(
                    pending[i].arrival_ns,
                    self.planner.next_close_ns(self._queued(), self.clock_ns),
                )
                self.clock_ns = max(self.clock_ns, wake)
        return self.result(name)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def result(self, name: str = "frontend") -> PipelineResult:
        """Summarize everything served so far into a :class:`PipelineResult`."""
        metrics = summarize_records(
            name, self.records, self.clock_ns, self.busy_ns, len(self.batches)
        )
        return PipelineResult(records=list(self.records), batches=list(self.batches), metrics=metrics)
