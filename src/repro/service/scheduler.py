"""One-shot batching facade over the service pipeline's executor.

:class:`BatchScheduler` is the caller-shaped entry point that predates the
admission-controlled pipeline: the caller hand-builds a batch with the
``submit_*`` methods and runs it with :meth:`~BatchScheduler.execute`.  All
execution machinery lives in :class:`~repro.service.executor.BatchExecutor`
(the pipeline's third stage); this class only keeps the pending list.

For a service that shapes its own batches — arrival processes, a bounded
priority queue with admission control, deadlines, and policy-driven batch
closing — use :class:`~repro.service.frontend.ServiceFrontend`, which
drives the same executor through the
:class:`~repro.service.planner.BatchPlanner`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitEngine
from repro.database.bitweaving import BitWeavingColumn
from repro.rowclone.engine import RowCloneEngine
from repro.service.executor import BatchExecutor
from repro.service.pool import VectorPool
from repro.service.requests import (
    BatchResult,
    BulkOpRequest,
    CopyRequest,
    ScanRequest,
    ServiceRequest,
)


class BatchScheduler:
    """Collects a batch of bulk in-DRAM requests and executes it.

    Args:
        engine: Ambit engine to execute on.  When omitted, an engine with
            the vectorized functional path enabled is created.
        rowclone: RowClone engine for copy requests (created on the same
            device when omitted).
        pool_capacity: Size of the LRU pool of intermediate row allocations.
        fuse: Enable operation fusion (shared plane complements).
        lpt: Order requests longest-first before bank assignment (LPT);
            see :class:`~repro.service.executor.BatchExecutor`.
        pipeline: Carry per-bank lane horizons across consecutive
            :meth:`execute` calls (the default): each batch is dispatched
            as soon as some bank lane has drained, so a hot bank's
            straggler no longer stalls the next batch's work on idle
            banks.  ``False`` restores the batch-synchronous barrier.
        verify_fraction: Fraction of a functional batch executed (and
            verified) on the simulated banks; the rest run analytically.
        verify_seed: Seed of the deterministic verification sampler.
    """

    def __init__(
        self,
        engine: Optional[AmbitEngine] = None,
        rowclone: Optional[RowCloneEngine] = None,
        pool_capacity: int = 16,
        fuse: bool = True,
        lpt: bool = True,
        pipeline: bool = True,
        verify_fraction: float = 1.0,
        verify_seed: int = 0,
    ) -> None:
        self.executor = BatchExecutor(
            engine=engine,
            rowclone=rowclone,
            pool_capacity=pool_capacity,
            fuse=fuse,
            lpt=lpt,
            pipeline=pipeline,
            verify_fraction=verify_fraction,
            verify_seed=verify_seed,
        )
        self._pending: List[ServiceRequest] = []

    # Execution state lives in the executor; expose it for callers that
    # predate the pipeline split.
    @property
    def engine(self) -> AmbitEngine:
        """The executor's Ambit engine."""
        return self.executor.engine

    @property
    def rowclone(self) -> RowCloneEngine:
        """The executor's RowClone engine."""
        return self.executor.rowclone

    @property
    def pool(self) -> VectorPool:
        """The executor's LRU pool of intermediate vectors."""
        return self.executor.pool

    @property
    def fuse(self) -> bool:
        """Whether operation fusion is enabled."""
        return self.executor.fuse

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest) -> int:
        """Queue a request; returns its index within the next batch."""
        if not isinstance(request, (BulkOpRequest, ScanRequest, CopyRequest)):
            raise TypeError(f"unknown request type {type(request).__name__}")
        self._pending.append(request)
        return len(self._pending) - 1

    def submit_bulk_op(
        self,
        op: str,
        a: BulkBitVector,
        b: Optional[BulkBitVector] = None,
        out: Optional[BulkBitVector] = None,
    ) -> int:
        """Queue ``out = op(a, b)``."""
        return self.submit(BulkOpRequest(op=op, a=a, b=b, out=out))

    def submit_scan(self, column: BitWeavingColumn, kind: str, *constants: int) -> int:
        """Queue a BitWeaving predicate scan."""
        return self.submit(ScanRequest(column=column, kind=kind, constants=constants))

    def submit_copy(self, num_bytes: int, mode=None, fill: bool = False) -> int:
        """Queue a RowClone bulk copy (or fill when ``fill`` is True)."""
        request = CopyRequest(num_bytes=num_bytes, fill=fill)
        if mode is not None:
            request.mode = mode
        return self.submit(request)

    @property
    def pending(self) -> int:
        """Requests queued for the next batch."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, functional: bool = False, release_ns: Optional[float] = None
    ) -> BatchResult:
        """Run every pending request and return per-request + batch results.

        Args:
            functional: Execute on the simulated banks (bit-exact row data
                in DRAM) instead of the analytical path.  Results are
                identical either way; the functional path additionally
                verifies them against the banks' contents (subject to the
                ``verify_fraction`` sampling knob).
            release_ns: Dispatch instant of the batch (see
                :meth:`BatchExecutor.run`); defaults to the earliest
                instant a bank lane is free, so consecutive pipelined
                batches overlap across bank lanes.
        """
        requests, self._pending = self._pending, []
        return self.executor.run(requests, functional=functional, release_ns=release_ns)
