"""The batched bulk-operation scheduler.

:class:`BatchScheduler` accepts many concurrent requests — Ambit bulk
bitwise operations, BitWeaving predicate scans, RowClone bulk copies —
plans them across the device's banks, and executes them as one batch.

Three planning optimizations make batches cheap without changing what the
hardware is charged for:

* **Bank-level overlap** — requests whose rows live in disjoint banks
  proceed concurrently (the DDR command bus has ample headroom for AAP
  sequences), so the batch finishes in the makespan of a per-bank schedule
  rather than the sum of request latencies.  This is the *only* way a batch
  may be faster: per-request latency and total energy are identical to
  sequential execution, which the property tests pin down.
* **Operation fusion** — within a batch, the complement of a bit plane is
  materialized at most once and reused by every step that needs it (the
  NOT feeding an AND in the BitWeaving recurrence, the shared planes of a
  ``between``'s two half-scans), and control rows are initialized once per
  subarray across the whole batch.  Every fused operation is still charged
  at full cost; fusion only removes redundant simulation work and row
  traffic.
* **Allocation reuse** — intermediate vectors come from a small LRU pool
  (:class:`~repro.service.pool.VectorPool`), so a long request stream
  recycles a bounded set of DRAM rows instead of bleeding the allocator
  dry.

Functional execution goes through the engine's vectorized functional path
(every row chunk of an operation in one NumPy call); results are bit-exact
with one-at-a-time sequential execution on either path.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import BatchMetrics, combine_serial
from repro.database.bitweaving import BitWeavingColumn
from repro.rowclone.engine import RowCloneEngine
from repro.service.pool import VectorPool
from repro.service.requests import (
    BatchResult,
    BulkOpRequest,
    CopyRequest,
    RequestResult,
    ScanRequest,
    ServiceRequest,
)


@dataclass
class _BatchContext:
    """Per-execute() state: plane/complement caches and charged metrics."""

    functional: bool
    plane_vectors: Dict[Tuple[int, int, int], BulkBitVector] = field(default_factory=dict)
    not_vectors: Dict[Tuple[int, int, int], BulkBitVector] = field(default_factory=dict)
    fused_ops: int = 0


class BatchScheduler:
    """Plans and executes batches of bulk in-DRAM operations.

    Args:
        engine: Ambit engine to execute on.  When omitted, an engine with
            the vectorized functional path enabled is created.
        rowclone: RowClone engine for copy requests (created on the same
            device when omitted).
        pool_capacity: Size of the LRU pool of intermediate row allocations.
        fuse: Enable operation fusion (shared plane complements).  Fusion
            never changes results or charged costs; disabling it is only
            useful for A/B testing the planner.
    """

    def __init__(
        self,
        engine: Optional[AmbitEngine] = None,
        rowclone: Optional[RowCloneEngine] = None,
        pool_capacity: int = 16,
        fuse: bool = True,
    ) -> None:
        self.engine = engine or AmbitEngine(config=AmbitConfig(vectorized_functional=True))
        self.rowclone = rowclone or RowCloneEngine(
            self.engine.device, banks_parallel=self.engine.config.banks_parallel
        )
        self.pool = VectorPool(self.engine, capacity=pool_capacity)
        self.fuse = fuse
        self._pending: List[ServiceRequest] = []
        # Weakly keyed: a dead column must not pin its offset (or leak an
        # entry) — id() reuse would hand stale offsets to new columns.
        self._column_offsets: "weakref.WeakKeyDictionary[BitWeavingColumn, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._next_offset = 0
        self._bank_keys = [key for key, _ in self.engine.device.iter_banks()]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: ServiceRequest) -> int:
        """Queue a request; returns its index within the next batch."""
        if not isinstance(request, (BulkOpRequest, ScanRequest, CopyRequest)):
            raise TypeError(f"unknown request type {type(request).__name__}")
        self._pending.append(request)
        return len(self._pending) - 1

    def submit_bulk_op(
        self,
        op: str,
        a: BulkBitVector,
        b: Optional[BulkBitVector] = None,
        out: Optional[BulkBitVector] = None,
    ) -> int:
        """Queue ``out = op(a, b)``."""
        return self.submit(BulkOpRequest(op=op, a=a, b=b, out=out))

    def submit_scan(self, column: BitWeavingColumn, kind: str, *constants: int) -> int:
        """Queue a BitWeaving predicate scan."""
        return self.submit(ScanRequest(column=column, kind=kind, constants=constants))

    def submit_copy(self, num_bytes: int, mode=None, fill: bool = False) -> int:
        """Queue a RowClone bulk copy (or fill when ``fill`` is True)."""
        request = CopyRequest(num_bytes=num_bytes, fill=fill)
        if mode is not None:
            request.mode = mode
        return self.submit(request)

    @property
    def pending(self) -> int:
        """Requests queued for the next batch."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, functional: bool = False) -> BatchResult:
        """Run every pending request and return per-request + batch results.

        Args:
            functional: Execute on the simulated banks (bit-exact row data
                in DRAM) instead of the analytical path.  Results are
                identical either way; the functional path additionally
                verifies them against the banks' contents.
        """
        requests, self._pending = self._pending, []
        context = _BatchContext(functional=functional)
        results: List[RequestResult] = []
        for request in requests:
            if isinstance(request, BulkOpRequest):
                results.append(self._run_bulk_op(request, functional))
            elif isinstance(request, ScanRequest):
                results.append(self._run_scan(request, context))
            else:
                results.append(self._run_copy(request))
        self._release_context(context)

        makespan = self._schedule(results)
        serial = combine_serial("batch_serial", (r.metrics for r in results))
        metrics = BatchMetrics(
            name="service_batch",
            requests=len(results),
            latency_ns=makespan,
            serial_latency_ns=serial.latency_ns,
            energy_j=serial.energy_j,
            bytes_produced=serial.bytes_produced,
            per_request=[r.metrics for r in results],
            notes=f"{context.fused_ops} fused ops" if context.fused_ops else "",
        )
        return BatchResult(results=results, metrics=metrics)

    # ------------------------------------------------------------------
    # Per-request execution
    # ------------------------------------------------------------------
    def _run_bulk_op(self, request: BulkOpRequest, functional: bool) -> RequestResult:
        out, metrics = self.engine.execute(
            request.op, request.a, request.b, out=request.out, functional=functional
        )
        bank_ids = self._request_banks(request.a, request.a.num_rows)
        return RequestResult(request=request, metrics=metrics, value=out, bank_ids=bank_ids)

    def _run_copy(self, request: CopyRequest) -> RequestResult:
        if request.fill:
            metrics = self.rowclone.bulk_fill(request.num_bytes)
        else:
            metrics = self.rowclone.bulk_copy(request.num_bytes, request.mode)
        rows = max(1, -(-request.num_bytes // self.engine.device.geometry.row_size_bytes))
        bank_ids = self._modeled_banks(rows, self._rotate_offset(rows))
        return RequestResult(request=request, metrics=metrics, value=None, bank_ids=bank_ids)

    def _run_scan(self, request: ScanRequest, context: _BatchContext) -> RequestResult:
        column = request.column
        expected, plan = column.scan(request.kind, *request.constants)
        rows = max(
            1, -(-len(expected) // self.engine.device.geometry.row_size_bytes)
        )
        per_op = [
            self.engine.op_cost(op, rows, (column.num_rows + 7) // 8)
            for op in plan.sequence
        ]
        metrics = combine_serial(f"ambit_scan_{request.kind}", per_op)
        metrics.bytes_produced = len(expected)
        metrics.notes = f"{plan.total_operations} bulk ops over {plan.planes_touched} planes"

        if context.functional:
            produced = self._functional_scan(request, context)
            if not np.array_equal(produced, expected):
                raise AssertionError(
                    f"functional {request.kind} scan diverged from the analytical result"
                )
            value = produced
        else:
            value = expected
        bank_ids = self._modeled_banks(rows, self._column_offset(column))
        return RequestResult(request=request, metrics=metrics, value=value, bank_ids=bank_ids)

    # ------------------------------------------------------------------
    # Functional BitWeaving execution (fused)
    # ------------------------------------------------------------------
    def _functional_scan(self, request: ScanRequest, context: _BatchContext) -> np.ndarray:
        column = request.column
        offset = self._column_offset(column)
        if request.kind == "equal":
            result = self._functional_equal(column, request.constants[0], context, offset)
        elif request.kind == "between":
            low, high = request.constants
            below_low = self._functional_compare(column, low, False, context, offset)
            at_most_high = self._functional_compare(column, high, True, context, offset)
            not_low = self._vec_op(context, "not", below_low, None, offset)
            self._release(below_low, offset)
            result = self._vec_op(context, "and", at_most_high, not_low, offset)
            self._release(at_most_high, offset)
            self._release(not_low, offset)
        else:
            include_equal = request.kind == "less_equal"
            result = self._functional_compare(
                column, request.constants[0], include_equal, context, offset
            )
        packed = result.data[: (column.num_rows + 7) // 8].copy()
        self._release(result, offset)
        return packed

    def _functional_compare(
        self,
        column: BitWeavingColumn,
        constant: int,
        include_equal: bool,
        context: _BatchContext,
        offset: int,
    ) -> BulkBitVector:
        lt = self._acquire(column.num_rows, offset).fill_value(0)
        eq = self._acquire(column.num_rows, offset).fill_value(1)
        for bit in reversed(range(column.num_bits)):
            if (constant >> bit) & 1:
                plane = self._plane_vector(column, bit, context, offset)
                not_plane = self._not_plane(column, bit, context, offset)
                partial = self._vec_op(context, "and", eq, not_plane, offset)
                self._done_with_not(not_plane, offset)
                lt_next = self._vec_op(context, "or", lt, partial, offset)
                self._release(lt, offset)
                self._release(partial, offset)
                lt = lt_next
                eq_next = self._vec_op(context, "and", eq, plane, offset)
                self._release(eq, offset)
                eq = eq_next
            else:
                not_plane = self._not_plane(column, bit, context, offset)
                eq_next = self._vec_op(context, "and", eq, not_plane, offset)
                self._done_with_not(not_plane, offset)
                self._release(eq, offset)
                eq = eq_next
        if include_equal:
            result = self._vec_op(context, "or", lt, eq, offset)
            self._release(lt, offset)
            self._release(eq, offset)
            return result
        self._release(eq, offset)
        return lt

    def _functional_equal(
        self, column: BitWeavingColumn, constant: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        eq = self._acquire(column.num_rows, offset).fill_value(1)
        for bit in reversed(range(column.num_bits)):
            complemented = not (constant >> bit) & 1
            if complemented:
                operand = self._not_plane(column, bit, context, offset)
            else:
                operand = self._plane_vector(column, bit, context, offset)
            eq_next = self._vec_op(context, "and", eq, operand, offset)
            if complemented:
                self._done_with_not(operand, offset)
            self._release(eq, offset)
            eq = eq_next
        return eq

    def _vec_op(
        self,
        context: _BatchContext,
        op: str,
        a: BulkBitVector,
        b: Optional[BulkBitVector],
        offset: int,
    ) -> BulkBitVector:
        out = self._acquire(a.num_bits, offset)
        _, _metrics = self.engine.execute(op, a, b, out=out, functional=True)
        return out

    def _plane_vector(
        self, column: BitWeavingColumn, bit: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        key = (id(column), bit, offset)
        vector = context.plane_vectors.get(key)
        if vector is None:
            vector = self._acquire(column.num_rows, offset)
            plane = column.planes[bit]
            vector.data[:] = 0
            vector.data[: plane.size] = plane
            context.plane_vectors[key] = vector
        return vector

    def _not_plane(
        self, column: BitWeavingColumn, bit: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        """The complement of a bit plane, materialized at most once per batch.

        The first use executes a real NOT on the engine; later uses reuse
        the cached complement row data (a fused NOT).  The *caller* charges
        every NOT at full cost through the scan plan regardless, so fusion
        never changes attributed latency or energy.
        """
        key = (id(column), bit, offset)
        vector = context.not_vectors.get(key) if self.fuse else None
        if vector is None:
            plane = self._plane_vector(column, bit, context, offset)
            vector = self._vec_op(context, "not", plane, None, offset)
            if self.fuse:
                context.not_vectors[key] = vector
        else:
            context.fused_ops += 1
        return vector

    def _done_with_not(self, vector: BulkBitVector, offset: int) -> None:
        """Release an unfused complement right after its single use.

        Fused complements stay cached in the batch context for reuse and
        are released when the batch completes.
        """
        if not self.fuse:
            self._release(vector, offset)

    def _release_context(self, context: _BatchContext) -> None:
        for key, vector in context.plane_vectors.items():
            self.pool.release(vector, bank_offset=key[2])
        for key, vector in context.not_vectors.items():
            self.pool.release(vector, bank_offset=key[2])
        context.plane_vectors.clear()
        context.not_vectors.clear()

    def _acquire(self, num_bits: int, offset: int) -> BulkBitVector:
        return self.pool.acquire(num_bits, bank_offset=offset)

    def _release(self, vector: BulkBitVector, offset: int) -> None:
        self.pool.release(vector, bank_offset=offset)

    # ------------------------------------------------------------------
    # Bank assignment and makespan scheduling
    # ------------------------------------------------------------------
    def _column_offset(self, column: BitWeavingColumn) -> int:
        """Stable bank offset per column: a column's planes live in fixed
        banks, so every scan of it contends for the same banks."""
        offset = self._column_offsets.get(column)
        if offset is None:
            offset = self._next_offset
            self._next_offset = (self._next_offset + 1) % self._banks_available()
            self._column_offsets[column] = offset
        return offset

    def _rotate_offset(self, rows: int) -> int:
        offset = self._next_offset
        self._next_offset = (self._next_offset + max(1, rows)) % self._banks_available()
        return offset

    def _banks_available(self) -> int:
        return min(self.engine.config.banks_parallel, self.engine.allocator.banks_total)

    def _modeled_banks(self, rows: int, offset: int) -> List:
        """Bank keys a request of ``rows`` chunks occupies from ``offset``.

        Uses the same id space as real placements (the device's bank keys)
        so modeled and placed requests contend for the same banks.
        """
        available = self._banks_available()
        return [self._bank_keys[(offset + i) % available] for i in range(min(rows, available))]

    def _request_banks(self, vector: BulkBitVector, rows: int) -> List:
        if vector.allocation is not None and vector.allocation.placements:
            return sorted({p.bank_key for p in vector.allocation.placements})
        return self._modeled_banks(rows, self._rotate_offset(rows))

    def _schedule(self, results: List[RequestResult]) -> float:
        """Greedy per-bank list schedule; returns the batch makespan.

        Each request occupies its banks for its full sequential latency; a
        request starts once all of its banks are free.  Requests on
        disjoint banks therefore overlap completely, while requests
        contending for a bank serialize — exactly the paper's bank-level
        parallelism and nothing more.
        """
        load: Dict = {}
        makespan = 0.0
        for result in results:
            banks = result.bank_ids or [0]
            start = max(load.get(bank, 0.0) for bank in banks)
            result.start_ns = start
            finish = start + result.metrics.latency_ns
            for bank in banks:
                load[bank] = finish
            makespan = max(makespan, finish)
        return makespan
