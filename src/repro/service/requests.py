"""Request and result types of the bulk-operation service layer.

A request describes one unit of client work — an Ambit bulk bitwise
operation, a BitWeaving predicate scan, a RowClone bulk copy, or a
high-level bitmap-index conjunction — without saying anything about *when*
or *where* it runs.  The pipeline stages consume these types in order:

* the :class:`~repro.service.frontend.ServiceFrontend` wraps each request
  in a :class:`QueuedRequest` envelope carrying its arrival time, priority
  and deadline;
* the :class:`~repro.service.planner.BatchPlanner` *lowers* high-level
  requests (:class:`BitmapConjunctionRequest`) into the primitive kinds;
* the :class:`~repro.service.executor.BatchExecutor` runs primitives and
  returns one :class:`RequestResult` per request plus batch aggregates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.analysis.metrics import BatchMetrics, OperationMetrics
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn, ScanPlan
from repro.rowclone.engine import CopyMode

#: Predicate kinds a ScanRequest understands (dispatched to
#: :meth:`BitWeavingColumn.scan`).
SCAN_KINDS = ("less_than", "less_equal", "equal", "between")


@dataclass
class BulkOpRequest:
    """One Ambit bulk bitwise operation: ``out = op(a, b)``.

    Attributes:
        op: One of ``not, and, or, nand, nor, xor, xnor``.
        a: First operand.
        b: Second operand (binary ops only).
        out: Optional pre-allocated destination.
    """

    op: str
    a: BulkBitVector
    b: Optional[BulkBitVector] = None
    out: Optional[BulkBitVector] = None
    #: Optional bank-placement hint for host-only operands: requests with
    #: the same hint contend for the same modeled banks (the planner pins
    #: every lowered step of one conjunction to one hint so data-dependent
    #: steps never overlap in the schedule).
    bank_offset: Optional[int] = None
    #: Batch-local indices of the primitives that produce this request's
    #: operands.  When any request of a batch carries dependencies the
    #: executor schedules in submission order and lifts each request's
    #: release to its producers' finish times, so optimizer-built DAGs
    #: (shared sub-chains consumed from other lanes) stay causally
    #: ordered even when the operands live on different bank lanes.
    after: Tuple[int, ...] = ()


@dataclass
class ScanRequest:
    """One BitWeaving predicate scan over a vertical column.

    Attributes:
        column: The BitWeaving/V column to scan.
        kind: Predicate kind (see :data:`SCAN_KINDS`).
        constants: One constant, or (low, high) for ``between``.
    """

    column: BitWeavingColumn
    kind: str
    constants: tuple
    _scan_cache: Optional[Tuple[np.ndarray, ScanPlan]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.kind not in SCAN_KINDS:
            raise ValueError(f"unknown scan kind {self.kind!r}")
        expected = 2 if self.kind == "between" else 1
        if len(self.constants) != expected:
            raise ValueError(
                f"{self.kind} takes {expected} constant(s), got {len(self.constants)}"
            )

    def scan_result(self) -> Tuple[np.ndarray, ScanPlan]:
        """(packed expected bits, plan) — evaluated once and cached so the
        planner's latency model and the executor share one evaluation."""
        if self._scan_cache is None:
            self._scan_cache = self.column.scan(self.kind, *self.constants)
        return self._scan_cache


@dataclass
class CopyRequest:
    """One RowClone bulk copy/initialization.

    Attributes:
        num_bytes: Bytes to copy (or fill when ``fill`` is True).
        mode: RowClone mechanism to use.
        fill: Zero-initialize instead of copying.
    """

    num_bytes: int
    mode: CopyMode = CopyMode.FPM
    fill: bool = False


#: Primitive request kinds the executor runs directly.
ServiceRequest = Union[BulkOpRequest, ScanRequest, CopyRequest]


@dataclass
class BitmapConjunctionRequest:
    """One bitmap-index conjunction: ``AND`` of per-column ``IN`` predicates.

    This is a *high-level* request: the executor does not understand it.
    The :class:`~repro.service.planner.BatchPlanner` lowers it — via
    :meth:`BitmapIndex.lower_conjunction` — into a chain of primitive
    :class:`BulkOpRequest` steps (the OR of each predicate's value bitmaps,
    then the AND across predicates), pinned to one bank-offset hint so the
    data-dependent chain serializes on its banks.

    Attributes:
        index: The bitmap index holding the per-value bitmaps.
        predicates: (column, values) pairs; each contributes an ``IN``.
    """

    index: BitmapIndex
    predicates: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("predicates must not be empty")
        self.predicates = tuple(
            (column, tuple(values)) for column, values in self.predicates
        )
        for column, values in self.predicates:
            if not values:
                raise ValueError(f"predicate on {column!r} has no values")


#: Everything the frontend accepts (primitives plus high-level requests).
FrontendRequest = Union[ServiceRequest, BitmapConjunctionRequest]


@dataclass
class QueuedRequest:
    """Envelope of one request inside the frontend's admission queue.

    Carries the arrival-side attributes (arrival time, priority, deadline)
    and, after service, the outcome (start/finish times, value, metrics).
    Times are absolute nanoseconds on the frontend's virtual clock.

    Attributes:
        request: The wrapped request (primitive or high-level).
        arrival_ns: When the request was offered to the frontend.
        priority: Larger values are served first (default 0).
        deadline_ns: Absolute completion deadline, or None.
        seq: Admission sequence number (FIFO tiebreak within a priority).
        admitted: False when admission control rejected the request.
        rejected_reason: Why admission control refused it ("" if admitted).
        batch_index: Which batch served the request (-1 before service).
        start_ns: When the request started on its banks.
        finish_ns: When its last bank finished.
        value: Result payload (see :attr:`RequestResult.value`); for a
            lowered conjunction, the packed result bitmap.
        metrics: Sequential-execution cost of the request (for a lowered
            request, the serial combination of its primitive steps).
    """

    request: FrontendRequest
    arrival_ns: float = 0.0
    priority: int = 0
    deadline_ns: Optional[float] = None
    seq: int = 0
    admitted: bool = True
    rejected_reason: str = ""
    #: Modeled sequential service latency (filled at admission; drives the
    #: planner's deadline urgency and the frontend's backlog accounting).
    modeled_ns: float = 0.0
    #: Bank keys the request is modeled to occupy (filled at admission;
    #: empty = unpinned, spread evenly).  Drives the frontend's per-bank
    #: backlog vector.
    modeled_banks: List = field(default_factory=list)
    batch_index: int = -1
    start_ns: float = math.nan
    finish_ns: float = math.nan
    value: Any = None
    metrics: Optional[OperationMetrics] = None
    #: Host-side merge cost charged into ``finish_ns`` when the optimizer
    #: split the request's sub-chains across lanes (same merge-tree model
    #: as the cluster gather path; 0.0 when unsplit).
    host_merge_ns: float = 0.0
    #: Device ops this request did not have to run because the batch plan
    #: optimizer shared or restructured its chain (0 when unoptimized).
    ops_eliminated: int = 0
    #: Sub-chains of this request served from another request's (or an
    #: earlier duplicate's) lowered output instead of being re-lowered.
    shared_subchains: int = 0
    #: Sub-chains (or whole conjunctions) this request served from the
    #: cross-batch result cache instead of re-running bank work.
    cache_hits: int = 0
    #: Cache lookups of this request that missed (0 with caching off).
    cache_misses: int = 0
    #: Cached bitmaps a write request invalidated (write requests only).
    cache_invalidations: int = 0
    #: Root :class:`repro.obs.Span` of this request's lifecycle — set by
    #: the frontend only when its observability plane is recording
    #: (``observe=True``); None under the default no-op plane.
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        """True once the request has been served."""
        return self.admitted and not math.isnan(self.finish_ns)

    @property
    def wait_ns(self) -> float:
        """Admission to service start (NaN before service)."""
        return self.start_ns - self.arrival_ns

    @property
    def sojourn_ns(self) -> float:
        """Admission to completion (NaN before service)."""
        return self.finish_ns - self.arrival_ns

    @property
    def deadline_missed(self) -> bool:
        """True when the request completed after its deadline."""
        return (
            self.deadline_ns is not None
            and self.completed
            and self.finish_ns > self.deadline_ns + 1e-9
        )

    def sort_key(self) -> Tuple[float, float, int]:
        """Queue order: priority first, then earliest deadline, then FIFO."""
        deadline = self.deadline_ns if self.deadline_ns is not None else math.inf
        return (-self.priority, deadline, self.seq)


@dataclass
class RequestResult:
    """Outcome of one request within a batch.

    Attributes:
        request: The request that produced this result.
        metrics: Latency/energy of the request executed on its own (the
            sequential-execution cost; batching never changes it).
        value: The result payload — the output vector of a bulk op, the
            packed result bits of a scan, or None for a copy.
        start_ns: When the schedule started the request, absolute against
            the batch's dispatch clock (``release_ns``; 0 for a directly
            executed batch).
        bank_ids: Identities of the banks the request occupied (real
            placement keys for placed vectors, modeled slots otherwise;
            empty for host-only work, which rides the dedicated host
            lane).
    """

    request: ServiceRequest
    metrics: OperationMetrics
    value: Optional[Union[BulkBitVector, np.ndarray]] = None
    start_ns: float = 0.0
    bank_ids: List = field(default_factory=list)

    @property
    def banks(self) -> int:
        """How many banks the request occupied."""
        return max(1, len(self.bank_ids))


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchScheduler.execute` call.

    Attributes:
        results: One entry per request, in submission order.
        metrics: Aggregated batch metrics (overlapped and serial latency,
            total energy, total bytes).
    """

    results: List[RequestResult] = field(default_factory=list)
    metrics: Optional[BatchMetrics] = None

    def __len__(self) -> int:
        return len(self.results)

    def values(self) -> List[Optional[Union[BulkBitVector, np.ndarray]]]:
        """The result payloads in submission order."""
        return [r.value for r in self.results]
