"""Request and result types of the bulk-operation service layer.

A request describes one unit of client work — an Ambit bulk bitwise
operation, a BitWeaving predicate scan, or a RowClone bulk copy — without
saying anything about *when* or *where* it runs.  The
:class:`~repro.service.scheduler.BatchScheduler` collects many requests,
plans them across banks, and returns one :class:`RequestResult` per request
plus batch-level aggregate metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.analysis.metrics import BatchMetrics, OperationMetrics
from repro.database.bitweaving import BitWeavingColumn
from repro.rowclone.engine import CopyMode

#: Predicate kinds a ScanRequest understands (dispatched to
#: :meth:`BitWeavingColumn.scan`).
SCAN_KINDS = ("less_than", "less_equal", "equal", "between")


@dataclass
class BulkOpRequest:
    """One Ambit bulk bitwise operation: ``out = op(a, b)``.

    Attributes:
        op: One of ``not, and, or, nand, nor, xor, xnor``.
        a: First operand.
        b: Second operand (binary ops only).
        out: Optional pre-allocated destination.
    """

    op: str
    a: BulkBitVector
    b: Optional[BulkBitVector] = None
    out: Optional[BulkBitVector] = None


@dataclass
class ScanRequest:
    """One BitWeaving predicate scan over a vertical column.

    Attributes:
        column: The BitWeaving/V column to scan.
        kind: Predicate kind (see :data:`SCAN_KINDS`).
        constants: One constant, or (low, high) for ``between``.
    """

    column: BitWeavingColumn
    kind: str
    constants: tuple

    def __post_init__(self) -> None:
        if self.kind not in SCAN_KINDS:
            raise ValueError(f"unknown scan kind {self.kind!r}")
        expected = 2 if self.kind == "between" else 1
        if len(self.constants) != expected:
            raise ValueError(
                f"{self.kind} takes {expected} constant(s), got {len(self.constants)}"
            )


@dataclass
class CopyRequest:
    """One RowClone bulk copy/initialization.

    Attributes:
        num_bytes: Bytes to copy (or fill when ``fill`` is True).
        mode: RowClone mechanism to use.
        fill: Zero-initialize instead of copying.
    """

    num_bytes: int
    mode: CopyMode = CopyMode.FPM
    fill: bool = False


ServiceRequest = Union[BulkOpRequest, ScanRequest, CopyRequest]


@dataclass
class RequestResult:
    """Outcome of one request within a batch.

    Attributes:
        request: The request that produced this result.
        metrics: Latency/energy of the request executed on its own (the
            sequential-execution cost; batching never changes it).
        value: The result payload — the output vector of a bulk op, the
            packed result bits of a scan, or None for a copy.
        start_ns: When the scheduler started the request within the batch.
        bank_ids: Identities of the banks the request occupied (real
            placement keys for placed vectors, modeled slots otherwise).
    """

    request: ServiceRequest
    metrics: OperationMetrics
    value: Optional[Union[BulkBitVector, np.ndarray]] = None
    start_ns: float = 0.0
    bank_ids: List = field(default_factory=list)

    @property
    def banks(self) -> int:
        """How many banks the request occupied."""
        return max(1, len(self.bank_ids))


@dataclass
class BatchResult:
    """Outcome of one :meth:`BatchScheduler.execute` call.

    Attributes:
        results: One entry per request, in submission order.
        metrics: Aggregated batch metrics (overlapped and serial latency,
            total energy, total bytes).
    """

    results: List[RequestResult] = field(default_factory=list)
    metrics: Optional[BatchMetrics] = None

    def __len__(self) -> int:
        return len(self.results)

    def values(self) -> List[Optional[Union[BulkBitVector, np.ndarray]]]:
        """The result payloads in submission order."""
        return [r.value for r in self.results]
