"""The batch planner: shapes batches and lowers high-level work.

:class:`BatchPlanner` is the second stage of the service pipeline
(frontend → planner → executor).  It owns two decisions:

* **When a batch closes.**  :meth:`BatchPlanner.should_close` applies the
  :class:`BatchPolicy`: close when enough requests are queued (size), when
  the oldest admitted request has waited long enough (time window), or
  when a queued deadline would be missed unless service starts now
  (deadline urgency).
* **What the executor sees.**  :meth:`BatchPlanner.lower_batch` turns the
  queued envelopes into primitive requests the executor understands.
  Primitives pass through unchanged; high-level requests are *lowered* —
  a :class:`~repro.service.requests.BitmapConjunctionRequest` becomes the
  OR/AND chain of :class:`~repro.service.requests.BulkOpRequest` steps
  produced by :meth:`BitmapIndex.lower_conjunction`, pinned to one bank
  offset so the data-dependent chain serializes on its banks.

The executor orders the lowered batch longest-first (LPT) before bank
assignment; the planner deliberately leaves intra-batch ordering to it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional, Tuple, Union

from repro.analysis.metrics import OperationMetrics, combine_serial
from repro.service.executor import BatchExecutor
from repro.service.requests import (
    BitmapConjunctionRequest,
    BulkOpRequest,
    CopyRequest,
    FrontendRequest,
    QueuedRequest,
    RequestResult,
    ScanRequest,
    ServiceRequest,
)
from repro.storage.maintenance import MaintenancePolicy, WriteOutcome, resolve_maintenance
from repro.storage.requests import is_write_request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.result_cache import ResultCache
    from repro.optimizer.passes import BatchOptimizer, OptimizerConfig


@dataclass
class BatchPolicy:
    """When the planner closes the next batch.

    Attributes:
        max_batch: Close as soon as this many requests are queued (also the
            hard cap on batch size).
        window_ns: Close when the oldest queued request has waited this
            long, even if the batch is not full.  None disables the window
            (the frontend still closes on stream end).
        urgency_slack_ns: Close when a queued request's deadline minus its
            modeled service latency is within this slack of the current
            time — the last moment service can start without missing it.
            None disables urgency-driven closing.
        horizon_urgency: Price urgency from the *lanes' busy horizons*
            rather than from "now": under deep pipelining a request's
            service cannot start before its modeled banks drain, so a
            deadline that looks comfortable from the current clock may
            already be at risk.  Fires only inside the savable window —
            when the banks' horizon lands within ``urgency_slack_ns``
            below the latest viable start — so it never degenerates into
            closing every batch early under overload.
    """

    max_batch: int = 32
    window_ns: Optional[float] = None
    urgency_slack_ns: Optional[float] = 0.0
    horizon_urgency: bool = True

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")


@dataclass
class LoweredGroup:
    """Bookkeeping of one queued request lowered into primitive steps.

    Attributes:
        queued: The envelope the group came from.
        indices: Positions of the group's primitives in the lowered batch
            (empty for a zero-operation request, e.g. a single-bitmap
            conjunction).
        finalize: Maps the group's :class:`RequestResult` list to the
            envelope's result value.
        zero_cost_metrics: Metrics to attribute when ``indices`` is empty.
        dep_indices: Positions of *other* requests' primitives this group
            consumes (CSE'd sub-chains); they bound the group's finish
            time but are never charged to it.
        host_merge_ns: Host-side merge-tree cost added to the group's
            finish time (split-mode cross-predicate join).
        host_join_ops: Host AND ops the split-mode join performs.
        ops_eliminated: Device ops the optimizer removed from this
            request's unoptimized plan total.
        shared_subchains: Sub-chains this request consumed from (or
            shared with) another request of the batch.
        cache_hits: Sub-chains (or whole conjunctions) served from the
            cross-batch result cache.
        cache_misses: Result-cache lookups that missed.
        cache_invalidations: Cached bitmaps this (write) request dropped.
        write_outcome: The maintenance outcome of a lowered write request
            (strategy attribution, charged planes; None for reads).
        rebuild_columns: Lazily-maintained columns this read repaired
            (their rebuild charge rides in ``indices``).
    """

    queued: QueuedRequest
    indices: List[int]
    finalize: Callable[[List[RequestResult]], Any]
    zero_cost_metrics: Optional[OperationMetrics] = None
    dep_indices: List[int] = field(default_factory=list)
    host_merge_ns: float = 0.0
    host_join_ops: int = 0
    ops_eliminated: int = 0
    shared_subchains: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    write_outcome: Optional[WriteOutcome] = None
    rebuild_columns: Tuple[str, ...] = ()


class BatchPlanner:
    """Shapes batches by policy and lowers high-level requests.

    Args:
        executor: The executor the plans target (its latency model drives
            LPT ordering, deadline urgency, and admission backlog).
        policy: Batch-closing policy (defaults to size-32, urgency on).
        optimize: Enable the batch plan optimizer: ``True`` for the
            default :class:`~repro.optimizer.OptimizerConfig` (CSE and
            sub-chain splitting on), or an explicit config.  ``False``
            (the default) lowers every conjunction in isolation, exactly
            as before the optimizer existed.
        maintenance: :class:`~repro.storage.MaintenancePolicy` (or a
            strategy name) governing how writes keep the bitmap planes
            consistent.  Defaults to eager — always-consistent planes.
        result_cache: Cross-batch :class:`~repro.cache.ResultCache` the
            optimizer consults and fills, and writes invalidate through
            this planner.  Requires the optimizer (the consult pass
            lives there); the frontend turns it on when a cache is set.
    """

    def __init__(
        self,
        executor: BatchExecutor,
        policy: Optional[BatchPolicy] = None,
        optimize: Union[bool, "OptimizerConfig"] = False,
        maintenance: Union[None, str, MaintenancePolicy] = None,
        result_cache: Optional["ResultCache"] = None,
    ) -> None:
        self.executor = executor
        self.policy = policy or BatchPolicy()
        self.maintenance = resolve_maintenance(maintenance)
        self.result_cache = result_cache
        self.optimizer: Optional["BatchOptimizer"] = None
        if optimize or result_cache is not None:
            from repro.optimizer.passes import (  # local: avoid cycle
                BatchOptimizer,
                OptimizerConfig,
            )

            if isinstance(optimize, OptimizerConfig):
                config = optimize
            elif result_cache is not None and not optimize:
                # Cache-driven auto-enable: unsplit lowering, so whole
                # conjunctions are cacheable under one canonical key.
                config = OptimizerConfig(split_subchains=False)
            else:
                config = None
            self.optimizer = BatchOptimizer(config, result_cache=result_cache)
        #: High-level requests lowered across the planner's lifetime.
        self.lowered_requests = 0

    # ------------------------------------------------------------------
    # Latency model (includes high-level requests)
    # ------------------------------------------------------------------
    def modeled_latency_ns(self, request: FrontendRequest) -> float:
        """Sequential-execution latency of any frontend request."""
        if isinstance(request, BitmapConjunctionRequest):
            return self._conjunction_latency_ns(request)
        if is_write_request(request):
            return self.maintenance.modeled_write_ns(request, self.executor)
        return self.executor.modeled_latency_ns(request)

    def _conjunction_latency_ns(self, request: BitmapConjunctionRequest) -> float:
        engine = self.executor.engine
        ops = sum(len(values) - 1 for _, values in request.predicates)
        ands = len(request.predicates) - 1
        rows = self._conjunction_rows(request)
        return (
            ops * engine.op_cost("or", rows).latency_ns
            + ands * engine.op_cost("and", rows).latency_ns
        )

    def _conjunction_rows(self, request: BitmapConjunctionRequest) -> int:
        vector_bytes = (request.index.num_rows + 7) // 8
        row_size = self.executor.engine.device.geometry.row_size_bytes
        return max(1, -(-vector_bytes // row_size))

    def modeled_banks(self, request: FrontendRequest) -> List:
        """Bank keys any frontend request is modeled to occupy.

        A lowered conjunction's whole chain is pinned to its index's stable
        offset, so the chain charges the same banks it will serialize on.
        Under the optimizer's sub-chain splitting the chain fans out over
        offsets chosen at lowering time, so conjunctions are unpinned
        (empty list) — the frontend falls back to global backlog.
        """
        if isinstance(request, BitmapConjunctionRequest):
            if self.optimizer is not None and self.optimizer.config.split_subchains:
                return []
            return self.executor.span_banks(
                self._conjunction_rows(request), self.executor.stable_offset(request.index)
            )
        if is_write_request(request):
            return self.maintenance.modeled_write_banks(request, self.executor)
        return self.executor.modeled_banks(request)

    # ------------------------------------------------------------------
    # Batch closing
    # ------------------------------------------------------------------
    def should_close(self, queued: List[QueuedRequest], now_ns: float) -> bool:
        """Does the policy call for closing a batch right now?"""
        if not queued:
            return False
        if len(queued) >= self.policy.max_batch:
            return True
        if self.policy.window_ns is not None:
            oldest = min(q.arrival_ns for q in queued)
            if now_ns - oldest >= self.policy.window_ns:
                return True
        if self.policy.urgency_slack_ns is not None:
            for q in queued:
                if q.deadline_ns is None:
                    continue
                latest_start = q.deadline_ns - q.modeled_ns
                if latest_start <= now_ns + self.policy.urgency_slack_ns:
                    return True
        if self.urgent_close(queued, now_ns):
            return True
        return False

    def _lane_pressure_ns(self, q: QueuedRequest, now_ns: float) -> float:
        """Earliest instant the lanes could start serving ``q``.

        The latest busy horizon over the request's modeled banks (its
        service cannot start before its pinned banks drain), or the
        executor's global ready instant when the request is unpinned.
        Never before "now"; always "now" for a barrier executor, whose
        lanes carry no state across batches.
        """
        banks = q.modeled_banks
        if banks:
            pressure = max(self.executor.lane_horizon_ns(key) for key in banks)
        else:
            pressure = self.executor.ready_ns()
        return max(now_ns, pressure)

    def urgent_close(self, queued: List[QueuedRequest], now_ns: float) -> bool:
        """Is some queued deadline at risk *given the lanes' horizons*?

        Prices the latest viable service start against where the
        request's banks are actually busy until, not against "now": true
        exactly when a deadline is still savable but will be missed
        unless the batch closes and dispatches immediately (the banks'
        pressure has entered the ``urgency_slack_ns`` window below the
        latest viable start).  The frontend treats such a close as
        *urgent* — it bypasses the pipelined dispatch gate so the
        endangered request reaches its lane without queueing behind a
        whole extra batch.
        """
        if not self.policy.horizon_urgency or self.policy.urgency_slack_ns is None:
            return False
        slack = self.policy.urgency_slack_ns
        for q in queued:
            if q.deadline_ns is None:
                continue
            latest_start = q.deadline_ns - q.modeled_ns
            pressure = self._lane_pressure_ns(q, now_ns)
            if latest_start - slack <= pressure <= latest_start:
                return True
        return False

    def next_close_ns(self, queued: List[QueuedRequest], now_ns: float) -> float:
        """Earliest future instant the policy will close a batch (inf if
        only size or stream end can close it).  The frontend's virtual
        clock wakes here when no arrival comes sooner."""
        next_close = math.inf
        if not queued:
            return next_close
        if self.policy.window_ns is not None:
            oldest = min(q.arrival_ns for q in queued)
            next_close = min(next_close, oldest + self.policy.window_ns)
        if self.policy.urgency_slack_ns is not None:
            for q in queued:
                if q.deadline_ns is None:
                    continue
                next_close = min(
                    next_close,
                    q.deadline_ns - q.modeled_ns - self.policy.urgency_slack_ns,
                )
        return next_close

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------
    def lower_batch(
        self, batch: List[QueuedRequest]
    ) -> Tuple[List[ServiceRequest], List[LoweredGroup]]:
        """Lower a closed batch into primitives plus result bookkeeping.

        With the optimizer enabled, every conjunction of the batch lowers
        into one shared step DAG (cross-request CSE, sub-chain
        splitting); under ``sanitize=True`` the DAG is certified by
        :func:`repro.verify.plan_lint.lint_optimized_batch` before the
        executor sees a single step.
        """
        primitives: List[ServiceRequest] = []
        groups: List[LoweredGroup] = []
        if self.optimizer is not None:
            self.optimizer.open_batch(self.executor)
        for queued in batch:
            request = queued.request
            if isinstance(request, BitmapConjunctionRequest):
                # Hotness + lazy-repair bookkeeping must precede the
                # lowering: pulling the bitmaps cleans dirty columns as a
                # side effect, so the rebuild charge is decided first.
                columns = [column for column, _values in request.predicates]
                self.maintenance.note_read(columns)
                pending = self.maintenance.pending_rebuilds(request.index, columns)
                if self.optimizer is not None:
                    self.lowered_requests += 1
                    group = self.optimizer.lower_conjunction(queued, primitives)
                else:
                    group = self._lower_conjunction(queued, primitives)
                if pending:
                    self._charge_rebuilds(group, pending, primitives)
                groups.append(group)
            elif is_write_request(request):
                self.lowered_requests += 1
                groups.append(self._lower_write(queued, primitives))
            elif isinstance(request, (BulkOpRequest, ScanRequest, CopyRequest)):
                primitives.append(request)
                groups.append(
                    LoweredGroup(
                        queued=queued,
                        indices=[len(primitives) - 1],
                        finalize=lambda results: results[0].value,
                    )
                )
            else:
                raise TypeError(f"unknown request type {type(request).__name__}")
        if self.optimizer is not None and getattr(self.executor, "sanitize", False):
            self.optimizer.lint_batch(
                row_size_bytes=self.executor.engine.device.geometry.row_size_bytes
            )
        return primitives, groups

    def commit_cache_fills(self) -> int:
        """Park the executed batch's finished bitmaps in the result cache
        (no-op without one).  The frontend calls this *after* the
        executor ran the batch — the step vectors hold result data only
        post-execution."""
        if self.optimizer is None:
            return 0
        return self.optimizer.commit_fills()

    def _charge_rebuilds(
        self, group: LoweredGroup, columns: List[str], primitives: List[ServiceRequest]
    ) -> None:
        """Charge lazily-deferred column rebuilds into the reading group.

        The read that repaired a dirty column pays for the repair: one
        bulk op per rebuilt plane plus the column-scan traffic, appended
        to the group's own primitives (they execute on the index's lanes
        and extend the group's finish time).  The optimizer's batch lint
        never sees these — they are charge accounting, not DAG steps.
        """
        for column in columns:
            for primitive in self.maintenance.rebuild_charge(
                group.queued.request.index, column, self.executor
            ):
                primitives.append(primitive)
                group.indices.append(len(primitives) - 1)
        group.rebuild_columns = tuple(columns)

    def _lower_write(
        self, queued: QueuedRequest, primitives: List[ServiceRequest]
    ) -> LoweredGroup:
        """Lower one write: apply the mutation *now* (lowering runs in
        queue order, so reads lowered later in the batch see the post-
        write planes — sequential consistency within a batch), invalidate
        the result cache, and emit the maintenance charge."""
        request = queued.request
        outcome = self.maintenance.lower_write(request, self.executor)
        invalidated = 0
        if self.result_cache is not None:
            if outcome.invalidate_all:
                invalidated = self.result_cache.invalidate_index(request.index)
            else:
                invalidated = self.result_cache.invalidate_columns(
                    request.index, outcome.invalidate_columns
                )
        if self.optimizer is not None:
            # The batch-local CSE table shares result vectors too: drop
            # the entries this write's footprint covers so reads lowered
            # later in the batch re-emit from the mutated planes.
            self.optimizer.invalidate_writes(
                request.index,
                columns=outcome.invalidate_columns,
                invalidate_all=outcome.invalidate_all,
            )
        if getattr(self.executor, "sanitize", False):
            from repro.verify.plan_lint import (  # local: avoid cycle
                lint_cache_consistency,
                lint_write_plan,
            )

            # Certify the maintenance charge against the declared outcome,
            # then (cache on) that no stale entry survived the invalidation.
            lint_write_plan(outcome)
            if self.result_cache is not None:
                lint_cache_consistency(self.result_cache, request.index)
        indices: List[int] = []
        for primitive in outcome.primitives:
            primitives.append(primitive)
            indices.append(len(primitives) - 1)
        rows_affected = outcome.rows_affected

        def finalize(results: List[RequestResult]) -> Any:
            return rows_affected

        zero_cost = None
        if not indices:
            # Pure-lazy write of zero rows (or all maintenance deferred
            # and no traffic): nothing runs now, nothing is charged now.
            zero_cost = OperationMetrics(
                name=f"storage_{request.kind}",
                latency_ns=0.0,
                energy_j=0.0,
                bytes_produced=0,
                notes="deferred maintenance",
            )
        return LoweredGroup(
            queued=queued,
            indices=indices,
            finalize=finalize,
            zero_cost_metrics=zero_cost,
            cache_invalidations=invalidated,
            write_outcome=outcome,
        )

    def _lower_conjunction(
        self, queued: QueuedRequest, primitives: List[ServiceRequest]
    ) -> LoweredGroup:
        from repro.api.plans import lower_conjunction_steps  # local: avoid cycle

        request = queued.request
        index = request.index
        # One lowering path for every tier: the shared plan IR expands the
        # chain identically whether `index` is a full BitmapIndex (service
        # tier) or a shard view (each cluster shard).
        steps, result_vector, plan = lower_conjunction_steps(
            index,
            request.predicates,
            # The executor charges each step from the vectors' row-chunk
            # count: lower at the device's row size or the analytical cost
            # diverges from the plan-level model (and the functional path).
            row_size_bytes=self.executor.engine.device.geometry.row_size_bytes,
        )
        if getattr(self.executor, "sanitize", False):
            from repro.verify.plan_lint import lint_lowered_conjunction  # local: avoid cycle

            # Certify the lowered chain statically before any step
            # executes: topology, widths, and cost-model agreement.
            lint_lowered_conjunction(
                request.predicates,
                steps,
                result_vector,
                plan,
                num_rows=index.num_rows,
                row_size_bytes=self.executor.engine.device.geometry.row_size_bytes,
            )
        self.lowered_requests += 1
        offset = self.executor.stable_offset(index)
        indices: List[int] = []
        for op, a, b, out in steps:
            primitives.append(BulkOpRequest(op=op, a=a, b=b, out=out, bank_offset=offset))
            indices.append(len(primitives) - 1)
        packed_bytes = (index.num_rows + 7) // 8

        def finalize(results: List[RequestResult]) -> Any:
            return result_vector.data[:packed_bytes].copy()

        zero_cost = None
        if not indices:
            # Single-value single-predicate conjunction: the answer is the
            # bitmap itself; no bulk operations run and none are charged,
            # exactly as the plan-level cost model prices it.
            zero_cost = OperationMetrics(
                name="bitmap_conjunction",
                latency_ns=0.0,
                energy_j=0.0,
                bytes_produced=packed_bytes,
                notes=f"{plan.total_operations} bulk ops (identity)",
            )
        return LoweredGroup(
            queued=queued, indices=indices, finalize=finalize, zero_cost_metrics=zero_cost
        )

    @staticmethod
    def group_metrics(group: LoweredGroup, results: List[RequestResult]) -> OperationMetrics:
        """Sequential-execution cost attributed to one lowered group."""
        if not group.indices:
            return group.zero_cost_metrics
        if len(results) == 1:
            return results[0].metrics
        if group.write_outcome is not None:
            name = f"storage_{group.write_outcome.request.kind}"
        else:
            name = "bitmap_conjunction"
        combined = combine_serial(name, (r.metrics for r in results))
        combined.notes = f"{len(results)} lowered bulk ops"
        return combined
