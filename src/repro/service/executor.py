"""The batch executor: pure execution of primitive service requests.

:class:`BatchExecutor` is the third stage of the service pipeline
(frontend → planner → executor).  It takes an already-shaped list of
primitive requests — Ambit bulk bitwise operations, BitWeaving predicate
scans, RowClone bulk copies — executes each one, and list-schedules the
results onto the device's banks to obtain the batch makespan.  It holds no
queue and applies no policy: admission lives in
:class:`~repro.service.frontend.ServiceFrontend`, batch shaping and
lowering in :class:`~repro.service.planner.BatchPlanner`.

Three execution optimizations make batches cheap without changing what the
hardware is charged for:

* **Bank-level overlap** — requests whose rows live in disjoint banks
  proceed concurrently (the DDR command bus has ample headroom for AAP
  sequences), so the batch finishes in the makespan of a per-bank schedule
  rather than the sum of request latencies.  Requests are ordered longest
  processing time first (LPT) before the greedy bank assignment, which
  tightens the makespan over submission order.  This is the *only* way a
  batch may be faster: per-request latency and total energy are identical
  to sequential execution, which the property tests pin down.  With
  ``pipeline`` (the default) the per-bank schedule is a *persistent*
  :class:`~repro.service.lanes.LaneSchedule` whose lane horizons carry
  across batches: a new batch's requests start on banks the previous
  batch has already drained instead of waiting behind a global batch
  barrier.  ``pipeline=False`` restores the batch-synchronous schedule
  (a fresh timeline per batch) for A/B comparison; either way the
  schedule only moves start times — results, per-request latencies, and
  energies are bit-identical.
* **Operation fusion** — within a batch, the complement of a bit plane is
  materialized at most once and reused by every step that needs it (the
  NOT feeding an AND in the BitWeaving recurrence, the shared planes of a
  ``between``'s two half-scans), and control rows are initialized once per
  subarray across the whole batch.  Every fused operation is still charged
  at full cost; fusion only removes redundant simulation work and row
  traffic.
* **Allocation reuse** — intermediate vectors come from a small LRU pool
  (:class:`~repro.service.pool.VectorPool`), so a long request stream
  recycles a bounded set of DRAM rows instead of bleeding the allocator
  dry.

Functional execution goes through the engine's vectorized functional path
(every row chunk of an operation in one NumPy call); results are bit-exact
with one-at-a-time sequential execution on either path.  For large soak
runs, ``verify_fraction`` executes only a deterministic seeded subset of
each batch on the simulated banks (with verification) and the rest
analytically — values are bit-exact either way, so sampling changes no
results and no charged costs.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.metrics import BatchMetrics, OperationMetrics, combine_serial
from repro.database.bitweaving import BitWeavingColumn
from repro.obs import Observer, Span, resolve_observe
from repro.rowclone.engine import RowCloneEngine
from repro.service.lanes import HOST_LANE, LaneSchedule
from repro.service.pool import VectorPool
from repro.service.requests import (
    BatchResult,
    BulkOpRequest,
    CopyRequest,
    RequestResult,
    ScanRequest,
    ServiceRequest,
)
from repro.verify.schedule_check import ScheduleSanitizer, check_schedule


@dataclass
class _BatchContext:
    """Per-run state: plane/complement caches and fusion accounting."""

    plane_vectors: Dict[Tuple[int, int, int], BulkBitVector] = field(default_factory=dict)
    not_vectors: Dict[Tuple[int, int, int], BulkBitVector] = field(default_factory=dict)
    fused_ops: int = 0


class BatchExecutor:
    """Executes batches of primitive bulk in-DRAM requests.

    Args:
        engine: Ambit engine to execute on.  When omitted, an engine with
            the vectorized functional path enabled is created.
        rowclone: RowClone engine for copy requests (created on the same
            device when omitted).
        pool_capacity: Size of the LRU pool of intermediate row allocations.
        fuse: Enable operation fusion (shared plane complements).  Fusion
            never changes results or charged costs; disabling it is only
            useful for A/B testing the planner.
        lpt: Order requests longest-latency-first before the greedy bank
            assignment (LPT list scheduling).  Ordering only moves start
            times within the batch; per-request results, latencies, and
            energies are unchanged.  Disabling falls back to submission
            order, useful for A/B-testing the makespan.
        pipeline: Carry per-bank lane horizons *across* batches (see
            :class:`~repro.service.lanes.LaneSchedule`): a new batch's
            requests start on banks the previous batch has drained
            instead of waiting for its global makespan.  ``False``
            restores the batch-synchronous barrier (a fresh schedule per
            batch) for A/B benchmarking.  The mode only moves start
            times — results and charged costs are identical either way.
        verify_fraction: Fraction of each batch's requests that a
            ``functional=True`` run executes on the simulated banks (and
            verifies); the rest run analytically.  Sampling is
            deterministic in ``verify_seed``, the executor's batch counter,
            and the request's position, so a run is reproducible.
        verify_seed: Seed of the verification sampler.
        sanitize: Run the static verification layer on every dispatch:
            the schedule race detector
            (:class:`~repro.verify.schedule_check.ScheduleSanitizer`)
            audits each batch's lane placements as they land (hazards,
            causality, barrier bound, accounting), and the planner lints
            every lowered conjunction chain before execution.  Any
            violation raises a typed
            :class:`~repro.verify.errors.VerifyError`.  Off by default;
            intended for tests and benchmark certification runs.
        observe: Observability plane (``repro.obs``): ``True`` records a
            span per dispatched batch and per lane placement plus
            executor counters/histograms; an :class:`~repro.obs.Observer`
            shares a plane with the frontends.  Off by default — the
            disabled path allocates no span objects, and recording never
            changes results, schedules, or charged costs (the spans are
            stamped from virtual-clock times the schedule already
            computed).
    """

    def __init__(
        self,
        engine: Optional[AmbitEngine] = None,
        rowclone: Optional[RowCloneEngine] = None,
        pool_capacity: int = 16,
        fuse: bool = True,
        lpt: bool = True,
        pipeline: bool = True,
        verify_fraction: float = 1.0,
        verify_seed: int = 0,
        sanitize: bool = False,
        observe: Union[bool, Observer] = False,
    ) -> None:
        if not 0.0 <= verify_fraction <= 1.0:
            raise ValueError("verify_fraction must be in [0, 1]")
        self.engine = engine or AmbitEngine(config=AmbitConfig(vectorized_functional=True))
        self.rowclone = rowclone or RowCloneEngine(
            self.engine.device, banks_parallel=self.engine.config.banks_parallel
        )
        self.pool = VectorPool(self.engine, capacity=pool_capacity)
        self.fuse = fuse
        self.lpt = lpt
        self.pipeline = pipeline
        self.verify_fraction = verify_fraction
        self.verify_seed = verify_seed
        #: Requests executed on the simulated banks across all runs.
        self.functional_executed = 0
        #: Functional-mode requests diverted to the analytical path by
        #: ``verify_fraction`` sampling.
        self.sampled_out = 0
        self._batches_run = 0
        # Weakly keyed: a dead column must not pin its offset (or leak an
        # entry) — id() reuse would hand stale offsets to new columns.
        self._column_offsets: "weakref.WeakKeyDictionary[BitWeavingColumn, int]" = (
            weakref.WeakKeyDictionary()
        )
        self._object_offsets: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self._next_offset = 0
        self._bank_keys = [key for key, _ in self.engine.device.iter_banks()]
        #: Persistent per-bank lane timelines (only advanced in pipelined
        #: mode; a barrier run schedules on a fresh throwaway timeline).
        self.lanes = LaneSchedule(self.active_bank_keys())
        self.sanitize = sanitize
        # Incremental race detector over the persistent lanes: each batch
        # only replays its own placements, so certifying every dispatch
        # stays O(batch) rather than O(history).
        self._sanitizer = ScheduleSanitizer() if sanitize else None
        #: Label prefix for this executor's trace tracks; the cluster tier
        #: sets ``"shard<i>/"`` so identical bank keys on different shard
        #: devices stay distinct Perfetto tracks.
        self.obs_prefix = ""
        self.bind_observer(resolve_observe(observe))

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def bind_observer(self, obs: Observer) -> None:
        """Adopt an observability plane (tracer + metrics registry).

        Called at construction from the ``observe=`` knob, and by the
        frontends when they push a shared plane down the pipeline.
        Declares one trace track per bank lane plus the host lane and a
        batch-dispatch row, so an exported trace always carries the full
        lane topology — including lanes that never ran work.
        """
        self.obs = obs
        if obs.enabled:
            labels = [self.lane_label(key) for key in self.active_bank_keys()]
            labels.append(self.lane_label(HOST_LANE))
            labels.append(self.batches_track())
            obs.tracer.declare_tracks(labels)

    def lane_label(self, key) -> str:
        """Export-track label of one lane key (shard-prefixed)."""
        return f"{self.obs_prefix}{key}"

    def batches_track(self) -> str:
        """Export-track label of the batch-dispatch row."""
        return f"{self.obs_prefix}batches"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        requests: List[ServiceRequest],
        functional: bool = False,
        release_ns: Optional[float] = None,
    ) -> BatchResult:
        """Run a shaped batch and return per-request + batch results.

        Args:
            requests: Primitive requests, in submission order (results come
                back in the same order; only the *schedule* reorders).
            functional: Execute on the simulated banks (bit-exact row data
                in DRAM) instead of the analytical path.  Results are
                identical either way; the functional path additionally
                verifies them against the banks' contents, subject to
                ``verify_fraction`` sampling.
            release_ns: Dispatch instant of the batch on the caller's
                virtual clock; every scheduled start is at or after it,
                and result ``start_ns`` values are absolute against the
                same clock.  Defaults to 0 for a batch-synchronous run
                and to :meth:`ready_ns` — the earliest instant a bank
                lane is free — for a pipelined one, which models a
                caller dispatching each batch as soon as the executor
                can accept work.
        """
        for request in requests:
            if not isinstance(request, (BulkOpRequest, ScanRequest, CopyRequest)):
                raise TypeError(f"unknown request type {type(request).__name__}")
        batch_index = self._batches_run
        self._batches_run += 1
        context = _BatchContext()
        results: List[RequestResult] = []
        for index, request in enumerate(requests):
            run_functional = functional and self._verify_sampled(batch_index, index)
            if functional:
                if run_functional:
                    self.functional_executed += 1
                else:
                    self.sampled_out += 1
            if isinstance(request, BulkOpRequest):
                results.append(self._run_bulk_op(request, run_functional))
            elif isinstance(request, ScanRequest):
                results.append(self._run_scan(request, context, run_functional))
            else:
                results.append(self._run_copy(request))
        self._release_context(context)

        if release_ns is None:
            release_ns = self.ready_ns()
        release = float(release_ns)
        batch_span: Optional[Span] = None
        if self.obs.enabled:
            batch_span = self.obs.tracer.span(
                f"batch {batch_index}",
                category="executor",
                start_ns=release,
                track=(self.batches_track(),),
            )
        makespan, device_busy, overlap = self._schedule(results, release, batch_span)
        serial = combine_serial("batch_serial", (r.metrics for r in results))
        metrics = BatchMetrics(
            name="service_batch",
            requests=len(results),
            latency_ns=makespan,
            serial_latency_ns=serial.latency_ns,
            energy_j=serial.energy_j,
            bytes_produced=serial.bytes_produced,
            per_request=[r.metrics for r in results],
            device_busy_ns=device_busy if self.pipeline else None,
            cross_batch_overlap_ns=overlap,
            notes=f"{context.fused_ops} fused ops" if context.fused_ops else "",
        )
        if batch_span is not None:
            batch_span.end(release + makespan).set(
                batch=batch_index,
                requests=len(results),
                fused_ops=context.fused_ops,
                device_busy_ns=device_busy,
                cross_batch_overlap_ns=overlap,
            )
            registry = self.obs.metrics
            registry.counter("executor.batches").inc()
            registry.counter("executor.requests").inc(float(len(results)))
            registry.counter("executor.fused_ops").inc(float(context.fused_ops))
            registry.histogram("executor.batch_makespan_ns").observe(makespan)
        return BatchResult(results=results, metrics=metrics)

    def _verify_sampled(self, batch_index: int, request_index: int) -> bool:
        """Deterministic seeded choice: execute this request on the banks?"""
        if self.verify_fraction >= 1.0:
            return True
        if self.verify_fraction <= 0.0:
            return False
        rng = np.random.default_rng([self.verify_seed, batch_index, request_index])
        return bool(rng.random() < self.verify_fraction)

    # ------------------------------------------------------------------
    # Latency model (used by the planner for LPT and deadline urgency)
    # ------------------------------------------------------------------
    def modeled_latency_ns(self, request: ServiceRequest) -> float:
        """Sequential-execution latency the request will be charged."""
        if isinstance(request, BulkOpRequest):
            return self.engine.op_cost(request.op, request.a.num_rows).latency_ns
        if isinstance(request, ScanRequest):
            return self._scan_metrics(request).latency_ns
        if isinstance(request, CopyRequest):
            if request.fill:
                return self.rowclone.bulk_fill(request.num_bytes).latency_ns
            return self.rowclone.bulk_copy(request.num_bytes, request.mode).latency_ns
        raise TypeError(f"unknown request type {type(request).__name__}")

    def _scan_metrics(self, request: ScanRequest) -> OperationMetrics:
        """Charged cost of a scan (identical to the plan-level cost model)."""
        expected, plan = request.scan_result()
        rows = max(1, -(-len(expected) // self.engine.device.geometry.row_size_bytes))
        per_op = [
            self.engine.op_cost(op, rows, (request.column.num_rows + 7) // 8)
            for op in plan.sequence
        ]
        metrics = combine_serial(f"ambit_scan_{request.kind}", per_op)
        metrics.bytes_produced = len(expected)
        metrics.notes = f"{plan.total_operations} bulk ops over {plan.planes_touched} planes"
        return metrics

    # ------------------------------------------------------------------
    # Per-request execution
    # ------------------------------------------------------------------
    def _run_bulk_op(self, request: BulkOpRequest, functional: bool) -> RequestResult:
        if functional and request.a.allocation is None:
            return self._run_bulk_op_staged(request)
        out, metrics = self.engine.execute(
            request.op, request.a, request.b, out=request.out, functional=functional
        )
        bank_ids = self._request_banks(request, request.a.num_rows)
        return RequestResult(request=request, metrics=metrics, value=out, bank_ids=bank_ids)

    def _run_bulk_op_staged(self, request: BulkOpRequest) -> RequestResult:
        """Functional execution of a bulk op over host-only operands.

        The operands are staged into pooled, placed vectors (one bank
        offset keeps them subarray-aligned), executed on the banks, and the
        result is copied back into the request's destination.  The charged
        cost comes from the request's own shape — exactly what the
        analytical path charges — not from the staged vectors, whose
        device-row-size chunking is simulation plumbing; a sampled
        (``verify_fraction``) batch therefore charges identically however
        each request is sampled.
        """
        offset = (request.bank_offset or 0) % self.banks_available()
        logical = request.a.num_bytes
        a = self._acquire(request.a.num_bits, offset)
        a.data[:] = 0
        a.data[:logical] = request.a.data[:logical]
        b = None
        if request.b is not None:
            b = self._acquire(request.b.num_bits, offset)
            b.data[:] = 0
            b.data[:logical] = request.b.data[:logical]
        out_staged = self._acquire(request.a.num_bits, offset)
        self.engine.execute(request.op, a, b, out=out_staged, functional=True)
        metrics = self.engine.op_cost(
            request.op, request.a.num_rows, request.a.num_bytes, mode="functional staged"
        )
        out = request.out if request.out is not None else request.a.copy_like()
        out.data[:] = 0
        out.data[:logical] = out_staged.data[:logical]
        self._release(a, offset)
        if b is not None:
            self._release(b, offset)
        self._release(out_staged, offset)
        bank_ids = self._request_banks(request, request.a.num_rows)
        return RequestResult(request=request, metrics=metrics, value=out, bank_ids=bank_ids)

    def _run_copy(self, request: CopyRequest) -> RequestResult:
        if request.fill:
            metrics = self.rowclone.bulk_fill(request.num_bytes)
        else:
            metrics = self.rowclone.bulk_copy(request.num_bytes, request.mode)
        rows = max(1, -(-request.num_bytes // self.engine.device.geometry.row_size_bytes))
        bank_ids = self._modeled_banks(rows, self._rotate_offset(rows))
        return RequestResult(request=request, metrics=metrics, value=None, bank_ids=bank_ids)

    def _run_scan(
        self, request: ScanRequest, context: _BatchContext, functional: bool
    ) -> RequestResult:
        column = request.column
        expected, _plan = request.scan_result()
        metrics = self._scan_metrics(request)

        if functional:
            produced = self._functional_scan(request, context)
            if not np.array_equal(produced, expected):
                raise AssertionError(
                    f"functional {request.kind} scan diverged from the analytical result"
                )
            value = produced
        else:
            value = expected
        rows = max(1, -(-len(expected) // self.engine.device.geometry.row_size_bytes))
        bank_ids = self._modeled_banks(rows, self._column_offset(column))
        return RequestResult(request=request, metrics=metrics, value=value, bank_ids=bank_ids)

    # ------------------------------------------------------------------
    # Functional BitWeaving execution (fused)
    # ------------------------------------------------------------------
    def _functional_scan(self, request: ScanRequest, context: _BatchContext) -> np.ndarray:
        column = request.column
        offset = self._column_offset(column)
        if request.kind == "equal":
            result = self._functional_equal(column, request.constants[0], context, offset)
        elif request.kind == "between":
            low, high = request.constants
            below_low = self._functional_compare(column, low, False, context, offset)
            at_most_high = self._functional_compare(column, high, True, context, offset)
            not_low = self._vec_op(context, "not", below_low, None, offset)
            self._release(below_low, offset)
            result = self._vec_op(context, "and", at_most_high, not_low, offset)
            self._release(at_most_high, offset)
            self._release(not_low, offset)
        else:
            include_equal = request.kind == "less_equal"
            result = self._functional_compare(
                column, request.constants[0], include_equal, context, offset
            )
        packed = result.data[: (column.num_rows + 7) // 8].copy()
        self._release(result, offset)
        return packed

    def _functional_compare(
        self,
        column: BitWeavingColumn,
        constant: int,
        include_equal: bool,
        context: _BatchContext,
        offset: int,
    ) -> BulkBitVector:
        lt = self._acquire(column.num_rows, offset).fill_value(0)
        eq = self._acquire(column.num_rows, offset).fill_value(1)
        for bit in reversed(range(column.num_bits)):
            if (constant >> bit) & 1:
                plane = self._plane_vector(column, bit, context, offset)
                not_plane = self._not_plane(column, bit, context, offset)
                partial = self._vec_op(context, "and", eq, not_plane, offset)
                self._done_with_not(not_plane, offset)
                lt_next = self._vec_op(context, "or", lt, partial, offset)
                self._release(lt, offset)
                self._release(partial, offset)
                lt = lt_next
                eq_next = self._vec_op(context, "and", eq, plane, offset)
                self._release(eq, offset)
                eq = eq_next
            else:
                not_plane = self._not_plane(column, bit, context, offset)
                eq_next = self._vec_op(context, "and", eq, not_plane, offset)
                self._done_with_not(not_plane, offset)
                self._release(eq, offset)
                eq = eq_next
        if include_equal:
            result = self._vec_op(context, "or", lt, eq, offset)
            self._release(lt, offset)
            self._release(eq, offset)
            return result
        self._release(eq, offset)
        return lt

    def _functional_equal(
        self, column: BitWeavingColumn, constant: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        eq = self._acquire(column.num_rows, offset).fill_value(1)
        for bit in reversed(range(column.num_bits)):
            complemented = not (constant >> bit) & 1
            if complemented:
                operand = self._not_plane(column, bit, context, offset)
            else:
                operand = self._plane_vector(column, bit, context, offset)
            eq_next = self._vec_op(context, "and", eq, operand, offset)
            if complemented:
                self._done_with_not(operand, offset)
            self._release(eq, offset)
            eq = eq_next
        return eq

    def _vec_op(
        self,
        context: _BatchContext,
        op: str,
        a: BulkBitVector,
        b: Optional[BulkBitVector],
        offset: int,
    ) -> BulkBitVector:
        out = self._acquire(a.num_bits, offset)
        _, _metrics = self.engine.execute(op, a, b, out=out, functional=True)
        return out

    def _plane_vector(
        self, column: BitWeavingColumn, bit: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        key = (id(column), bit, offset)
        vector = context.plane_vectors.get(key)
        if vector is None:
            vector = self._acquire(column.num_rows, offset)
            plane = column.planes[bit]
            vector.data[:] = 0
            vector.data[: plane.size] = plane
            context.plane_vectors[key] = vector
        return vector

    def _not_plane(
        self, column: BitWeavingColumn, bit: int, context: _BatchContext, offset: int
    ) -> BulkBitVector:
        """The complement of a bit plane, materialized at most once per batch.

        The first use executes a real NOT on the engine; later uses reuse
        the cached complement row data (a fused NOT).  The *caller* charges
        every NOT at full cost through the scan plan regardless, so fusion
        never changes attributed latency or energy.
        """
        key = (id(column), bit, offset)
        vector = context.not_vectors.get(key) if self.fuse else None
        if vector is None:
            plane = self._plane_vector(column, bit, context, offset)
            vector = self._vec_op(context, "not", plane, None, offset)
            if self.fuse:
                context.not_vectors[key] = vector
        else:
            context.fused_ops += 1
        return vector

    def _done_with_not(self, vector: BulkBitVector, offset: int) -> None:
        """Release an unfused complement right after its single use.

        Fused complements stay cached in the batch context for reuse and
        are released when the batch completes.
        """
        if not self.fuse:
            self._release(vector, offset)

    def _release_context(self, context: _BatchContext) -> None:
        for key, vector in context.plane_vectors.items():
            self.pool.release(vector, bank_offset=key[2])
        for key, vector in context.not_vectors.items():
            self.pool.release(vector, bank_offset=key[2])
        context.plane_vectors.clear()
        context.not_vectors.clear()

    def _acquire(self, num_bits: int, offset: int) -> BulkBitVector:
        return self.pool.acquire(num_bits, bank_offset=offset)

    def _release(self, vector: BulkBitVector, offset: int) -> None:
        self.pool.release(vector, bank_offset=offset)

    # ------------------------------------------------------------------
    # Bank assignment and makespan scheduling
    # ------------------------------------------------------------------
    def _column_offset(self, column: BitWeavingColumn) -> int:
        """Stable bank offset per column: a column's planes live in fixed
        banks, so every scan of it contends for the same banks."""
        offset = self._column_offsets.get(column)
        if offset is None:
            offset = self._next_offset
            self._next_offset = (self._next_offset + 1) % self.banks_available()
            self._column_offsets[column] = offset
        return offset

    def stable_offset(self, obj) -> int:
        """Stable bank offset for any weak-referenceable owner object.

        The planner pins every lowered step of one high-level request (e.g.
        a bitmap index's conjunctions) to its owner's offset, so the
        data-dependent steps serialize on one set of modeled banks — the
        same contention rule columns follow.
        """
        offset = self._object_offsets.get(obj)
        if offset is None:
            offset = self._next_offset
            self._next_offset = (self._next_offset + 1) % self.banks_available()
            self._object_offsets[obj] = offset
        return offset

    def _rotate_offset(self, rows: int) -> int:
        offset = self._next_offset
        self._next_offset = (self._next_offset + max(1, rows)) % self.banks_available()
        return offset

    def banks_available(self) -> int:
        return min(self.engine.config.banks_parallel, self.engine.allocator.banks_total)

    def active_bank_keys(self) -> List:
        """Keys of the banks the executor schedules onto, in rotation order."""
        return list(self._bank_keys[: self.banks_available()])

    def span_banks(self, rows: int, offset: int) -> List:
        """Bank keys a ``rows``-chunk request occupies from ``offset``."""
        return self._modeled_banks(rows, offset % self.banks_available())

    def modeled_banks(self, request: ServiceRequest) -> List:
        """Bank keys the request is modeled to occupy (empty = unpinned).

        Drives the frontend's per-bank backlog admission: requests with a
        stable bank affinity — scans of a column, bulk ops over placed
        vectors or with a ``bank_offset`` hint — charge their latency to
        exactly the banks execution will contend for.  A host-only bulk
        op (no placement, no bank hint) never touches a bank: it is
        charged to the dedicated host lane, the same lane the schedule
        will serialize it on.  An empty list means the request has no
        affinity (it will be rotated onto whichever banks come next), so
        the frontend spreads its backlog evenly.
        """
        if isinstance(request, BulkOpRequest):
            vector = request.a
            if vector.allocation is not None and vector.allocation.placements:
                return sorted({p.bank_key for p in vector.allocation.placements})
            if request.bank_offset is not None:
                return self.span_banks(vector.num_rows, request.bank_offset)
            return [HOST_LANE]
        if isinstance(request, ScanRequest):
            expected, _ = request.scan_result()
            rows = max(1, -(-len(expected) // self.engine.device.geometry.row_size_bytes))
            return self.span_banks(rows, self._column_offset(request.column))
        if isinstance(request, CopyRequest):
            return []
        raise TypeError(f"unknown request type {type(request).__name__}")

    def _modeled_banks(self, rows: int, offset: int) -> List:
        """Bank keys a request of ``rows`` chunks occupies from ``offset``.

        Uses the same id space as real placements (the device's bank keys)
        so modeled and placed requests contend for the same banks.
        """
        available = self.banks_available()
        return [self._bank_keys[(offset + i) % available] for i in range(min(rows, available))]

    def _request_banks(self, request: BulkOpRequest, rows: int) -> List:
        vector = request.a
        if vector.allocation is not None and vector.allocation.placements:
            return sorted({p.bank_key for p in vector.allocation.placements})
        if request.bank_offset is not None:
            return self._modeled_banks(rows, request.bank_offset % self.banks_available())
        # Host-only operands with no bank hint never touch DRAM banks:
        # the op runs (and serializes) on the dedicated host lane instead
        # of being rotated onto — and falsely contending with — real banks.
        return []

    def _schedule(
        self,
        results: List[RequestResult],
        release_ns: float,
        batch_span: Optional[Span] = None,
    ) -> Tuple[float, float, float]:
        """Greedy per-bank lane schedule of one dispatched batch.

        Each request occupies its banks for its full sequential latency; a
        request starts once it is released and all of its banks are free.
        Requests on disjoint banks therefore overlap completely, while
        requests contending for a bank serialize — exactly the paper's
        bank-level parallelism and nothing more.  With ``lpt`` (the
        default) requests are placed longest first, the classic LPT
        heuristic, which tightens the makespan over submission order
        without touching any result.  Requests that occupy no bank —
        host-only bulk operations — go onto the dedicated host lane
        rather than falsely contending with real bank-0 traffic.

        In pipelined mode the batch lands on the executor's *persistent*
        lane timelines, so requests start behind whatever horizons earlier
        batches left on their banks; a barrier batch schedules on a fresh
        throwaway timeline instead.  Returns ``(makespan, device_busy,
        cross_batch_overlap)``: the completion horizon relative to the
        dispatch instant, the device-busy time the batch added (union of
        its intervals), and the work that ran before the previous batch's
        completion horizon.

        When any request carries ``after`` dependencies (the batch plan
        optimizer's cross-lane DAGs), the batch is placed in submission
        order instead of LPT and each request's release is lifted to its
        producers' finish times, so a consumer on an idle lane cannot be
        scheduled before the sub-chain output it reads exists.  Producers
        always precede consumers in submission order, so one forward pass
        suffices; the lifted release is what the placement logs, keeping
        the schedule race detector's replay exact.
        """
        has_deps = any(getattr(r.request, "after", ()) for r in results)
        if self.lpt and not has_deps:
            order = sorted(results, key=lambda r: -r.metrics.latency_ns)
        else:
            order = results
        lanes = self.lanes if self.pipeline else LaneSchedule(self.active_bank_keys())
        lanes.open_batch()
        prev_horizon = lanes.horizon_ns()
        busy_before = lanes.busy_union_ns
        finish_max = release_ns
        overlap = 0.0
        finishes: List[float] = []
        for result in order:
            release = release_ns
            for dep in getattr(result.request, "after", ()):
                if not 0 <= dep < len(finishes):
                    raise ValueError(
                        f"after={dep} must reference an earlier primitive of "
                        f"the same batch (placed so far: {len(finishes)})"
                    )
                release = max(release, finishes[dep])
            banks = result.bank_ids or [HOST_LANE]
            start, finish = lanes.place(banks, result.metrics.latency_ns, release)
            result.start_ns = start
            if batch_span is not None:
                # One exec span per placement, on every lane it occupies —
                # the export replays these intervals to reproduce the
                # lanes' busy union exactly.
                batch_span.child(
                    result.metrics.name,
                    category="exec",
                    start_ns=start,
                    end_ns=finish,
                    track=tuple(self.lane_label(key) for key in banks),
                ).set(
                    latency_ns=result.metrics.latency_ns,
                    release_ns=release,
                    banks=len(banks),
                )
            finishes.append(finish)
            overlap += max(0.0, min(finish, prev_horizon) - start)
            finish_max = max(finish_max, finish)
        if self.pipeline:
            lanes.cross_batch_overlap_ns += overlap
            lanes.batches += 1
        if self._sanitizer is not None:
            if self.pipeline:
                # Incremental: audit only this batch's placements, then
                # reconcile the persistent schedule's full accounting.
                self._sanitizer.check(lanes)
            else:
                # The throwaway barrier schedule is complete: audit it whole.
                check_schedule(lanes)
        return finish_max - release_ns, lanes.busy_union_ns - busy_before, overlap

    # ------------------------------------------------------------------
    # Lane timeline accessors (pipelined dispatch surface)
    # ------------------------------------------------------------------
    def horizon_ns(self) -> float:
        """Completion horizon of the persistent lanes (0 without pipelining)."""
        return self.lanes.horizon_ns() if self.pipeline else 0.0

    def ready_ns(self) -> float:
        """Earliest instant a bank lane is free to accept a new dispatch.

        The pipelined frontend gates batch dispatch on this: a batch may
        close as soon as *some* bank has drained, instead of waiting for
        the previous batch's global makespan.  Always 0 without
        pipelining (the barrier executor has no carried-over state).
        """
        return self.lanes.ready_ns() if self.pipeline else 0.0

    def lane_horizon_ns(self, key) -> float:
        """Busy-until horizon of one lane (0 without pipelining)."""
        return self.lanes.lane_horizon_ns(key) if self.pipeline else 0.0

    def lane_metrics(self, name: str = "lanes"):
        """Per-lane utilization snapshot (:class:`LaneMetrics`).

        Raises:
            ValueError: For a ``pipeline=False`` executor — the barrier
                schedule is rebuilt per batch and never advances the
                persistent lanes, so a snapshot would read as an idle,
                never-used device rather than the truth.
        """
        if not self.pipeline:
            raise ValueError(
                "lane metrics require a pipelined executor; a barrier "
                "(pipeline=False) executor does not advance the persistent lanes"
            )
        return self.lanes.metrics(name)
