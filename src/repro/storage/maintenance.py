"""Bitmap-plane maintenance policies for the write path.

A :class:`MaintenancePolicy` decides, per indexed column, how a write
keeps the bitmap planes consistent with the table:

* **eager** — maintain the planes at write time.  An in-place update is a
  genuine incremental repair (clear the old value's bits, set the new
  value's bits — one bulk op per distinct plane touched); appends and
  deletes change ``num_rows`` and recompute the column's planes.  Every
  maintained plane is charged as a bulk bitwise op pinned to the index's
  stable bank offset, plus a RowClone copy for the row traffic, so write
  costs land on the same lanes reads contend for.
* **lazy** — mark the column dirty and defer: the first *read* through
  :meth:`BitmapIndex.bitmap` rebuilds it, and the planner charges the
  rebuild (one bulk op per plane + the column scan traffic) into the
  reading request's batch.
* **hybrid** — eager for hot columns, lazy for cold.  Hotness is read
  from the ``repro.obs`` metrics registry (``storage.reads.<column>``
  counters the planner bumps on every lowered predicate); when the
  frontend runs without a recording plane the policy keeps a private
  registry so hybrid works under ``observe=False`` too.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, List, Tuple, Union

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.database.bitmap_index import BitmapIndex
from repro.obs import MetricsRegistry, Observer
from repro.storage.requests import (
    UpdateRequest,
    WriteRequest,
    apply_mutation,
    charged_columns,
)

if TYPE_CHECKING:  # annotation-only: keeps the import graph acyclic
    # (repro.service imports this module through the planner, so the
    # runtime imports of its request types are function-local below)
    from repro.service.executor import BatchExecutor
    from repro.service.requests import ServiceRequest

#: Bytes per dictionary code in the row-traffic model (matches
#: :meth:`ColumnTable.column_bytes`).
CODE_BYTES = 4

STRATEGIES = ("eager", "lazy", "hybrid")


class WriteOutcome:
    """What one lowered write did and what it is charged.

    Attributes:
        request: The write request (or cluster scatter part).
        rows_affected: Rows the functional mutation touched (the write's
            result value; an estimate on non-applying scatter parts).
        primitives: Charged maintenance primitives — bulk ops over the
            maintained planes plus the row-traffic copy — executed in the
            write's batch on the index's lanes.
        strategies: Charged column → resolved strategy (``"eager"`` /
            ``"lazy"``).
        planes_charged: Total planes the eager maintenance is charged for.
        invalidate_columns: Columns whose cached results are stale.
        invalidate_all: Whether the write changed ``num_rows`` (appends,
            deletes) — every cached bitmap of the index is stale then.
        bytes_moved: Row traffic charged through the RowClone copy.
    """

    __slots__ = (
        "request",
        "rows_affected",
        "primitives",
        "strategies",
        "planes_charged",
        "invalidate_columns",
        "invalidate_all",
        "bytes_moved",
    )

    def __init__(
        self,
        request: WriteRequest,
        rows_affected: int,
        primitives: List[ServiceRequest],
        strategies: Dict[str, str],
        planes_charged: int,
        invalidate_columns: Tuple[str, ...],
        invalidate_all: bool,
        bytes_moved: int,
    ) -> None:
        self.request = request
        self.rows_affected = rows_affected
        self.primitives = primitives
        self.strategies = strategies
        self.planes_charged = planes_charged
        self.invalidate_columns = invalidate_columns
        self.invalidate_all = invalidate_all
        self.bytes_moved = bytes_moved


class MaintenancePolicy:
    """Per-column strategy resolution + write lowering (see module doc).

    Args:
        strategy: ``"eager"``, ``"lazy"``, or ``"hybrid"``.
        hot_threshold: Hybrid cutover: a column with at least this many
            recorded reads is maintained eagerly.
    """

    def __init__(self, strategy: str = "eager", hot_threshold: int = 4) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}, not {strategy!r}")
        self.strategy = strategy
        self.hot_threshold = hot_threshold
        # Hotness store: a private registry unless a recording plane is
        # bound — then hotness is just more metrics on the shared plane.
        self._metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Hotness (the repro.obs consumption surface)
    # ------------------------------------------------------------------
    def bind_observer(self, obs: Observer) -> None:
        """Adopt the frontend's recording plane as the hotness store."""
        if obs.enabled:
            self._metrics = obs.metrics

    def note_read(self, columns: Iterable[str]) -> None:
        """Record one read of each column (planner calls this per lowered
        predicate); drives the hybrid strategy's hot/cold split."""
        for column in columns:
            self._metrics.counter(f"storage.reads.{column}").inc()

    def reads_of(self, column: str) -> float:
        """Recorded read count of one column."""
        return self._metrics.counter(f"storage.reads.{column}").value

    def is_hot(self, column: str) -> bool:
        """Hybrid hot/cold test against ``hot_threshold``."""
        return self.reads_of(column) >= self.hot_threshold

    def column_strategy(self, column: str) -> str:
        """Resolved strategy for one column (``"eager"`` or ``"lazy"``)."""
        if self.strategy == "hybrid":
            return "eager" if self.is_hot(column) else "lazy"
        return self.strategy

    # ------------------------------------------------------------------
    # Write lowering (planner entry point)
    # ------------------------------------------------------------------
    def lower_write(self, request: WriteRequest, executor: "BatchExecutor") -> WriteOutcome:
        """Apply the functional mutation (on applying parts), maintain the
        planes per strategy, and build the charged primitives."""
        index = request.index
        row_size = executor.engine.device.geometry.row_size_bytes
        charged = charged_columns(request)
        strategies = {column: self.column_strategy(column) for column in charged}
        planes_by_column: Dict[str, int] = {}
        if request.apply:
            affected = request.affected_columns()
            resolved = {column: self.column_strategy(column) for column in affected}
            old_codes = None
            if (
                isinstance(request, UpdateRequest)
                and resolved.get(request.column) == "eager"
                and request.column not in index.dirty_columns()
            ):
                ids = np.asarray(request.row_ids)
                old_codes = request.table.column(request.column)[ids].copy()
            rows_affected = apply_mutation(request)
            for column in affected:
                if resolved[column] == "lazy":
                    index.mark_dirty([column])
                    continue
                if (
                    isinstance(request, UpdateRequest)
                    and column == request.column
                    and old_codes is not None
                ):
                    touched = index.apply_update(
                        column,
                        np.asarray(request.row_ids),
                        old_codes,
                        np.asarray(request.values).astype(np.int64),
                    )
                else:
                    # Appends/deletes change num_rows; a previously-dirty
                    # column falls back to a full refresh too.
                    index.refresh_columns([column])
                    touched = index.table.cardinalities[column]
                planes_by_column[column] = touched
        else:
            rows_affected = request.num_rows_written()
        primitives: List[ServiceRequest] = []
        planes_charged = 0
        for column in charged:
            if strategies[column] != "eager":
                continue
            ops = planes_by_column.get(column)
            if ops is None:
                ops = self.estimate_planes(request, column)
            planes_charged += ops
            primitives.extend(self._plane_ops(index, ops, executor, row_size))
        bytes_moved = rows_affected * CODE_BYTES * max(1, len(charged))
        if bytes_moved > 0:
            from repro.service.requests import CopyRequest  # local: avoid cycle

            primitives.append(CopyRequest(num_bytes=bytes_moved))
        return WriteOutcome(
            request=request,
            rows_affected=rows_affected,
            primitives=primitives,
            strategies=strategies,
            planes_charged=planes_charged,
            invalidate_columns=charged,
            invalidate_all=request.kind in ("append", "delete"),
            bytes_moved=bytes_moved,
        )

    def estimate_planes(self, request: WriteRequest, column: str) -> int:
        """Modeled planes a write touches in ``column`` (pre-mutation).

        Appends and deletes recompute every plane; an update clears the
        old values' planes and sets the new ones — at most two per
        distinct written value, capped at the cardinality.
        """
        cardinality = max(1, request.index.table.cardinalities.get(column, 1))
        if isinstance(request, UpdateRequest):
            distinct = int(np.unique(np.asarray(request.values)).size) if len(request.values) else 0
            return min(cardinality, 2 * distinct)
        return cardinality

    def _plane_ops(
        self, index: BitmapIndex, count: int, executor: "BatchExecutor", row_size: int
    ) -> List[ServiceRequest]:
        """One charged bulk op per maintained plane, pinned to the index's
        stable bank offset — maintenance occupies the lanes reads use."""
        from repro.service.requests import BulkOpRequest  # local: avoid cycle

        ops: List[ServiceRequest] = []
        offset = executor.stable_offset(index)
        num_rows = max(1, index.num_rows)
        for _ in range(count):
            a = BulkBitVector(num_rows, row_size)
            b = BulkBitVector(num_rows, row_size)
            out = BulkBitVector(num_rows, row_size)
            ops.append(BulkOpRequest(op="or", a=a, b=b, out=out, bank_offset=offset))
        return ops

    # ------------------------------------------------------------------
    # Lazy read-side repair
    # ------------------------------------------------------------------
    def pending_rebuilds(
        self, index: BitmapIndex, columns: Iterable[str]
    ) -> List[str]:
        """Of ``columns``, those whose planes are currently dirty.

        The planner queries this *before* lowering a read: lowering pulls
        the bitmaps, which repairs the dirt as a side effect, so the
        charge has to be decided first.
        """
        dirty = set(index.dirty_columns())
        seen = []
        for column in columns:
            if column in dirty and column not in seen:
                seen.append(column)
        return seen

    def rebuild_charge(
        self, index: BitmapIndex, column: str, executor: "BatchExecutor"
    ) -> List[ServiceRequest]:
        """Charged primitives of one lazy column rebuild: one bulk op per
        plane plus the column-scan row traffic."""
        from repro.service.requests import CopyRequest  # local: avoid cycle

        row_size = executor.engine.device.geometry.row_size_bytes
        cardinality = max(1, index.table.cardinalities.get(column, 1))
        primitives = self._plane_ops(index, cardinality, executor, row_size)
        primitives.append(CopyRequest(num_bytes=max(1, index.num_rows * CODE_BYTES)))
        return primitives

    # ------------------------------------------------------------------
    # Admission cost model (frontend entry point)
    # ------------------------------------------------------------------
    def modeled_write_ns(self, request: WriteRequest, executor: "BatchExecutor") -> float:
        """Sequential latency the write will be charged (admission model)."""
        from repro.service.requests import CopyRequest  # local: avoid cycle

        row_size = executor.engine.device.geometry.row_size_bytes
        rows = self._row_chunks(request.index, row_size)
        per_op = executor.engine.op_cost("or", rows).latency_ns
        total = 0.0
        charged = charged_columns(request)
        for column in charged:
            if self.column_strategy(column) == "eager":
                total += per_op * self.estimate_planes(request, column)
        bytes_moved = request.num_rows_written() * CODE_BYTES * max(1, len(charged))
        if bytes_moved > 0:
            total += executor.modeled_latency_ns(CopyRequest(num_bytes=bytes_moved))
        return total

    def modeled_write_banks(
        self, request: WriteRequest, executor: "BatchExecutor"
    ) -> List[object]:
        """Bank keys the write's maintenance occupies (empty = unpinned)."""
        charged = charged_columns(request)
        if any(self.column_strategy(column) == "eager" for column in charged):
            row_size = executor.engine.device.geometry.row_size_bytes
            rows = self._row_chunks(request.index, row_size)
            return list(
                executor.span_banks(rows, executor.stable_offset(request.index))
            )
        return []

    @staticmethod
    def _row_chunks(index: BitmapIndex, row_size: int) -> int:
        packed = (index.num_rows + 7) // 8
        return max(1, math.ceil(packed / row_size))


def resolve_maintenance(
    maintenance: Union[None, str, MaintenancePolicy],
) -> MaintenancePolicy:
    """Normalize a ``maintenance=`` knob: a strategy name builds a policy,
    ``None`` means eager (the always-consistent default), a policy passes
    through (shared across frontends)."""
    if isinstance(maintenance, MaintenancePolicy):
        return maintenance
    return MaintenancePolicy(strategy=maintenance or "eager")


__all__ = [
    "CODE_BYTES",
    "MaintenancePolicy",
    "STRATEGIES",
    "WriteOutcome",
    "resolve_maintenance",
]
