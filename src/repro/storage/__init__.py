"""``repro.storage`` — the mutation subsystem: first-class write requests
and bitmap-plane maintenance policies.

Writes (:class:`AppendRequest` / :class:`UpdateRequest` /
:class:`DeleteRequest`) flow through the same frontend queue, planner, and
executor as reads; a :class:`MaintenancePolicy` keeps the bitmap-index
planes consistent under three strategies — eager, lazy, hybrid — with the
maintenance work charged as bulk ops on the lanes the index occupies.
See :mod:`repro.storage.requests` and :mod:`repro.storage.maintenance`.
"""

from __future__ import annotations

from repro.storage.maintenance import (
    CODE_BYTES,
    MaintenancePolicy,
    STRATEGIES,
    WriteOutcome,
    resolve_maintenance,
)
from repro.storage.requests import (
    AppendRequest,
    DeleteRequest,
    UpdateRequest,
    WRITE_KINDS,
    WriteRequest,
    apply_mutation,
    charged_columns,
    is_write_request,
)

__all__ = [
    "AppendRequest",
    "CODE_BYTES",
    "DeleteRequest",
    "MaintenancePolicy",
    "STRATEGIES",
    "UpdateRequest",
    "WRITE_KINDS",
    "WriteOutcome",
    "WriteRequest",
    "apply_mutation",
    "charged_columns",
    "is_write_request",
    "resolve_maintenance",
]
