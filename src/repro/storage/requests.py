"""First-class write requests for the mutation subsystem.

``AppendRequest`` / ``UpdateRequest`` / ``DeleteRequest`` flow through the
same frontend queue, planner, and executor as reads: the frontend admits
them against modeled maintenance cost, the planner applies the functional
mutation *at lowering time* (so queue order within a batch is sequential
consistency — a read lowered after a write sees the post-write planes),
and the maintenance charge executes as ordinary primitive requests on the
lanes the index's planes occupy.

Two fields exist purely for the cluster tier's scatter path:

* ``columns`` — the indexed columns this sub-request is charged for
  (``None`` means all affected columns; the router restricts each shard
  part to its locally-placed columns).
* ``apply`` — whether this part performs the functional table/index
  mutation.  Shard views share the parent index's plane dictionaries
  zero-copy, so exactly one scatter part applies and the mutation is
  visible to every replica; the rest only charge their local maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.database.bitmap_index import BitmapIndex
from repro.database.tables import ColumnTable


@dataclass
class AppendRequest:
    """Append rows (per-column code sequences covering every column)."""

    table: ColumnTable
    index: BitmapIndex
    rows: Mapping[str, Sequence[int]]
    columns: Optional[Tuple[str, ...]] = None
    apply: bool = True
    kind: str = field(default="append", init=False)

    def __post_init__(self) -> None:
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))

    def num_rows_written(self) -> int:
        """Rows this append adds (0 when the mapping is empty)."""
        for values in self.rows.values():
            return len(values)
        return 0

    def affected_columns(self) -> Tuple[str, ...]:
        """Indexed columns whose planes the write invalidates.

        An append grows ``num_rows``, so *every* indexed column's planes
        change length — all of them are affected.
        """
        return tuple(self.index.indexed_columns())


@dataclass
class UpdateRequest:
    """In-place overwrite of ``column[row_ids] = values``.

    Row ids must be unique within one update (enforced by
    :meth:`ColumnTable.update_rows`): a duplicated id would make the
    incremental clear-old/set-new plane maintenance ambiguous.
    """

    table: ColumnTable
    index: BitmapIndex
    column: str
    row_ids: Sequence[int]
    values: Sequence[int]
    columns: Optional[Tuple[str, ...]] = None
    apply: bool = True
    kind: str = field(default="update", init=False)

    def __post_init__(self) -> None:
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))

    def num_rows_written(self) -> int:
        """Rows this update overwrites."""
        return len(self.row_ids)

    def affected_columns(self) -> Tuple[str, ...]:
        """The updated column, when it is indexed (else no planes change)."""
        if self.column in self.index.bitmaps:
            return (self.column,)
        return ()


@dataclass
class DeleteRequest:
    """Physical row deletion; later rows renumber down (no tombstones)."""

    table: ColumnTable
    index: BitmapIndex
    row_ids: Sequence[int]
    columns: Optional[Tuple[str, ...]] = None
    apply: bool = True
    kind: str = field(default="delete", init=False)

    def __post_init__(self) -> None:
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))

    def num_rows_written(self) -> int:
        """Rows this delete removes (before de-duplication)."""
        return len(self.row_ids)

    def affected_columns(self) -> Tuple[str, ...]:
        """All indexed columns: a delete renumbers every row below it."""
        return tuple(self.index.indexed_columns())


WriteRequest = Union[AppendRequest, UpdateRequest, DeleteRequest]

WRITE_KINDS = ("append", "update", "delete")


def is_write_request(request: object) -> bool:
    """True for any mutation request (the planner/cluster dispatch test)."""
    return isinstance(request, (AppendRequest, UpdateRequest, DeleteRequest))


def charged_columns(request: WriteRequest) -> Tuple[str, ...]:
    """Columns this request (or scatter part) is charged maintenance for.

    The ``columns`` restriction — set by the cluster scatter path — is
    intersected with the columns the write actually affects.
    """
    affected = request.affected_columns()
    if request.columns is None:
        return affected
    allowed = set(request.columns)
    return tuple(column for column in affected if column in allowed)


def apply_mutation(request: WriteRequest) -> int:
    """Perform the functional table mutation; returns rows affected.

    Index plane maintenance is *not* done here — that is the
    :class:`~repro.storage.maintenance.MaintenancePolicy`'s job, which
    must capture pre-mutation state (old codes) first for updates.
    """
    if isinstance(request, AppendRequest):
        return request.table.append_rows(request.rows)
    if isinstance(request, UpdateRequest):
        return request.table.update_rows(
            request.column, np.asarray(request.row_ids), np.asarray(request.values)
        )
    return request.table.delete_rows(np.asarray(request.row_ids))


__all__ = [
    "AppendRequest",
    "DeleteRequest",
    "UpdateRequest",
    "WRITE_KINDS",
    "WriteRequest",
    "apply_mutation",
    "charged_columns",
    "is_write_request",
]
