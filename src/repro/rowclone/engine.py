"""The RowClone engine: functional row copies plus bulk-operation accounting.

Two usage styles are provided, mirroring the rest of the stack:

* Row-level functional operations (:meth:`RowCloneEngine.copy_row`,
  :meth:`RowCloneEngine.fill_row`) actually move bytes inside the simulated
  device and are used by tests and by Ambit (whose every step is an AAP).
* Bulk analytical operations (:meth:`RowCloneEngine.bulk_copy`,
  :meth:`RowCloneEngine.bulk_fill`) account the latency and energy of
  copying/initializing arbitrarily large regions without materializing the
  rows, and are what the E8 benchmark uses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.analysis.metrics import OperationMetrics
from repro.dram.bank import Bank
from repro.dram.device import DramDevice


class CopyMode(enum.Enum):
    """Which RowClone mechanism performs a copy."""

    FPM = "fpm"                  # same-subarray, one AAP
    INTER_SUBARRAY = "lisa"      # same bank, different subarray (LISA chain)
    PSM = "psm"                  # different bank, internal bus, line by line


#: Latency multiplier of a LISA-style inter-subarray copy relative to one AAP.
#: LISA hops the row buffer across adjacent subarrays; a handful of hops
#: covers typical distances.
INTER_SUBARRAY_AAP_FACTOR = 4.0


class RowCloneEngine:
    """In-DRAM bulk copy/initialization engine bound to a DRAM device.

    Args:
        device: The DRAM device to operate on.
        banks_parallel: How many banks the memory controller overlaps when a
            bulk operation spans multiple banks.  Command-bus bandwidth is
            ample for AAP sequences, so all banks can proceed concurrently.
    """

    def __init__(self, device: Optional[DramDevice] = None, banks_parallel: Optional[int] = None) -> None:
        self.device = device or DramDevice.ddr3()
        self.banks_parallel = banks_parallel or self.device.geometry.banks_total

    # ------------------------------------------------------------------
    # Row-level functional operations
    # ------------------------------------------------------------------
    def classify_copy(self, bank: Bank, source_row: int, dest_row: int,
                      same_bank: bool = True) -> CopyMode:
        """Determine which RowClone mode a row-to-row copy can use."""
        if not same_bank:
            return CopyMode.PSM
        if bank.same_subarray(source_row, dest_row):
            return CopyMode.FPM
        return CopyMode.INTER_SUBARRAY

    def copy_row(self, bank: Bank, source_row: int, dest_row: int) -> OperationMetrics:
        """Copy one row to another row of the same bank, functionally.

        Uses FPM when both rows share a subarray and the LISA fallback
        otherwise.  Returns the latency/energy of the copy.
        """
        mode = self.classify_copy(bank, source_row, dest_row)
        timing = self.device.timing
        energy = self.device.energy_params
        if mode is CopyMode.FPM:
            bank.aap(source_row, dest_row)
            latency_ns = timing.aap_ns
            energy_j = energy.aap_energy_j
        else:
            # LISA-style: move through intermediate row buffers.  Functionally
            # the data still ends up at the destination.
            data = bank.read_row(source_row)
            bank.write_row(dest_row, data)
            latency_ns = timing.aap_ns * INTER_SUBARRAY_AAP_FACTOR
            energy_j = energy.aap_energy_j * INTER_SUBARRAY_AAP_FACTOR
        return OperationMetrics(
            name=f"rowclone_{mode.value}_row",
            latency_ns=latency_ns,
            energy_j=energy_j,
            bytes_moved_on_channel=0,
            bytes_produced=self.device.geometry.row_size_bytes,
            notes=mode.value,
        )

    def copy_row_psm(
        self,
        source_bank: Bank,
        source_row: int,
        dest_bank: Bank,
        dest_row: int,
    ) -> OperationMetrics:
        """Copy a row between two banks through the chip-internal bus.

        The transfer proceeds cache line by cache line through the global
        I/O structure of the chip, so it costs one read burst plus one write
        burst per 64 B, but never leaves the DRAM module (no off-chip I/O
        energy, no cache pollution).
        """
        data = source_bank.read_row(source_row)
        dest_bank.write_row(dest_row, data)
        geometry = self.device.geometry
        timing = self.device.timing
        energy = self.device.energy_params
        lines = geometry.row_size_bytes // 64
        latency_ns = (
            2 * timing.t_rc_ns  # open both rows
            + lines * 2 * timing.burst_time_ns  # read burst + write burst each line
        )
        energy_j = (
            2 * energy.activation_energy_j
            + lines * (energy.read_burst_energy_j + energy.write_burst_energy_j)
        )
        return OperationMetrics(
            name="rowclone_psm_row",
            latency_ns=latency_ns,
            energy_j=energy_j,
            bytes_moved_on_channel=0,
            bytes_produced=geometry.row_size_bytes,
            notes="psm",
        )

    def fill_row(self, bank: Bank, zero_row: int, dest_row: int,
                 pattern: int = 0) -> OperationMetrics:
        """Initialize ``dest_row`` by cloning a reserved pattern row.

        The reserved row is written once (here, if it does not already hold
        the pattern) and then cloned with a single AAP per destination row.
        """
        expected = np.full(self.device.geometry.row_size_bytes, pattern, dtype=np.uint8)
        if not np.array_equal(bank.read_row(zero_row), expected):
            bank.write_row(zero_row, expected)
        return self.copy_row(bank, zero_row, dest_row)

    # ------------------------------------------------------------------
    # Bulk analytical operations
    # ------------------------------------------------------------------
    def _rows_for(self, num_bytes: int) -> int:
        row_size = self.device.geometry.row_size_bytes
        return max(1, (num_bytes + row_size - 1) // row_size)

    def bulk_copy(self, num_bytes: int, mode: CopyMode = CopyMode.FPM) -> OperationMetrics:
        """Latency/energy of copying ``num_bytes`` with the given mode.

        Rows are spread across banks, and AAPs to different banks overlap,
        so the latency is the per-bank serial time of its share of rows.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        rows = self._rows_for(num_bytes)
        timing = self.device.timing
        energy = self.device.energy_params
        rows_per_bank = -(-rows // self.banks_parallel)  # ceil division
        if mode is CopyMode.FPM:
            per_row_ns = timing.aap_ns
            per_row_j = energy.aap_energy_j
        elif mode is CopyMode.INTER_SUBARRAY:
            per_row_ns = timing.aap_ns * INTER_SUBARRAY_AAP_FACTOR
            per_row_j = energy.aap_energy_j * INTER_SUBARRAY_AAP_FACTOR
        else:  # PSM
            lines = self.device.geometry.row_size_bytes // 64
            per_row_ns = 2 * timing.t_rc_ns + lines * 2 * timing.burst_time_ns
            per_row_j = 2 * energy.activation_energy_j + lines * (
                energy.read_burst_energy_j + energy.write_burst_energy_j
            )
        return OperationMetrics(
            name=f"rowclone_bulk_copy_{mode.value}",
            latency_ns=rows_per_bank * per_row_ns,
            energy_j=rows * per_row_j,
            bytes_moved_on_channel=0,
            bytes_produced=num_bytes,
            notes=f"{rows} rows across {min(self.banks_parallel, rows)} banks",
        )

    def bulk_fill(self, num_bytes: int) -> OperationMetrics:
        """Latency/energy of zero-initializing ``num_bytes`` with FPM clones."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        rows = self._rows_for(num_bytes)
        timing = self.device.timing
        energy = self.device.energy_params
        rows_per_bank = -(-rows // self.banks_parallel)
        return OperationMetrics(
            name="rowclone_bulk_fill",
            latency_ns=rows_per_bank * timing.aap_ns,
            energy_j=rows * energy.aap_energy_j,
            bytes_moved_on_channel=0,
            bytes_produced=num_bytes,
            notes=f"{rows} rows across {min(self.banks_parallel, rows)} banks",
        )
