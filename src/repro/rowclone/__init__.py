"""RowClone: in-DRAM bulk data copy and initialization.

RowClone (Seshadri et al., MICRO 2013) performs bulk copy and bulk
initialization entirely inside DRAM by exploiting the row-wide sense
amplifiers:

* **FPM (Fast-Parallel Mode)** copies one row to another row of the *same
  subarray* with a single back-to-back activate-activate-precharge (AAP),
  moving an entire row (8 KiB) in roughly one hundred nanoseconds without
  any data crossing the channel.
* **PSM (Pipelined-Serial Mode)** copies between banks through the chip's
  internal global bus, cache line by cache line — slower than FPM but still
  avoiding the off-chip channel and the cache hierarchy.
* **Inter-subarray copies** within a bank fall back to a LISA-style
  row-buffer-movement chain, modelled as a small multiple of the FPM cost.

Bulk initialization clones a reserved all-zeros (or pattern) row.
"""

from repro.rowclone.engine import CopyMode, RowCloneEngine

__all__ = ["CopyMode", "RowCloneEngine"]
