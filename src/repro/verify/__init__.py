"""Static verification layer: plan linter + lane-schedule race detector.

Two independent checkers certify the pipeline's structural invariants
*before/independently of* execution (see :mod:`repro.verify.plan_lint`
and :mod:`repro.verify.schedule_check`), both rejecting via the typed
:class:`VerifyError` hierarchy.  The third sanitizer — the repo-wide AST
invariant lint — lives in ``tools/lint_invariants.py`` because it checks
source text, not runtime objects.
"""

from repro.verify.errors import (
    AccountingError,
    CacheConsistencyError,
    CausalityError,
    ChainCycleError,
    CostModelMismatchError,
    DanglingOperandError,
    FailoverError,
    LaneHazardError,
    PlanVerifyError,
    ScatterCoverageError,
    ScheduleVerifyError,
    VerifyError,
    WidthMismatchError,
    WritePlanError,
)
from repro.verify.plan_lint import (
    ChainLintReport,
    OptimizedBatchReport,
    OptimizedRequestView,
    check_failover_reoffer,
    check_scatter_coverage,
    check_write_scatter,
    lint_cache_consistency,
    lint_chain,
    lint_lowered_conjunction,
    lint_optimized_batch,
    lint_write_plan,
)
from repro.verify.schedule_check import (
    ScheduleCheckReport,
    ScheduleSanitizer,
    check_schedule,
)

__all__ = [
    "AccountingError",
    "CacheConsistencyError",
    "CausalityError",
    "ChainCycleError",
    "ChainLintReport",
    "CostModelMismatchError",
    "DanglingOperandError",
    "FailoverError",
    "LaneHazardError",
    "OptimizedBatchReport",
    "OptimizedRequestView",
    "PlanVerifyError",
    "ScatterCoverageError",
    "ScheduleCheckReport",
    "ScheduleSanitizer",
    "ScheduleVerifyError",
    "VerifyError",
    "WidthMismatchError",
    "WritePlanError",
    "check_failover_reoffer",
    "check_scatter_coverage",
    "check_schedule",
    "check_write_scatter",
    "lint_cache_consistency",
    "lint_chain",
    "lint_lowered_conjunction",
    "lint_optimized_batch",
    "lint_write_plan",
]
