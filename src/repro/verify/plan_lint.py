"""Static linter for lowered query plans (conjunction chains, scatters).

Every tier lowers conjunctions through one path —
:func:`repro.api.plans.lower_conjunction_steps` — and until now the only
thing certifying a lowered chain was *dynamic*: property tests compare
sampled functional results against the host evaluation.  This module
checks the structural invariants **statically**, before a single step
executes, so plan-rewriting passes (CSE, sub-chain splitting, shard
re-placement) can be certified independently of what they compute:

* **Topology** — the step chain is acyclic and topologically ordered:
  every operand is either a *source* vector (a materialized bitmap plane)
  or the output of an earlier step; every output is produced exactly once
  and never feeds its own step.
* **Widths** — every vector in the chain carries exactly the conjunction's
  row count and the target device's row padding, end to end.
* **Cost model** — the chain's step count and per-op breakdown match the
  :class:`~repro.database.bitmap_index.BitmapPlan` the plan-level cost
  model charges (the invariant the property tests pin only dynamically),
  and match what the predicate set itself implies (``len(values) - 1``
  ORs per predicate, ``len(predicates) - 1`` ANDs).
* **Scatter coverage** — the shard-local sub-conjunctions of a scattered
  request cover the full predicate set exactly once: no predicate
  dropped, none applied twice (either would silently corrupt the gather
  AND).

All checks raise typed :class:`~repro.verify.errors.PlanVerifyError`
subclasses; a clean chain returns a :class:`ChainLintReport` summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ambit.bitvector import BulkBitVector
from repro.database.bitmap_index import BitmapPlan
from repro.verify.errors import (
    CacheConsistencyError,
    ChainCycleError,
    CostModelMismatchError,
    DanglingOperandError,
    FailoverError,
    ScatterCoverageError,
    WidthMismatchError,
    WritePlanError,
)

#: Bulk bitwise ops a lowered step may carry (the engine's op set).
BULK_OPS = frozenset({"not", "and", "or", "nand", "nor", "xor", "xnor"})

#: A lowered step as produced by ``lower_conjunction_steps``:
#: ``(op, a, b, out)`` over host-only vectors.
ChainStep = Tuple[str, BulkBitVector, Optional[BulkBitVector], BulkBitVector]

#: One predicate: (column, values) — each value contributes an OR operand.
Predicate = Tuple[str, Tuple[int, ...]]


@dataclass
class ChainLintReport:
    """Summary of one clean lowered chain.

    Attributes:
        steps: Steps in the chain.
        sources: Distinct source vectors (materialized bitmap planes)
            the chain consumes.
        op_counts: Steps per op kind.
    """

    steps: int = 0
    sources: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)


def lint_chain(
    steps: Sequence[ChainStep],
    result: BulkBitVector,
    plan: BitmapPlan,
    num_rows: int,
    row_size_bytes: Optional[int] = None,
) -> ChainLintReport:
    """Statically certify one lowered conjunction chain.

    Args:
        steps: The lowered ``(op, a, b, out)`` steps, in execution order.
        result: The chain's final result vector.
        plan: The plan-level cost model the chain must match.
        num_rows: Row count of the conjunction (every vector's width).
        row_size_bytes: Expected row padding of every vector (taken from
            the first vector seen when omitted).

    Returns:
        A :class:`ChainLintReport` when every invariant holds.

    Raises:
        PlanVerifyError: A typed subclass naming the violated invariant.
    """
    produced: Dict[int, int] = {}
    for index, (op, _a, _b, out) in enumerate(steps):
        if id(out) in produced:
            raise DanglingOperandError(
                f"step {index} rewrites the output of step {produced[id(out)]}",
                details={"step": index, "producer": produced[id(out)]},
            )
        produced[id(out)] = index

    sources: Dict[int, BulkBitVector] = {}
    row_size = row_size_bytes
    for index, (op, a, b, out) in enumerate(steps):
        if op not in BULK_OPS:
            raise DanglingOperandError(
                f"step {index} carries unknown op {op!r}",
                details={"step": index, "op": op},
            )
        operands = [a] if op == "not" else [a, b]
        if op == "not" and b is not None:
            raise DanglingOperandError(
                f"step {index}: unary 'not' carries a second operand",
                details={"step": index, "op": op},
            )
        if op != "not" and b is None:
            raise DanglingOperandError(
                f"step {index}: binary {op!r} is missing its second operand",
                details={"step": index, "op": op},
            )
        for operand in operands:
            assert operand is not None
            if operand is out:
                raise ChainCycleError(
                    f"step {index} consumes its own output in place",
                    details={"step": index, "op": op},
                )
            producer = produced.get(id(operand))
            if producer is None:
                sources[id(operand)] = operand
            elif producer >= index:
                raise ChainCycleError(
                    f"step {index} consumes the output of step {producer}, "
                    "which has not executed yet",
                    details={"step": index, "producer": producer},
                )
        for vector in (*operands, out):
            assert vector is not None
            if vector.num_bits != num_rows:
                raise WidthMismatchError(
                    f"step {index}: operand width {vector.num_bits} != "
                    f"conjunction rows {num_rows}",
                    details={
                        "step": index,
                        "num_bits": vector.num_bits,
                        "num_rows": num_rows,
                    },
                )
            if row_size is None:
                row_size = vector.row_size_bytes
            elif vector.row_size_bytes != row_size:
                raise WidthMismatchError(
                    f"step {index}: row padding {vector.row_size_bytes} != "
                    f"chain padding {row_size} — charged per-step cost would "
                    "diverge from the plan-level model",
                    details={
                        "step": index,
                        "row_size_bytes": vector.row_size_bytes,
                        "expected": row_size,
                    },
                )

    # The final result must be what the chain actually computes: the last
    # step's output, or (for a zero-step chain) a source vector.
    if steps:
        last_out = steps[-1][3]
        if result is not last_out:
            raise DanglingOperandError(
                "chain result is not the last step's output",
                details={"steps": len(steps)},
            )
    if result.num_bits != num_rows:
        raise WidthMismatchError(
            f"result width {result.num_bits} != conjunction rows {num_rows}",
            details={"num_bits": result.num_bits, "num_rows": num_rows},
        )

    # Cost-model agreement: step count and per-op breakdown must match the
    # BitmapPlan exactly — the executor charges per step, the plan-level
    # model per operation, and they may never drift.
    if len(steps) != plan.total_operations:
        raise CostModelMismatchError(
            f"chain has {len(steps)} steps but the plan charges "
            f"{plan.total_operations} operations",
            details={"steps": len(steps), "plan": plan.total_operations},
        )
    if plan.result_bits != num_rows:
        raise CostModelMismatchError(
            f"plan result_bits {plan.result_bits} != conjunction rows {num_rows}",
            details={"result_bits": plan.result_bits, "num_rows": num_rows},
        )
    chain_ops = Counter(op for op, _a, _b, _out in steps)
    plan_ops: Counter = Counter()
    for op, count in plan.operations:
        plan_ops[op] += count
    if chain_ops != plan_ops:
        raise CostModelMismatchError(
            f"chain op breakdown {dict(chain_ops)} != plan breakdown "
            f"{dict(plan_ops)}",
            details={"chain": dict(chain_ops), "plan": dict(plan_ops)},
        )

    return ChainLintReport(
        steps=len(steps), sources=len(sources), op_counts=dict(chain_ops)
    )


def lint_lowered_conjunction(
    predicates: Sequence[Predicate],
    steps: Sequence[ChainStep],
    result: BulkBitVector,
    plan: BitmapPlan,
    num_rows: int,
    row_size_bytes: Optional[int] = None,
) -> ChainLintReport:
    """Certify a lowered conjunction against its *predicate set* too.

    Beyond :func:`lint_chain`, checks that the chain shape is exactly what
    the predicates imply: ``len(values) - 1`` OR steps per predicate and
    ``len(predicates) - 1`` AND steps — so a lowering (or a future
    optimizer pass) that drops or duplicates a predicate's bitmap is
    caught even when its step count happens to match a stale plan.
    """
    report = lint_chain(steps, result, plan, num_rows, row_size_bytes)
    expected_ors = sum(len(values) - 1 for _column, values in predicates)
    expected_ands = len(predicates) - 1
    observed_ors = report.op_counts.get("or", 0)
    observed_ands = report.op_counts.get("and", 0)
    if observed_ors != expected_ors or observed_ands != expected_ands:
        raise CostModelMismatchError(
            f"predicates imply {expected_ors} OR + {expected_ands} AND steps, "
            f"chain has {observed_ors} OR + {observed_ands} AND",
            details={
                "expected": {"or": expected_ors, "and": expected_ands},
                "observed": {"or": observed_ors, "and": observed_ands},
            },
        )
    return report


@dataclass(frozen=True)
class OptimizedRequestView:
    """One request's slice of an optimizer-rewritten batch DAG.

    The batch plan optimizer (:mod:`repro.optimizer`) lowers a whole
    batch's conjunctions into one shared step DAG; this view records, per
    request, everything the linter needs to certify that request's slice
    independently of how the optimizer built it.

    Attributes:
        predicates: The request's (column, values) predicate set.
        num_rows: Row count of the request's result bitmap.
        plan_total: Operations the *unoptimized* plan would charge
            (``len(values) - 1`` ORs per predicate plus
            ``len(predicates) - 1`` ANDs).
        own_indices: Batch-step indices this request emitted (and is
            charged for).
        dep_indices: Batch-step indices of shared sub-chains this request
            consumes but another request owns.
        part_vectors: The vectors the request's finalize reads — the
            single chain result when unsplit, or one result per
            sub-chain when split across lanes (host-joined).
        host_join_ops: Host-side AND merges the finalize performs
            (``len(part_vectors) - 1`` when split, else 0).
        ops_eliminated: Device ops the optimizer removed for this request
            (``plan_total - len(own_indices) - host_join_ops``).
        shared_subchains: Sub-chains served from another request's output.
    """

    predicates: Tuple[Predicate, ...]
    num_rows: int
    plan_total: int
    own_indices: Tuple[int, ...]
    dep_indices: Tuple[int, ...]
    part_vectors: Tuple[BulkBitVector, ...]
    host_join_ops: int
    ops_eliminated: int
    shared_subchains: int = 0


@dataclass
class OptimizedBatchReport:
    """Summary of one clean optimizer-rewritten batch DAG.

    Attributes:
        steps: Device steps in the batch DAG.
        requests: Request views certified.
        shared_steps: Steps consumed by at least one non-owner request.
        ops_eliminated: Total device ops the optimizer removed.
        host_join_ops: Total host-side merge ops across requests.
    """

    steps: int = 0
    requests: int = 0
    shared_steps: int = 0
    ops_eliminated: int = 0
    host_join_ops: int = 0


def lint_optimized_batch(
    steps: Dict[int, ChainStep],
    views: Sequence[OptimizedRequestView],
    row_size_bytes: Optional[int] = None,
) -> OptimizedBatchReport:
    """Statically certify one optimizer-rewritten batch DAG.

    Extends :func:`lint_chain`'s invariants across request boundaries:

    * every step output is produced exactly once and never consumed
      before (or by) the step producing it — batch-step indices are the
      execution order, so an operand's producer must carry a smaller
      index even when producer and consumer belong to different requests;
    * every step is owned by exactly one request, every declared
      dependency is a step some *other* request owns (a shared sub-chain
      output), and a request's own/dep sets are disjoint and
      duplicate-free;
    * walking each request's part vectors back through the DAG reaches
      exactly its ``own + dep`` steps — no dangling shared output, no
      step charged but unused;
    * widths match each owning request's row count, row padding is
      uniform across the batch;
    * the per-request cost ledger balances:
      ``ops_eliminated == plan_total - len(own) - host_join_ops >= 0``
      and ``host_join_ops`` matches the split fan-in, so the batch's
      charged totals are exactly the unoptimized totals net of the
      declared elimination.

    Args:
        steps: Batch-step index → ``(op, a, b, out)``; indices are the
            submission (execution) order of the lowered primitives.
        views: One :class:`OptimizedRequestView` per optimized request.
        row_size_bytes: Expected row padding (taken from the first vector
            seen when omitted).

    Raises:
        PlanVerifyError: A typed subclass naming the violated invariant.
    """
    produced: Dict[int, int] = {}
    for index in sorted(steps):
        out = steps[index][3]
        if id(out) in produced:
            raise DanglingOperandError(
                f"step {index} rewrites the output of step {produced[id(out)]}",
                details={"step": index, "producer": produced[id(out)]},
            )
        produced[id(out)] = index

    # Ownership: every step belongs to exactly one request.
    owner: Dict[int, int] = {}
    for view_index, view in enumerate(views):
        for index in view.own_indices:
            if index not in steps:
                raise DanglingOperandError(
                    f"request {view_index} owns step {index}, which is not "
                    "in the batch",
                    details={"request": view_index, "step": index},
                )
            if index in owner:
                raise DanglingOperandError(
                    f"step {index} is owned by both request {owner[index]} "
                    f"and request {view_index}",
                    details={
                        "step": index,
                        "owners": [owner[index], view_index],
                    },
                )
            owner[index] = view_index
    unowned = sorted(set(steps) - set(owner))
    if unowned:
        raise DanglingOperandError(
            f"steps {unowned} are charged to no request in the batch",
            details={"steps": unowned},
        )

    # Per-step structure: op validity, arity, self-consumption, operands
    # produced before (across request boundaries), widths and padding.
    row_size = row_size_bytes
    for index in sorted(steps):
        op, a, b, out = steps[index]
        num_rows = views[owner[index]].num_rows
        if op not in BULK_OPS:
            raise DanglingOperandError(
                f"step {index} carries unknown op {op!r}",
                details={"step": index, "op": op},
            )
        operands = [a] if op == "not" else [a, b]
        if op == "not" and b is not None:
            raise DanglingOperandError(
                f"step {index}: unary 'not' carries a second operand",
                details={"step": index, "op": op},
            )
        if op != "not" and b is None:
            raise DanglingOperandError(
                f"step {index}: binary {op!r} is missing its second operand",
                details={"step": index, "op": op},
            )
        for operand in operands:
            assert operand is not None
            if operand is out:
                raise ChainCycleError(
                    f"step {index} consumes its own output in place",
                    details={"step": index, "op": op},
                )
            producer = produced.get(id(operand))
            if producer is not None and producer >= index:
                raise ChainCycleError(
                    f"step {index} consumes the output of step {producer}, "
                    "which has not executed yet",
                    details={"step": index, "producer": producer},
                )
        for vector in (*operands, out):
            assert vector is not None
            if vector.num_bits != num_rows:
                raise WidthMismatchError(
                    f"step {index}: operand width {vector.num_bits} != "
                    f"conjunction rows {num_rows}",
                    details={
                        "step": index,
                        "num_bits": vector.num_bits,
                        "num_rows": num_rows,
                    },
                )
            if row_size is None:
                row_size = vector.row_size_bytes
            elif vector.row_size_bytes != row_size:
                raise WidthMismatchError(
                    f"step {index}: row padding {vector.row_size_bytes} != "
                    f"chain padding {row_size} — charged per-step cost would "
                    "diverge from the plan-level model",
                    details={
                        "step": index,
                        "row_size_bytes": vector.row_size_bytes,
                        "expected": row_size,
                    },
                )

    shared_steps = 0
    total_eliminated = 0
    total_joins = 0
    for view_index, view in enumerate(views):
        own = set(view.own_indices)
        deps = set(view.dep_indices)
        if len(own) != len(view.own_indices) or len(deps) != len(view.dep_indices):
            raise DanglingOperandError(
                f"request {view_index} lists a step twice",
                details={"request": view_index},
            )
        double = sorted(own & deps)
        if double:
            raise DanglingOperandError(
                f"request {view_index} both owns and depends on steps "
                f"{double} — it would be charged for shared work",
                details={"request": view_index, "steps": double},
            )
        for index in sorted(deps):
            if index not in steps:
                raise DanglingOperandError(
                    f"request {view_index} depends on step {index}, which "
                    "no request in the batch produced",
                    details={"request": view_index, "step": index},
                )
        shared_steps += len(deps)

        # Cone closure: the part vectors must reach exactly own + deps.
        if not view.part_vectors:
            raise DanglingOperandError(
                f"request {view_index} has no result vectors",
                details={"request": view_index},
            )
        cone: set = set()
        stack: List[BulkBitVector] = list(view.part_vectors)
        while stack:
            vector = stack.pop()
            if vector.num_bits != view.num_rows:
                raise WidthMismatchError(
                    f"request {view_index}: result width {vector.num_bits} "
                    f"!= conjunction rows {view.num_rows}",
                    details={
                        "request": view_index,
                        "num_bits": vector.num_bits,
                        "num_rows": view.num_rows,
                    },
                )
            producer = produced.get(id(vector))
            if producer is None or producer in cone:
                continue
            cone.add(producer)
            op, a, b, _out = steps[producer]
            stack.append(a)
            if b is not None:
                stack.append(b)
        if cone != own | deps:
            unreached = sorted((own | deps) - cone)
            undeclared = sorted(cone - (own | deps))
            raise DanglingOperandError(
                f"request {view_index}'s result cone does not match its "
                f"declared steps (charged-but-unused={unreached}, "
                f"consumed-but-undeclared={undeclared})",
                details={
                    "request": view_index,
                    "unreached": unreached,
                    "undeclared": undeclared,
                },
            )

        # Cost ledger: host joins match the split fan-in, and the charged
        # totals are the unoptimized totals net of the declared elimination.
        expected_joins = max(0, len(view.part_vectors) - 1)
        if view.host_join_ops != expected_joins:
            raise CostModelMismatchError(
                f"request {view_index} declares {view.host_join_ops} host "
                f"joins but reads {len(view.part_vectors)} part vectors "
                f"(expected {expected_joins})",
                details={
                    "request": view_index,
                    "declared": view.host_join_ops,
                    "expected": expected_joins,
                },
            )
        expected_eliminated = view.plan_total - len(own) - view.host_join_ops
        if view.ops_eliminated != expected_eliminated or expected_eliminated < 0:
            raise CostModelMismatchError(
                f"request {view_index}'s cost ledger does not balance: "
                f"plan charges {view.plan_total} ops, request owns "
                f"{len(own)} steps + {view.host_join_ops} host joins, "
                f"declares {view.ops_eliminated} eliminated "
                f"(expected {expected_eliminated})",
                details={
                    "request": view_index,
                    "plan_total": view.plan_total,
                    "owned": len(own),
                    "host_join_ops": view.host_join_ops,
                    "declared": view.ops_eliminated,
                    "expected": expected_eliminated,
                },
            )
        total_eliminated += view.ops_eliminated
        total_joins += view.host_join_ops

    return OptimizedBatchReport(
        steps=len(steps),
        requests=len(views),
        shared_steps=shared_steps,
        ops_eliminated=total_eliminated,
        host_join_ops=total_joins,
    )


def check_scatter_coverage(
    predicates: Sequence[Predicate],
    parts: Sequence[Tuple[int, Sequence[Predicate]]],
) -> None:
    """Certify that shard-local sub-chains cover the predicate set exactly.

    Args:
        predicates: The full predicate set of the cluster-level request.
        parts: ``(shard_id, sub_predicates)`` pairs, one per scattered
            sub-request.

    Raises:
        ScatterCoverageError: A predicate is dropped, duplicated, invented,
            or a shard received an empty sub-conjunction.
    """
    want = Counter((column, tuple(values)) for column, values in predicates)
    got: Counter = Counter()
    for shard_id, sub_predicates in parts:
        if not sub_predicates:
            raise ScatterCoverageError(
                f"shard {shard_id} received an empty sub-conjunction",
                details={"shard": shard_id},
            )
        for column, values in sub_predicates:
            got[(column, tuple(values))] += 1
    if got != want:
        missing = sorted(set(want) - set(got))
        extra = sorted(set(got) - set(want))
        duplicated = sorted(key for key in got if got[key] > want.get(key, 0))
        raise ScatterCoverageError(
            "scattered sub-conjunctions do not cover the predicate set "
            f"exactly once (missing={missing}, extra={extra}, "
            f"duplicated={duplicated})",
            details={
                "missing": missing,
                "extra": extra,
                "duplicated": duplicated,
            },
        )


def check_write_scatter(
    charged: Sequence[str],
    parts: Sequence[Tuple[int, Sequence[str]]],
) -> None:
    """Certify a scattered write's column coverage before any shard runs.

    Unlike read scatter (exactly-once), a *replicated* column legitimately
    appears in several parts — each replica's device pays to maintain its
    copy.  The invariants are: every charged column lands on at least one
    shard, and no part charges a column the write does not affect.

    Args:
        charged: The columns the cluster-level write is charged for.
        parts: ``(shard_id, part_columns)`` pairs, one per scatter part.

    Raises:
        WritePlanError: A charged column is dropped, or a part charges an
            unaffected column.
    """
    want = set(charged)
    covered: set = set()
    for shard_id, columns in parts:
        extra = sorted(set(columns) - want)
        if extra:
            raise WritePlanError(
                f"shard {shard_id}'s write part charges columns {extra} "
                "the write does not affect",
                details={"shard": shard_id, "extra": extra},
            )
        covered.update(columns)
    missing = sorted(want - covered)
    if missing:
        raise WritePlanError(
            f"scattered write drops charged columns {missing} — no shard "
            "would pay their maintenance",
            details={"missing": missing},
        )


def check_failover_reoffer(
    router,
    failed_shard: int,
    target_shards: Sequence[int],
) -> None:
    """Certify a failover migration's targets before the re-offer lands.

    Work cancelled off a failed/draining shard must go to shards that can
    actually serve it: never back to the shard it just left, and never to
    a shard that is itself down, draining, or retired.

    Args:
        router: The cluster's :class:`~repro.cluster.router.ShardRouter`
            (duck-typed — only ``is_routable`` is consulted, keeping this
            module import-free of the cluster package).
        failed_shard: The shard the work was cancelled off.
        target_shards: Shard ids the replacement parts are offered to.

    Raises:
        FailoverError: A target is the failed shard itself or unroutable.
    """
    for shard in target_shards:
        if shard == failed_shard:
            raise FailoverError(
                f"failover re-offer targets the failed shard {shard} itself",
                details={"failed_shard": failed_shard, "target": shard},
            )
        if not router.is_routable(shard):
            raise FailoverError(
                f"failover re-offer targets unroutable shard {shard}",
                details={"failed_shard": failed_shard, "target": shard},
            )


def lint_write_plan(outcome) -> None:
    """Certify one lowered write's charge against its declared outcome.

    ``outcome`` is the :class:`~repro.storage.maintenance.WriteOutcome`
    the planner got back from
    :meth:`~repro.storage.maintenance.MaintenancePolicy.lower_write`; the
    checks pin the ledger the write path reports against the primitives
    it actually charges:

    * the charged columns are a subset of the index's indexed columns;
    * every resolved strategy is ``"eager"`` or ``"lazy"``;
    * the number of charged bulk ops equals the declared
      ``planes_charged`` (and is zero when every column went lazy);
    * the row-traffic copy is present exactly when ``bytes_moved`` is
      positive, and for exactly that many bytes;
    * appends/deletes declare index-wide invalidation, updates do not.

    Raises:
        WritePlanError: Any of the invariants fails.
    """
    from repro.service.requests import BulkOpRequest, CopyRequest  # local: avoid cycle

    request = outcome.request
    indexed = set(request.index.indexed_columns())
    stray = sorted(set(outcome.strategies) - indexed)
    if stray:
        raise WritePlanError(
            f"write charges maintenance for non-indexed columns {stray}",
            details={"columns": stray},
        )
    bad = {c: s for c, s in outcome.strategies.items() if s not in ("eager", "lazy")}
    if bad:
        raise WritePlanError(
            f"write resolved unknown strategies {bad}",
            details={"strategies": bad},
        )
    plane_ops = sum(1 for p in outcome.primitives if isinstance(p, BulkOpRequest))
    if plane_ops != outcome.planes_charged:
        raise WritePlanError(
            f"write charges {plane_ops} plane ops but declares "
            f"{outcome.planes_charged} planes",
            details={"charged": plane_ops, "declared": outcome.planes_charged},
        )
    if plane_ops and all(s == "lazy" for s in outcome.strategies.values()):
        raise WritePlanError(
            f"lazy-only write still charges {plane_ops} plane ops",
            details={"charged": plane_ops},
        )
    copies = [p for p in outcome.primitives if isinstance(p, CopyRequest)]
    copy_bytes = sum(p.num_bytes for p in copies)
    if (outcome.bytes_moved > 0) != bool(copies) or copy_bytes != outcome.bytes_moved:
        raise WritePlanError(
            f"write declares {outcome.bytes_moved} bytes of row traffic but "
            f"charges {copy_bytes} across {len(copies)} copies",
            details={"declared": outcome.bytes_moved, "charged": copy_bytes},
        )
    expect_all = request.kind in ("append", "delete")
    if outcome.invalidate_all != expect_all:
        raise WritePlanError(
            f"{request.kind} declares invalidate_all={outcome.invalidate_all} "
            f"(expected {expect_all})",
            details={"kind": request.kind, "declared": outcome.invalidate_all},
        )


def lint_cache_consistency(cache, index) -> None:
    """Certify every live cache entry of ``index`` against the index.

    Run by the planner after a write's invalidation (and directly by
    tests): surviving entries must not depend on a dirty column, must
    record the index's current row count, and must store exactly the
    packed byte length that row count implies — any of these failing
    means a stale bitmap could be served as a hit.

    Args:
        cache: The :class:`~repro.cache.ResultCache` to certify.
        index: The index (or shard view) whose entries to check.

    Raises:
        CacheConsistencyError: A live entry violates an invariant.
    """
    dirty = set(index.dirty_columns()) if hasattr(index, "dirty_columns") else set()
    num_rows = index.num_rows
    packed = (num_rows + 7) // 8
    for key, columns, entry_rows, nbytes in cache.live_for(index):
        stale = sorted(dirty.intersection(columns))
        if stale:
            raise CacheConsistencyError(
                f"live cache entry {key!r} depends on dirty columns {stale}",
                details={"key": repr(key), "columns": stale},
            )
        if entry_rows != num_rows:
            raise CacheConsistencyError(
                f"live cache entry {key!r} records {entry_rows} rows but the "
                f"index has {num_rows}",
                details={"key": repr(key), "entry": entry_rows, "index": num_rows},
            )
        if nbytes != (entry_rows + 7) // 8 or nbytes != packed:
            raise CacheConsistencyError(
                f"live cache entry {key!r} stores {nbytes} bytes, expected "
                f"{packed} packed bytes for {num_rows} rows",
                details={"key": repr(key), "nbytes": nbytes, "expected": packed},
            )
