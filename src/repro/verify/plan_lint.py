"""Static linter for lowered query plans (conjunction chains, scatters).

Every tier lowers conjunctions through one path —
:func:`repro.api.plans.lower_conjunction_steps` — and until now the only
thing certifying a lowered chain was *dynamic*: property tests compare
sampled functional results against the host evaluation.  This module
checks the structural invariants **statically**, before a single step
executes, so plan-rewriting passes (CSE, sub-chain splitting, shard
re-placement) can be certified independently of what they compute:

* **Topology** — the step chain is acyclic and topologically ordered:
  every operand is either a *source* vector (a materialized bitmap plane)
  or the output of an earlier step; every output is produced exactly once
  and never feeds its own step.
* **Widths** — every vector in the chain carries exactly the conjunction's
  row count and the target device's row padding, end to end.
* **Cost model** — the chain's step count and per-op breakdown match the
  :class:`~repro.database.bitmap_index.BitmapPlan` the plan-level cost
  model charges (the invariant the property tests pin only dynamically),
  and match what the predicate set itself implies (``len(values) - 1``
  ORs per predicate, ``len(predicates) - 1`` ANDs).
* **Scatter coverage** — the shard-local sub-conjunctions of a scattered
  request cover the full predicate set exactly once: no predicate
  dropped, none applied twice (either would silently corrupt the gather
  AND).

All checks raise typed :class:`~repro.verify.errors.PlanVerifyError`
subclasses; a clean chain returns a :class:`ChainLintReport` summary.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ambit.bitvector import BulkBitVector
from repro.database.bitmap_index import BitmapPlan
from repro.verify.errors import (
    ChainCycleError,
    CostModelMismatchError,
    DanglingOperandError,
    ScatterCoverageError,
    WidthMismatchError,
)

#: Bulk bitwise ops a lowered step may carry (the engine's op set).
BULK_OPS = frozenset({"not", "and", "or", "nand", "nor", "xor", "xnor"})

#: A lowered step as produced by ``lower_conjunction_steps``:
#: ``(op, a, b, out)`` over host-only vectors.
ChainStep = Tuple[str, BulkBitVector, Optional[BulkBitVector], BulkBitVector]

#: One predicate: (column, values) — each value contributes an OR operand.
Predicate = Tuple[str, Tuple[int, ...]]


@dataclass
class ChainLintReport:
    """Summary of one clean lowered chain.

    Attributes:
        steps: Steps in the chain.
        sources: Distinct source vectors (materialized bitmap planes)
            the chain consumes.
        op_counts: Steps per op kind.
    """

    steps: int = 0
    sources: int = 0
    op_counts: Dict[str, int] = field(default_factory=dict)


def lint_chain(
    steps: Sequence[ChainStep],
    result: BulkBitVector,
    plan: BitmapPlan,
    num_rows: int,
    row_size_bytes: Optional[int] = None,
) -> ChainLintReport:
    """Statically certify one lowered conjunction chain.

    Args:
        steps: The lowered ``(op, a, b, out)`` steps, in execution order.
        result: The chain's final result vector.
        plan: The plan-level cost model the chain must match.
        num_rows: Row count of the conjunction (every vector's width).
        row_size_bytes: Expected row padding of every vector (taken from
            the first vector seen when omitted).

    Returns:
        A :class:`ChainLintReport` when every invariant holds.

    Raises:
        PlanVerifyError: A typed subclass naming the violated invariant.
    """
    produced: Dict[int, int] = {}
    for index, (op, _a, _b, out) in enumerate(steps):
        if id(out) in produced:
            raise DanglingOperandError(
                f"step {index} rewrites the output of step {produced[id(out)]}",
                details={"step": index, "producer": produced[id(out)]},
            )
        produced[id(out)] = index

    sources: Dict[int, BulkBitVector] = {}
    row_size = row_size_bytes
    for index, (op, a, b, out) in enumerate(steps):
        if op not in BULK_OPS:
            raise DanglingOperandError(
                f"step {index} carries unknown op {op!r}",
                details={"step": index, "op": op},
            )
        operands = [a] if op == "not" else [a, b]
        if op == "not" and b is not None:
            raise DanglingOperandError(
                f"step {index}: unary 'not' carries a second operand",
                details={"step": index, "op": op},
            )
        if op != "not" and b is None:
            raise DanglingOperandError(
                f"step {index}: binary {op!r} is missing its second operand",
                details={"step": index, "op": op},
            )
        for operand in operands:
            assert operand is not None
            if operand is out:
                raise ChainCycleError(
                    f"step {index} consumes its own output in place",
                    details={"step": index, "op": op},
                )
            producer = produced.get(id(operand))
            if producer is None:
                sources[id(operand)] = operand
            elif producer >= index:
                raise ChainCycleError(
                    f"step {index} consumes the output of step {producer}, "
                    "which has not executed yet",
                    details={"step": index, "producer": producer},
                )
        for vector in (*operands, out):
            assert vector is not None
            if vector.num_bits != num_rows:
                raise WidthMismatchError(
                    f"step {index}: operand width {vector.num_bits} != "
                    f"conjunction rows {num_rows}",
                    details={
                        "step": index,
                        "num_bits": vector.num_bits,
                        "num_rows": num_rows,
                    },
                )
            if row_size is None:
                row_size = vector.row_size_bytes
            elif vector.row_size_bytes != row_size:
                raise WidthMismatchError(
                    f"step {index}: row padding {vector.row_size_bytes} != "
                    f"chain padding {row_size} — charged per-step cost would "
                    "diverge from the plan-level model",
                    details={
                        "step": index,
                        "row_size_bytes": vector.row_size_bytes,
                        "expected": row_size,
                    },
                )

    # The final result must be what the chain actually computes: the last
    # step's output, or (for a zero-step chain) a source vector.
    if steps:
        last_out = steps[-1][3]
        if result is not last_out:
            raise DanglingOperandError(
                "chain result is not the last step's output",
                details={"steps": len(steps)},
            )
    if result.num_bits != num_rows:
        raise WidthMismatchError(
            f"result width {result.num_bits} != conjunction rows {num_rows}",
            details={"num_bits": result.num_bits, "num_rows": num_rows},
        )

    # Cost-model agreement: step count and per-op breakdown must match the
    # BitmapPlan exactly — the executor charges per step, the plan-level
    # model per operation, and they may never drift.
    if len(steps) != plan.total_operations:
        raise CostModelMismatchError(
            f"chain has {len(steps)} steps but the plan charges "
            f"{plan.total_operations} operations",
            details={"steps": len(steps), "plan": plan.total_operations},
        )
    if plan.result_bits != num_rows:
        raise CostModelMismatchError(
            f"plan result_bits {plan.result_bits} != conjunction rows {num_rows}",
            details={"result_bits": plan.result_bits, "num_rows": num_rows},
        )
    chain_ops = Counter(op for op, _a, _b, _out in steps)
    plan_ops: Counter = Counter()
    for op, count in plan.operations:
        plan_ops[op] += count
    if chain_ops != plan_ops:
        raise CostModelMismatchError(
            f"chain op breakdown {dict(chain_ops)} != plan breakdown "
            f"{dict(plan_ops)}",
            details={"chain": dict(chain_ops), "plan": dict(plan_ops)},
        )

    return ChainLintReport(
        steps=len(steps), sources=len(sources), op_counts=dict(chain_ops)
    )


def lint_lowered_conjunction(
    predicates: Sequence[Predicate],
    steps: Sequence[ChainStep],
    result: BulkBitVector,
    plan: BitmapPlan,
    num_rows: int,
    row_size_bytes: Optional[int] = None,
) -> ChainLintReport:
    """Certify a lowered conjunction against its *predicate set* too.

    Beyond :func:`lint_chain`, checks that the chain shape is exactly what
    the predicates imply: ``len(values) - 1`` OR steps per predicate and
    ``len(predicates) - 1`` AND steps — so a lowering (or a future
    optimizer pass) that drops or duplicates a predicate's bitmap is
    caught even when its step count happens to match a stale plan.
    """
    report = lint_chain(steps, result, plan, num_rows, row_size_bytes)
    expected_ors = sum(len(values) - 1 for _column, values in predicates)
    expected_ands = len(predicates) - 1
    observed_ors = report.op_counts.get("or", 0)
    observed_ands = report.op_counts.get("and", 0)
    if observed_ors != expected_ors or observed_ands != expected_ands:
        raise CostModelMismatchError(
            f"predicates imply {expected_ors} OR + {expected_ands} AND steps, "
            f"chain has {observed_ors} OR + {observed_ands} AND",
            details={
                "expected": {"or": expected_ors, "and": expected_ands},
                "observed": {"or": observed_ors, "and": observed_ands},
            },
        )
    return report


def check_scatter_coverage(
    predicates: Sequence[Predicate],
    parts: Sequence[Tuple[int, Sequence[Predicate]]],
) -> None:
    """Certify that shard-local sub-chains cover the predicate set exactly.

    Args:
        predicates: The full predicate set of the cluster-level request.
        parts: ``(shard_id, sub_predicates)`` pairs, one per scattered
            sub-request.

    Raises:
        ScatterCoverageError: A predicate is dropped, duplicated, invented,
            or a shard received an empty sub-conjunction.
    """
    want = Counter((column, tuple(values)) for column, values in predicates)
    got: Counter = Counter()
    for shard_id, sub_predicates in parts:
        if not sub_predicates:
            raise ScatterCoverageError(
                f"shard {shard_id} received an empty sub-conjunction",
                details={"shard": shard_id},
            )
        for column, values in sub_predicates:
            got[(column, tuple(values))] += 1
    if got != want:
        missing = sorted(set(want) - set(got))
        extra = sorted(set(got) - set(want))
        duplicated = sorted(key for key in got if got[key] > want.get(key, 0))
        raise ScatterCoverageError(
            "scattered sub-conjunctions do not cover the predicate set "
            f"exactly once (missing={missing}, extra={extra}, "
            f"duplicated={duplicated})",
            details={
                "missing": missing,
                "extra": extra,
                "duplicated": duplicated,
            },
        )
