"""Race detector and accounting auditor for lane schedules.

The executor's correctness story says a :class:`~repro.service.lanes
.LaneSchedule` only ever *moves* work in time: requests serialize on each
bank lane, start no earlier than their dispatch, finish no later than the
batch-synchronous barrier would have finished them, and the busy/union/
overlap accounting is exactly what the placed intervals imply.  Nothing
checked that independently — until now the schedule produced both the
timeline *and* the accounting, so a bug would corrupt both consistently.

:class:`ScheduleSanitizer` is the independent checker: it replays the
schedule's interval log (:attr:`LaneSchedule.log`) through its own
deterministic timeline and certifies, per placement:

* **Bank hazards** — no two placements overlap on one lane (the PIM
  analogue of a data race: two requests driving the same bank's rows at
  once would be electrically meaningless);
* **Causality** — no start before the dispatch release, finish is exactly
  start + latency, the start matches the deterministic replay (any drift
  means the schedule and its log disagree), and every completion stays
  within the ``pipeline=False`` barrier bound — the batch's release (or
  the previous horizon) plus its serial latency — so pipelining provably
  never *delays* work;
* **Accounting conservation** — per-lane busy sums, the device-busy
  interval union, the cross-batch overlap, and the request count recorded
  by the schedule reconcile with the log that produced them.

The checker is *incremental*: an executor constructed with
``sanitize=True`` keeps one sanitizer per schedule and feeds it only the
placements each new batch appended, so certifying every dispatch is
O(batch), not O(history).  :func:`check_schedule` runs the same audit over
a whole schedule in one shot (the standalone-report path used by
:mod:`repro.analysis.audit`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

from repro.verify.errors import (
    AccountingError,
    CausalityError,
    LaneHazardError,
    ScheduleVerifyError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily: repro.service.executor imports this module at its
    # top level, so a runtime import back into repro.service would cycle.
    from repro.service.lanes import LanePlacement, LaneSchedule

#: Lane key type (mirrors :data:`repro.service.lanes.LaneKey`, duplicated
#: here so the checker never imports the module it certifies at runtime).
LaneKey = Hashable


def _tolerance(*values: float) -> float:
    """Absolute comparison slack for accumulated virtual-time floats."""
    scale = max((abs(v) for v in values), default=0.0)
    return max(1e-6, 1e-9 * scale)


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= _tolerance(a, b)


class _IntervalUnion:
    """Disjoint sorted interval union (mirrors LaneSchedule's, independently)."""

    def __init__(self) -> None:
        self.total = 0.0
        self._starts: List[float] = []
        self._ends: List[float] = []

    def add(self, start: float, finish: float) -> None:
        if finish <= start:
            return
        starts, ends = self._starts, self._ends
        i = bisect.bisect_left(ends, start)
        j = bisect.bisect_right(starts, finish)
        covered = 0.0
        new_start, new_end = start, finish
        for k in range(i, j):
            covered += max(0.0, min(ends[k], finish) - max(starts[k], start))
            new_start = min(new_start, starts[k])
            new_end = max(new_end, ends[k])
        self.total += (finish - start) - covered
        starts[i:j] = [new_start]
        ends[i:j] = [new_end]


@dataclass
class ScheduleCheckReport:
    """Outcome of auditing a lane schedule.

    Attributes:
        placements: Log entries audited.
        batches: Batch windows observed in the log.
        lanes: Distinct lanes the log touched.
        busy_union_ns: Independently recomputed device-busy union.
        cross_batch_overlap_ns: Independently recomputed overlap.
        per_lane_busy_ns: Independently recomputed per-lane busy sums.
        violations: Typed errors found (empty when the schedule is clean;
            only populated by a non-raising audit).
    """

    placements: int = 0
    batches: int = 0
    lanes: int = 0
    busy_union_ns: float = 0.0
    cross_batch_overlap_ns: float = 0.0
    per_lane_busy_ns: Dict[LaneKey, float] = field(default_factory=dict)
    violations: List[ScheduleVerifyError] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no invariant was violated."""
        return not self.violations


class ScheduleSanitizer:
    """Incremental replay checker over one schedule's interval log.

    Args:
        raise_on_error: Raise the first violation as its typed
            :class:`~repro.verify.errors.ScheduleVerifyError` subclass
            (the ``sanitize=True`` executor path).  When False, findings
            are collected into the report instead (the audit-report path);
            replay then continues from the *recorded* values so one defect
            does not cascade into dozens of derived findings.
    """

    def __init__(self, raise_on_error: bool = True) -> None:
        self.raise_on_error = raise_on_error
        self.violations: List[ScheduleVerifyError] = []
        self._consumed = 0
        self._horizon: Dict[LaneKey, float] = {}
        self._busy: Dict[LaneKey, float] = {}
        self._union = _IntervalUnion()
        self._overlap = 0.0
        self._batch_index: Optional[int] = None
        self._batch_prev_horizon = 0.0
        self._batch_release = 0.0
        self._batch_serial = 0.0
        self._batches_seen = 0

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def _fail(self, error: ScheduleVerifyError) -> None:
        if self.raise_on_error:
            raise error
        self.violations.append(error)

    def _replay(self, index: int, placed: LanePlacement) -> None:
        """Replay one placement and certify it against the log entry."""
        if placed.latency_ns < 0.0:
            self._fail(
                CausalityError(
                    f"placement {index} carries negative latency "
                    f"{placed.latency_ns}",
                    details={"placement": index},
                )
            )
        if placed.batch_index != self._batch_index:
            # A new batch window: everything before it is the "previous
            # batch" whose completion horizon bounds this batch's overlap
            # and barrier drift.
            self._batch_index = placed.batch_index
            self._batch_prev_horizon = max(self._horizon.values(), default=0.0)
            self._batch_release = placed.release_ns
            self._batch_serial = 0.0
            self._batches_seen += 1
        self._batch_release = max(self._batch_release, placed.release_ns)
        self._batch_serial += placed.latency_ns

        # Hazard: starting before a lane it occupies has drained would
        # overlap two requests on that bank.
        for key in placed.lanes:
            lane_busy_until = self._horizon.get(key, 0.0)
            if placed.start_ns < lane_busy_until - _tolerance(lane_busy_until):
                self._fail(
                    LaneHazardError(
                        f"placement {index} starts at {placed.start_ns} on lane "
                        f"{key!r} while it is busy until {lane_busy_until}",
                        details={
                            "placement": index,
                            "lane": key,
                            "start_ns": placed.start_ns,
                            "busy_until_ns": lane_busy_until,
                        },
                    )
                )

        # Causality: release <= start, finish = start + latency, and the
        # start equals the deterministic replay (released, all lanes
        # drained) — any drift means schedule and log disagree.
        if placed.start_ns < placed.release_ns - _tolerance(placed.release_ns):
            self._fail(
                CausalityError(
                    f"placement {index} starts at {placed.start_ns} before its "
                    f"release at {placed.release_ns}",
                    details={"placement": index},
                )
            )
        if not _close(placed.finish_ns, placed.start_ns + placed.latency_ns):
            self._fail(
                CausalityError(
                    f"placement {index} finish {placed.finish_ns} != start "
                    f"{placed.start_ns} + latency {placed.latency_ns}",
                    details={"placement": index},
                )
            )
        expected_start = placed.release_ns
        for key in placed.lanes:
            expected_start = max(expected_start, self._horizon.get(key, 0.0))
        if not _close(placed.start_ns, expected_start):
            self._fail(
                CausalityError(
                    f"placement {index} starts at {placed.start_ns}, replay "
                    f"expects {expected_start} (schedule drift)",
                    details={
                        "placement": index,
                        "start_ns": placed.start_ns,
                        "expected_ns": expected_start,
                    },
                )
            )

        # Barrier bound: a pipeline=False executor would have started this
        # batch once every lane drained (or at its release, whichever is
        # later) and finished it within its serial latency — pipelining
        # may only move completions *earlier* than that.
        barrier_start = max(self._batch_prev_horizon, self._batch_release)
        bound = barrier_start + self._batch_serial
        if placed.finish_ns > bound + _tolerance(bound):
            self._fail(
                CausalityError(
                    f"placement {index} finishes at {placed.finish_ns}, past "
                    f"the batch-synchronous barrier bound {bound}",
                    details={
                        "placement": index,
                        "finish_ns": placed.finish_ns,
                        "barrier_bound_ns": bound,
                    },
                )
            )

        # Advance the replay timeline from the *recorded* values so a
        # collected (non-raising) violation does not cascade.
        for key in placed.lanes:
            self._horizon[key] = max(self._horizon.get(key, 0.0), placed.finish_ns)
            self._busy[key] = self._busy.get(key, 0.0) + placed.latency_ns
        self._union.add(placed.start_ns, placed.finish_ns)
        self._overlap += max(
            0.0, min(placed.finish_ns, self._batch_prev_horizon) - placed.start_ns
        )

    def _reconcile(self, schedule: LaneSchedule) -> None:
        """Certify the schedule's aggregate accounting against the replay."""
        if schedule.requests != self._consumed:
            self._fail(
                AccountingError(
                    f"schedule counts {schedule.requests} requests but its log "
                    f"holds {self._consumed} placements",
                    details={"requests": schedule.requests, "log": self._consumed},
                )
            )
        for key, busy in schedule.busy.items():
            replayed = self._busy.get(key, 0.0)
            if not _close(busy, replayed):
                self._fail(
                    AccountingError(
                        f"lane {key!r} records {busy} ns busy; its placements "
                        f"sum to {replayed} ns",
                        details={"lane": key, "recorded": busy, "replayed": replayed},
                    )
                )
        for key, horizon in schedule.horizon.items():
            replayed = self._horizon.get(key, 0.0)
            if not _close(horizon, replayed):
                self._fail(
                    AccountingError(
                        f"lane {key!r} horizon {horizon} != replayed {replayed}",
                        details={"lane": key, "recorded": horizon, "replayed": replayed},
                    )
                )
        if not _close(schedule.busy_union_ns, self._union.total):
            self._fail(
                AccountingError(
                    f"device-busy union {schedule.busy_union_ns} ns does not "
                    f"reconcile with the placed intervals ({self._union.total} ns)",
                    details={
                        "recorded": schedule.busy_union_ns,
                        "replayed": self._union.total,
                    },
                )
            )
        # Cross-batch overlap is only accumulated onto *persistent*
        # (pipelined) schedules; a throwaway barrier schedule must record 0.
        expected_overlap = self._overlap if schedule.batches > 0 else 0.0
        if not _close(schedule.cross_batch_overlap_ns, expected_overlap):
            self._fail(
                AccountingError(
                    f"cross-batch overlap {schedule.cross_batch_overlap_ns} ns "
                    f"does not reconcile with the replay ({expected_overlap} ns)",
                    details={
                        "recorded": schedule.cross_batch_overlap_ns,
                        "replayed": expected_overlap,
                    },
                )
            )

    def check(self, schedule: LaneSchedule) -> ScheduleCheckReport:
        """Audit the schedule's log entries not yet consumed, then the
        aggregate accounting; returns the (cumulative) report."""
        log = schedule.log
        while self._consumed < len(log):
            placed = log[self._consumed]
            self._consumed += 1
            self._replay(self._consumed - 1, placed)
        self._reconcile(schedule)
        return self.report()

    def report(self) -> ScheduleCheckReport:
        """Snapshot of everything audited so far."""
        return ScheduleCheckReport(
            placements=self._consumed,
            batches=self._batches_seen,
            lanes=len(self._horizon),
            busy_union_ns=self._union.total,
            cross_batch_overlap_ns=self._overlap,
            per_lane_busy_ns=dict(self._busy),
            violations=list(self.violations),
        )


def check_schedule(
    schedule: LaneSchedule, raise_on_error: bool = True
) -> ScheduleCheckReport:
    """Audit one whole lane schedule in a single pass.

    Args:
        schedule: The schedule to audit (its full interval log is replayed).
        raise_on_error: Raise the first violation (default), or collect
            every finding into the returned report's ``violations``.

    Returns:
        The audit report (clean, or carrying the collected violations).

    Raises:
        ScheduleVerifyError: A typed subclass naming the first violated
            invariant, when ``raise_on_error``.
    """
    return ScheduleSanitizer(raise_on_error=raise_on_error).check(schedule)
