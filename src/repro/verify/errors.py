"""Typed error hierarchy of the static verification layer.

Every checker in :mod:`repro.verify` rejects ill-formed input by raising a
subclass of :class:`VerifyError`, so callers (and tests) can tell *which*
invariant broke without parsing messages: plan-structure defects raise
:class:`PlanVerifyError` subclasses, schedule defects raise
:class:`ScheduleVerifyError` subclasses.  Each error carries a free-form
``details`` mapping naming the offending step/placement/lane so reports
can render the finding without re-deriving it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class VerifyError(Exception):
    """Base of every static-verification rejection.

    Args:
        message: Human-readable description of the violated invariant.
        details: Structured context (step index, lane key, expected vs
            observed values) for reports and debugging.
    """

    def __init__(self, message: str, details: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(message)
        self.details: Dict[str, Any] = dict(details or {})

    #: Short rule identifier (stable across message wording changes).
    rule = "verify"


# ----------------------------------------------------------------------
# Plan-structure defects (repro.verify.plan_lint)
# ----------------------------------------------------------------------
class PlanVerifyError(VerifyError):
    """A lowered plan/chain violates a structural invariant."""

    rule = "plan"


class ChainCycleError(PlanVerifyError):
    """A step consumes an operand produced only by a later step (or by
    itself) — the dependency chain is not acyclic/topologically ordered."""

    rule = "chain-cycle"


class DanglingOperandError(PlanVerifyError):
    """A step's operand is neither a source plane nor an earlier step's
    output, or an output vector is produced more than once."""

    rule = "dangling-operand"


class WidthMismatchError(PlanVerifyError):
    """Operand widths or row padding disagree along the chain."""

    rule = "width-mismatch"


class CostModelMismatchError(PlanVerifyError):
    """The chain's step count (or per-op breakdown) disagrees with the
    :class:`~repro.database.bitmap_index.BitmapPlan` cost model."""

    rule = "cost-model-mismatch"


class ScatterCoverageError(PlanVerifyError):
    """The shard-local sub-chains of a scattered conjunction do not cover
    the full predicate set exactly once."""

    rule = "scatter-coverage"


class WritePlanError(PlanVerifyError):
    """A lowered write's charged maintenance disagrees with its declared
    outcome: plane-op count vs planes charged, charged columns outside the
    index, a lazy column charged device ops, or a scattered write whose
    parts drop or invent charged columns."""

    rule = "write-plan"


class CacheConsistencyError(PlanVerifyError):
    """A live result-cache entry violates a consistency invariant: it
    depends on a column whose planes are dirty, records a row count the
    index no longer has, or stores a bitmap of the wrong packed length."""

    rule = "cache-consistency"


class FailoverError(PlanVerifyError):
    """A failover re-offer targets the failed/draining shard itself or a
    shard that is not routable — migrated work would land right back on
    a dead queue."""

    rule = "failover"


# ----------------------------------------------------------------------
# Schedule defects (repro.verify.schedule_check)
# ----------------------------------------------------------------------
class ScheduleVerifyError(VerifyError):
    """A lane schedule violates a hazard/causality/accounting invariant."""

    rule = "schedule"


class LaneHazardError(ScheduleVerifyError):
    """Two placements overlap in time on one lane (a bank race)."""

    rule = "lane-hazard"


class CausalityError(ScheduleVerifyError):
    """A placement starts before its release, finishes before it starts,
    drifts from the deterministic replay of its schedule, or completes
    past the batch-synchronous barrier bound."""

    rule = "causality"


class AccountingError(ScheduleVerifyError):
    """The schedule's busy/union/overlap accounting does not reconcile
    with the placements in its interval log."""

    rule = "accounting"
