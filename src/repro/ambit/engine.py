"""The Ambit execution engine.

The engine executes the seven bulk bitwise operations (NOT, AND, OR, NAND,
NOR, XOR, XNOR) on :class:`~repro.ambit.bitvector.BulkBitVector` operands.

Two execution paths share one command-sequence model:

* **Functional path** (``functional=True``): every primitive is actually
  performed on the simulated DRAM banks — rows are copied with AAPs,
  combined with triple-row activations, complemented through the
  dual-contact rows — and the result vector's value is read back from the
  banks.  This path is exact but row-by-row, so it is used by tests and
  small examples.
* **Analytical path** (default): the result value is computed directly with
  NumPy (bit-exactly the same outcome), while latency and energy are charged
  from the *same* primitive counts the functional path would issue.  This
  path makes 32 MiB operands cheap to benchmark.

Primitive-count model (from the Ambit command sequences):

======  ==========================  =====================
op      command sequence            primitives
======  ==========================  =====================
not     AAP(A, DCC); AAP(!DCC, R)          2 AAP
and     AAP(A,T0); AAP(B,T1); AAP(C0,T2); TRA+AAP(T0,R)   3 AAP + 1 TRA
or      same with C1                        3 AAP + 1 TRA
nand    and + NOT through DCC               4 AAP + 1 TRA
nor     or  + NOT through DCC               4 AAP + 1 TRA
xor     (A and !B) or (!A and B)            5 AAP + 2 TRA
xnor    complement of xor                   5 AAP + 2 TRA
======  ==========================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.ambit.allocator import RowAllocation, RowAllocator, RowPlacement
from repro.ambit.bitvector import BulkBitVector, mask_padding_bytes
from repro.ambit.rowgroups import AmbitSubarrayLayout
from repro.analysis.metrics import OperationMetrics
from repro.dram.bank import Bank
from repro.dram.device import DramDevice

#: (number of AAP primitives, number of TRA primitives) per row chunk.
AMBIT_PRIMITIVE_COUNTS: Dict[str, Tuple[int, int]] = {
    "not": (2, 0),
    "and": (3, 1),
    "or": (3, 1),
    "nand": (4, 1),
    "nor": (4, 1),
    "xor": (5, 2),
    "xnor": (5, 2),
}

#: Operations that take two input vectors.
BINARY_OPS = ("and", "or", "nand", "nor", "xor", "xnor")
#: Operations that take a single input vector.
UNARY_OPS = ("not",)

#: NumPy reference implementations used by the analytical path and by the
#: functional path's self-check.
_NUMPY_OPS = {
    "not": lambda a, b: np.bitwise_not(a),
    "and": np.bitwise_and,
    "or": np.bitwise_or,
    "nand": lambda a, b: np.bitwise_not(np.bitwise_and(a, b)),
    "nor": lambda a, b: np.bitwise_not(np.bitwise_or(a, b)),
    "xor": np.bitwise_xor,
    "xnor": lambda a, b: np.bitwise_not(np.bitwise_xor(a, b)),
}


def reference_result(op: str, a: BulkBitVector, b: Optional[BulkBitVector]) -> np.ndarray:
    """Masked NumPy reference of ``op(a, b)`` over the full padded storage.

    Complementing operations set the padding bits past ``a.num_bits``; those
    are masked here so that the analytical path, the functional path, and
    every verification compare the same bytes.
    """
    expected = _NUMPY_OPS[op](a.data, b.data if b is not None else None).astype(np.uint8)
    return mask_padding_bytes(expected, a.num_bits)


@dataclass
class AmbitConfig:
    """Tunable execution parameters of the Ambit engine.

    Attributes:
        banks_parallel: Number of banks the controller keeps busy
            concurrently.  The DDR command bus has ample headroom for AAP
            sequences, so this defaults to every bank in the device; the
            bank-count ablation (A1) sweeps it.
        verify_functional: When True, the functional path cross-checks each
            row chunk against the NumPy reference and raises on mismatch.
        vectorized_functional: When True, the functional path processes all
            row chunks of an operation with single NumPy calls (and charges
            the same commands in bulk) instead of walking the chunks through
            the row-level AAP/TRA simulation one by one.  Bit-exact with the
            row-level path and identical in latency/energy; the batch
            service layer enables it to keep large batches cheap.
    """

    banks_parallel: Optional[int] = None
    verify_functional: bool = True
    vectorized_functional: bool = False


class AmbitEngine:
    """Executes bulk bitwise operations in (simulated) DRAM.

    Args:
        device: DRAM device to operate on (defaults to dual-channel DDR3).
        config: Execution parameters.
        allocator: Row allocator; created on the device when omitted.
    """

    def __init__(
        self,
        device: Optional[DramDevice] = None,
        config: Optional[AmbitConfig] = None,
        allocator: Optional[RowAllocator] = None,
    ) -> None:
        self.device = device or DramDevice.ddr3()
        self.config = config or AmbitConfig()
        self.allocator = allocator or RowAllocator(self.device)
        self.layout = self.allocator.layout
        if self.config.banks_parallel is None:
            self.config.banks_parallel = self.device.geometry.banks_total
        self._control_rows_initialized: set = set()

    # ------------------------------------------------------------------
    # Vector management
    # ------------------------------------------------------------------
    def alloc_vector(self, num_bits: int) -> BulkBitVector:
        """Allocate a bit vector placed in this engine's device."""
        row_size = self.device.geometry.row_size_bytes
        rows = max(1, -(-((num_bits + 7) // 8) // row_size))
        allocation = self.allocator.allocate(rows)
        return BulkBitVector(num_bits, row_size, allocation)

    def commit(self, vector: BulkBitVector) -> None:
        """Write a vector's logical value into its DRAM rows (functional path)."""
        self._require_placed(vector)
        for chunk_index, placement in enumerate(vector.allocation.placements):
            bank = self._bank(placement)
            bank.write_row(placement.bank_row, vector.row_bytes(chunk_index))

    def read_back(self, vector: BulkBitVector) -> None:
        """Refresh a vector's logical value from its DRAM rows (functional path)."""
        self._require_placed(vector)
        for chunk_index, placement in enumerate(vector.allocation.placements):
            bank = self._bank(placement)
            vector.set_row_bytes(chunk_index, bank.read_row(placement.bank_row))

    def _require_placed(self, vector: BulkBitVector) -> None:
        if vector.allocation is None:
            raise ValueError("vector has no DRAM placement; allocate it via alloc_vector()")

    def _bank(self, placement: RowPlacement) -> Bank:
        return self.device.bank_at(*placement.bank_key)

    # ------------------------------------------------------------------
    # Primitive timing / energy
    # ------------------------------------------------------------------
    def primitives_for(self, op: str) -> Tuple[int, int]:
        """Return (AAP count, TRA count) per row chunk for ``op``."""
        try:
            return AMBIT_PRIMITIVE_COUNTS[op]
        except KeyError as exc:
            raise ValueError(f"unknown Ambit operation {op!r}") from exc

    def per_row_latency_ns(self, op: str) -> float:
        """Latency of processing one row chunk of ``op`` in one bank."""
        aaps, tras = self.primitives_for(op)
        timing = self.device.timing
        return aaps * timing.aap_ns + tras * timing.tra_ns

    def per_row_energy_j(self, op: str) -> float:
        """Energy of processing one row chunk of ``op``."""
        aaps, tras = self.primitives_for(op)
        energy = self.device.energy_params
        return aaps * energy.aap_energy_j + tras * energy.tra_energy_j

    def throughput_bytes_per_s(self, op: str, banks: Optional[int] = None) -> float:
        """Steady-state result throughput of ``op`` using ``banks`` banks."""
        banks = banks or self.config.banks_parallel
        row_bytes = self.device.geometry.row_size_bytes
        return banks * row_bytes / (self.per_row_latency_ns(op) * 1e-9)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        op: str,
        a: BulkBitVector,
        b: Optional[BulkBitVector] = None,
        out: Optional[BulkBitVector] = None,
        functional: bool = False,
    ) -> Tuple[BulkBitVector, OperationMetrics]:
        """Execute ``out = op(a, b)`` and return (result vector, metrics).

        Args:
            op: One of ``not, and, or, nand, nor, xor, xnor``.
            a: First operand.
            b: Second operand (required for binary ops).
            out: Optional pre-allocated destination (must be aligned with
                ``a`` when the functional path is used).
            functional: Execute row by row on the simulated banks instead of
                charging the analytical cost model.
        """
        if op in BINARY_OPS:
            if b is None:
                raise ValueError(f"{op} requires two operands")
            if b.num_bits != a.num_bits:
                raise ValueError("operand lengths differ")
        elif op in UNARY_OPS:
            if b is not None:
                raise ValueError(f"{op} takes a single operand")
        else:
            raise ValueError(f"unknown Ambit operation {op!r}")

        if out is None:
            out = self.alloc_vector(a.num_bits) if a.allocation is not None else a.copy_like()
        if out.num_bits != a.num_bits:
            raise ValueError("output length differs from operand length")

        if functional:
            metrics = self._execute_functional(op, a, b, out)
        else:
            metrics = self._execute_analytical(op, a, b, out)
        return out, metrics

    # -- shared cost model ----------------------------------------------
    def op_cost(
        self, op: str, num_rows: int, bytes_produced: int = 0, mode: str = "modeled"
    ) -> OperationMetrics:
        """Modeled latency/energy of ``op`` over ``num_rows`` row chunks.

        This is the single source of the per-operation cost formula: rows
        spread over ``min(banks_parallel, rows)`` banks, latency is the
        per-bank serial share, energy scales with total rows.  Both
        execution paths, the query cost models, and the batch scheduler
        charge through here.
        """
        banks = min(self.config.banks_parallel, num_rows) if num_rows else 1
        rows_per_bank = -(-num_rows // banks) if num_rows else 0
        return OperationMetrics(
            name=f"ambit_{op}",
            latency_ns=rows_per_bank * self.per_row_latency_ns(op),
            energy_j=num_rows * self.per_row_energy_j(op),
            bytes_moved_on_channel=0,
            bytes_produced=bytes_produced,
            notes=f"{mode}, {num_rows} rows over {banks} banks",
        )

    def _op_metrics(self, op: str, a: BulkBitVector, mode: str) -> OperationMetrics:
        return self.op_cost(op, a.num_rows, a.num_bytes, mode)

    # -- analytical ------------------------------------------------------
    def _execute_analytical(
        self, op: str, a: BulkBitVector, b: Optional[BulkBitVector], out: BulkBitVector
    ) -> OperationMetrics:
        out.data[:] = reference_result(op, a, b)
        return self._op_metrics(op, a, "analytical")

    # -- functional ------------------------------------------------------
    def _execute_functional(
        self, op: str, a: BulkBitVector, b: Optional[BulkBitVector], out: BulkBitVector
    ) -> OperationMetrics:
        self._require_placed(a)
        self._require_placed(out)
        if b is not None:
            self._require_placed(b)
            if not a.allocation.aligned_with(b.allocation):
                raise ValueError("operands are not subarray-aligned")
        if not a.allocation.aligned_with(out.allocation):
            raise ValueError("output is not subarray-aligned with the operands")

        self.commit(a)
        if b is not None:
            self.commit(b)

        if self.config.vectorized_functional:
            return self._execute_functional_vectorized(op, a, b, out)

        for chunk in range(a.num_rows):
            placement = a.allocation.placements[chunk]
            bank = self._bank(placement)
            self._ensure_control_rows(bank, placement.subarray)
            b_placement = b.allocation.placements[chunk] if b is not None else None
            out_placement = out.allocation.placements[chunk]
            self._execute_row(op, bank, placement, b_placement, out_placement)

        self.read_back(out)
        # Complementing ops leave the padding bits past num_bits set in the
        # DRAM rows; mask them in the logical value so both execution paths
        # agree bit for bit (the rows themselves are refreshed from the
        # logical value on the next commit()).
        out._mask_padding()
        if self.config.verify_functional:
            expected = reference_result(op, a, b)
            if not np.array_equal(out.data, expected):
                raise AssertionError(f"functional {op} diverged from the reference result")

        return self._op_metrics(op, a, "functional")

    def _execute_functional_vectorized(
        self, op: str, a: BulkBitVector, b: Optional[BulkBitVector], out: BulkBitVector
    ) -> OperationMetrics:
        """Batched functional execution: all row chunks in single NumPy calls.

        The result of every row chunk is computed with one vectorized NumPy
        operation over the whole backing array, then written into the
        destination rows; each bank is charged the *nominal* command counts
        of the primitive model (2 ACT + 1 PRE per AAP, 1 ACT + 1 PRE per
        TRA), which is what latency and energy are billed from.  The
        row-level path's concrete AAP realization issues additional
        commands for its scratch-row traffic, so raw counter values are
        comparable to the cost model, not to that path.  Latency, energy,
        and results are identical to the row-level path.
        """
        aaps, tras = self.primitives_for(op)
        result = reference_result(op, a, b)
        for chunk in range(a.num_rows):
            placement = a.allocation.placements[chunk]
            bank = self._bank(placement)
            self._ensure_control_rows(bank, placement.subarray)
            out_placement = out.allocation.placements[chunk]
            start = chunk * out.row_size_bytes
            bank.write_row(out_placement.bank_row, result[start : start + out.row_size_bytes])
            # Each AAP is ACT-ACT-PRE, each TRA is one (triple) ACT plus PRE.
            bank.activations += 2 * aaps + tras
            bank.precharges += aaps + tras
        out.data[:] = result
        if self.config.verify_functional:
            # Round-trip check of the write-back: re-reading the destination
            # rows catches mis-indexed placements or rows left stale.  (The
            # value itself comes from the NumPy reference, so unlike the
            # row-level path there is no independent op simulation to check
            # against.)
            self.read_back(out)
            out._mask_padding()
            if not np.array_equal(out.data, result):
                raise AssertionError(f"functional {op} diverged from the reference result")
        return self._op_metrics(op, a, "functional-vectorized")

    def _subarray_base(self, subarray: int) -> int:
        return subarray * self.device.geometry.rows_per_subarray

    def _ensure_control_rows(self, bank: Bank, subarray: int) -> None:
        """Initialize the C-group (zeros / ones) rows of a subarray once."""
        key = (id(bank), subarray)
        if key in self._control_rows_initialized:
            return
        base = self._subarray_base(subarray)
        row_size = self.device.geometry.row_size_bytes
        bank.write_row(base + self.layout.c0_row, np.zeros(row_size, dtype=np.uint8))
        bank.write_row(base + self.layout.c1_row, np.full(row_size, 0xFF, dtype=np.uint8))
        self._control_rows_initialized.add(key)

    def _aap(self, bank: Bank, source_row: int, dest_row: int) -> None:
        bank.aap(source_row, dest_row)

    def _aap_invert(self, bank: Bank, source_row: int, subarray: int, dcc_index: int = 0) -> int:
        """Model AAP(source, DCC): the !DCC port latches the complement.

        Returns the bank-level row index of the complement (!DCC) row, from
        which a subsequent AAP can copy the inverted data.
        """
        base = self._subarray_base(subarray)
        dcc_row = base + self.layout.dcc_row(dcc_index)
        dcc_bar_row = base + self.layout.dcc_bar_row(dcc_index)
        data = bank.read_row(source_row)
        bank.write_row(dcc_row, data)
        bank.write_row(dcc_bar_row, np.bitwise_not(data))
        return dcc_bar_row

    def _tra_and_or(
        self,
        bank: Bank,
        subarray: int,
        row_a: int,
        row_b: int,
        use_ones: bool,
    ) -> int:
        """Copy operands into T rows, TRA with C0/C1, return the result row."""
        base = self._subarray_base(subarray)
        t0 = base + self.layout.t_row(0)
        t1 = base + self.layout.t_row(1)
        t2 = base + self.layout.t_row(2)
        control = base + (self.layout.c1_row if use_ones else self.layout.c0_row)
        self._aap(bank, row_a, t0)
        self._aap(bank, row_b, t1)
        self._aap(bank, control, t2)
        bank.triple_row_activate(t0, t1, t2)
        return t0

    def _execute_row(
        self,
        op: str,
        bank: Bank,
        a_placement: RowPlacement,
        b_placement: Optional[RowPlacement],
        out_placement: RowPlacement,
    ) -> None:
        subarray = a_placement.subarray
        a_row = a_placement.bank_row
        out_row = out_placement.bank_row
        b_row = b_placement.bank_row if b_placement is not None else None

        if op == "not":
            inverted_row = self._aap_invert(bank, a_row, subarray)
            self._aap(bank, inverted_row, out_row)
            return
        if op in ("and", "or"):
            result_row = self._tra_and_or(bank, subarray, a_row, b_row, use_ones=(op == "or"))
            self._aap(bank, result_row, out_row)
            return
        if op in ("nand", "nor"):
            result_row = self._tra_and_or(bank, subarray, a_row, b_row, use_ones=(op == "nor"))
            inverted_row = self._aap_invert(bank, result_row, subarray)
            self._aap(bank, inverted_row, out_row)
            return
        if op in ("xor", "xnor"):
            # xor = (a AND !b) OR (!a AND b); implemented with two TRAs on the
            # T rows plus DCC complements, then copied to the destination.
            base = self._subarray_base(subarray)
            t0 = base + self.layout.t_row(0)
            t1 = base + self.layout.t_row(1)
            t2 = base + self.layout.t_row(2)
            t3 = base + self.layout.t_row(3)
            not_b_row = self._aap_invert(bank, b_row, subarray, dcc_index=0)
            not_a_row = self._aap_invert(bank, a_row, subarray, dcc_index=1)
            # a AND !b -> t0
            self._aap(bank, a_row, t0)
            self._aap(bank, not_b_row, t1)
            self._aap(bank, base + self.layout.c0_row, t2)
            bank.triple_row_activate(t0, t1, t2)
            self._aap(bank, t0, t3)  # park partial result in T3
            # !a AND b -> t0
            self._aap(bank, not_a_row, t0)
            self._aap(bank, b_row, t1)
            self._aap(bank, base + self.layout.c0_row, t2)
            bank.triple_row_activate(t0, t1, t2)
            # (partial1) OR (partial2) -> t0
            self._aap(bank, t3, t1)
            self._aap(bank, base + self.layout.c1_row, t2)
            bank.triple_row_activate(t0, t1, t2)
            if op == "xnor":
                inverted_row = self._aap_invert(bank, t0, subarray)
                self._aap(bank, inverted_row, out_row)
            else:
                self._aap(bank, t0, out_row)
            return
        raise ValueError(f"unknown Ambit operation {op!r}")
