"""The Ambit row organization inside one subarray.

Ambit splits each subarray's rows into three groups:

* **B-group (bitwise group)** — a small set of designated rows reserved for
  computation: four temporary rows (T0–T3) reachable by triple-row
  activation, plus two dual-contact rows (DCC0, DCC1) whose complement
  ports (``!DCC0``, ``!DCC1``) realize NOT.
* **C-group (control group)** — two pre-initialized rows: C0 (all zeros)
  and C1 (all ones), used as the third TRA input to select AND vs. OR.
* **D-group (data group)** — all remaining rows, available to software.

The B-group rows are addressed through reserved row addresses that the
memory controller maps onto a special row decoder; from the model's point
of view they are simply fixed row indices at the top of each subarray.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class AmbitSubarrayLayout:
    """Row-index layout of the Ambit groups within one subarray.

    The designated rows are placed at the highest row indices of the
    subarray so that the low indices remain a contiguous data region.

    Args:
        rows_per_subarray: Total rows in the subarray.
    """

    rows_per_subarray: int

    #: Number of temporary (TRA-capable) rows in the B-group.
    NUM_T_ROWS = 4
    #: Number of dual-contact rows (each exposes a complemented port).
    NUM_DCC_ROWS = 2
    #: Number of control rows (C0 = zeros, C1 = ones).
    NUM_C_ROWS = 2

    def __post_init__(self) -> None:
        if self.rows_per_subarray <= self.reserved_rows:
            raise ValueError(
                f"subarray needs more than {self.reserved_rows} rows for Ambit"
            )

    @property
    def reserved_rows(self) -> int:
        """Rows taken away from software by the B- and C-groups."""
        return self.NUM_T_ROWS + 2 * self.NUM_DCC_ROWS + self.NUM_C_ROWS

    @property
    def data_rows(self) -> int:
        """Rows available to software (the D-group)."""
        return self.rows_per_subarray - self.reserved_rows

    # ------------------------------------------------------------------
    # Row indices (local to the subarray)
    # ------------------------------------------------------------------
    def t_row(self, index: int) -> int:
        """Local row index of temporary row ``T<index>`` (0–3)."""
        if not 0 <= index < self.NUM_T_ROWS:
            raise IndexError(f"T-row index {index} out of range")
        return self.rows_per_subarray - self.reserved_rows + index

    def dcc_row(self, index: int) -> int:
        """Local row index of dual-contact row ``DCC<index>`` (0–1)."""
        if not 0 <= index < self.NUM_DCC_ROWS:
            raise IndexError(f"DCC-row index {index} out of range")
        return self.rows_per_subarray - self.reserved_rows + self.NUM_T_ROWS + 2 * index

    def dcc_bar_row(self, index: int) -> int:
        """Local row index of the complement port ``!DCC<index>``."""
        return self.dcc_row(index) + 1

    @property
    def c0_row(self) -> int:
        """Local row index of the all-zeros control row."""
        return self.rows_per_subarray - self.NUM_C_ROWS

    @property
    def c1_row(self) -> int:
        """Local row index of the all-ones control row."""
        return self.rows_per_subarray - self.NUM_C_ROWS + 1

    def all_reserved_rows(self) -> List[int]:
        """Every local row index reserved for the B- and C-groups."""
        rows = [self.t_row(i) for i in range(self.NUM_T_ROWS)]
        for i in range(self.NUM_DCC_ROWS):
            rows.append(self.dcc_row(i))
            rows.append(self.dcc_bar_row(i))
        rows.extend([self.c0_row, self.c1_row])
        return sorted(rows)

    def data_row_range(self) -> Tuple[int, int]:
        """Half-open range ``[start, stop)`` of local data-row indices."""
        return (0, self.data_rows)

    def is_data_row(self, local_row: int) -> bool:
        """True when ``local_row`` belongs to the D-group."""
        return 0 <= local_row < self.data_rows
