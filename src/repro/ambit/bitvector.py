"""Bit-vector container placed in DRAM rows.

:class:`BulkBitVector` is the operand type of the Ambit engine.  It couples

* a logical value (a packed NumPy ``uint8`` array), which is what functional
  verification and the database layer work with, and
* a placement (:class:`repro.ambit.allocator.RowAllocation`), which records
  which DRAM rows hold the vector and therefore determines the command
  sequences, latency, and energy of operating on it.

The logical value always exists; committing it into the functional DRAM
banks is only needed when the row-level functional execution path is used.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ambit.allocator import RowAllocation


def mask_padding_bytes(data: np.ndarray, num_bits: int) -> np.ndarray:
    """Zero the padding bits of a packed byte array holding ``num_bits`` bits.

    Clears the high bits of the final partial byte and any whole bytes past
    it, in place, and returns the array.  Complementing operations (NOT,
    NAND, NOR, XNOR) set padding bits; every consumer of packed results must
    see them masked so that both execution paths agree bit for bit.
    """
    full_bytes = num_bits // 8
    remaining = num_bits - full_bytes * 8
    if remaining:
        if full_bytes < data.size:
            data[full_bytes] &= (1 << remaining) - 1
        data[full_bytes + 1 :] = 0
    else:
        data[full_bytes:] = 0
    return data


class BulkBitVector:
    """A bit vector of ``num_bits`` bits stored row-aligned in DRAM.

    Args:
        num_bits: Logical length of the vector.
        row_size_bytes: Row size of the device the vector is placed in.
        allocation: Row placement (may be None for host-only vectors).
    """

    def __init__(
        self,
        num_bits: int,
        row_size_bytes: int = 8192,
        allocation: Optional[RowAllocation] = None,
    ) -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        if row_size_bytes <= 0:
            raise ValueError("row_size_bytes must be positive")
        self.num_bits = num_bits
        self.row_size_bytes = row_size_bytes
        self.allocation = allocation
        self._data = np.zeros(self.storage_bytes, dtype=np.uint8)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_bytes(self) -> int:
        """Bytes needed to hold the logical bits (unpadded)."""
        return (self.num_bits + 7) // 8

    @property
    def num_rows(self) -> int:
        """DRAM rows needed to hold the vector."""
        return (self.num_bytes + self.row_size_bytes - 1) // self.row_size_bytes

    @property
    def storage_bytes(self) -> int:
        """Bytes of backing storage (padded up to whole rows)."""
        return self.num_rows * self.row_size_bytes

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The packed byte array backing the vector (padded to whole rows)."""
        return self._data

    def row_bytes(self, row_index: int) -> np.ndarray:
        """Return the bytes of the ``row_index``-th row-sized chunk."""
        if not 0 <= row_index < self.num_rows:
            raise IndexError(f"row chunk {row_index} out of range [0, {self.num_rows})")
        start = row_index * self.row_size_bytes
        return self._data[start : start + self.row_size_bytes]

    def set_row_bytes(self, row_index: int, values: np.ndarray) -> None:
        """Overwrite the ``row_index``-th row-sized chunk."""
        chunk = self.row_bytes(row_index)
        values = np.asarray(values, dtype=np.uint8)
        if values.shape != chunk.shape:
            raise ValueError(f"expected {chunk.shape} bytes, got {values.shape}")
        start = row_index * self.row_size_bytes
        self._data[start : start + self.row_size_bytes] = values

    def get_bit(self, index: int) -> int:
        """Return bit ``index`` (LSB-first within each byte)."""
        self._check_bit(index)
        return (int(self._data[index >> 3]) >> (index & 7)) & 1

    def set_bit(self, index: int, value: int) -> None:
        """Set bit ``index`` to 0 or 1."""
        self._check_bit(index)
        if value not in (0, 1):
            raise ValueError("bit value must be 0 or 1")
        byte = int(self._data[index >> 3])
        mask = 1 << (index & 7)
        self._data[index >> 3] = (byte | mask) if value else (byte & ~mask)

    def _check_bit(self, index: int) -> None:
        if not 0 <= index < self.num_bits:
            raise IndexError(f"bit {index} out of range [0, {self.num_bits})")

    def count_ones(self) -> int:
        """Population count over the logical bits (padding excluded)."""
        full_bytes = self.num_bits // 8
        count = int(np.unpackbits(self._data[:full_bytes]).sum()) if full_bytes else 0
        remaining = self.num_bits - full_bytes * 8
        if remaining:
            last = int(self._data[full_bytes])
            count += bin(last & ((1 << remaining) - 1)).count("1")
        return count

    # ------------------------------------------------------------------
    # Loading values
    # ------------------------------------------------------------------
    def fill_random(self, seed: Optional[int] = None, density: float = 0.5) -> "BulkBitVector":
        """Fill the vector with random bits (ones with probability ``density``)."""
        if not 0.0 <= density <= 1.0:
            raise ValueError("density must be in [0, 1]")
        rng = np.random.default_rng(seed)
        bits = rng.random(self.storage_bytes * 8) < density
        self._data[:] = np.packbits(bits.astype(np.uint8), bitorder="little")
        self._mask_padding()
        return self

    def fill_value(self, value: int) -> "BulkBitVector":
        """Set every logical bit to 0 or 1."""
        if value not in (0, 1):
            raise ValueError("value must be 0 or 1")
        self._data[:] = 0xFF if value else 0x00
        self._mask_padding()
        return self

    def load_bits(self, bits: np.ndarray) -> "BulkBitVector":
        """Load from a boolean/0-1 array of exactly ``num_bits`` entries."""
        bits = np.asarray(bits).astype(np.uint8).ravel()
        if bits.size != self.num_bits:
            raise ValueError(f"expected {self.num_bits} bits, got {bits.size}")
        packed = np.packbits(bits, bitorder="little")
        self._data[:] = 0
        self._data[: packed.size] = packed
        return self

    def to_bits(self) -> np.ndarray:
        """Return the logical bits as a ``uint8`` 0/1 array of length ``num_bits``."""
        return np.unpackbits(self._data, bitorder="little")[: self.num_bits]

    def _mask_padding(self) -> None:
        """Zero out the padding bits/bytes past ``num_bits``."""
        mask_padding_bytes(self._data, self.num_bits)

    # ------------------------------------------------------------------
    # Reference (host-side) logic, used to verify the Ambit engine
    # ------------------------------------------------------------------
    def _binary_reference(self, other: "BulkBitVector", op) -> np.ndarray:
        if other.num_bits != self.num_bits:
            raise ValueError("operand lengths differ")
        return op(self._data[: self.num_bytes], other._data[: other.num_bytes])

    def expected_and(self, other: "BulkBitVector") -> np.ndarray:
        """Reference result bytes of ``self AND other``."""
        return self._binary_reference(other, np.bitwise_and)

    def expected_or(self, other: "BulkBitVector") -> np.ndarray:
        """Reference result bytes of ``self OR other``."""
        return self._binary_reference(other, np.bitwise_or)

    def expected_xor(self, other: "BulkBitVector") -> np.ndarray:
        """Reference result bytes of ``self XOR other``."""
        return self._binary_reference(other, np.bitwise_xor)

    def expected_not(self) -> np.ndarray:
        """Reference result bytes of ``NOT self`` (padding bits masked)."""
        result = np.bitwise_not(self._data[: self.num_bytes])
        return mask_padding_bytes(result, self.num_bits)

    def copy_like(self) -> "BulkBitVector":
        """Return a new, zeroed vector with the same length and row size."""
        return BulkBitVector(self.num_bits, self.row_size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        placed = "placed" if self.allocation is not None else "unplaced"
        return f"BulkBitVector({self.num_bits} bits, {self.num_rows} rows, {placed})"
