"""Ambit: in-DRAM bulk bitwise operations using commodity DRAM technology.

Ambit (Seshadri et al., MICRO 2017) performs bulk bitwise operations inside
the DRAM arrays:

* **Ambit-AND-OR** uses *triple-row activation* (TRA): simultaneously
  activating three rows makes the charge-sharing on each bitline compute
  the bitwise **majority** of the three cells, which is ``A AND B`` when the
  third row holds zeros and ``A OR B`` when it holds ones.
* **Ambit-NOT** uses *dual-contact cells* (DCC) wired to both inverters of
  the sense amplifier, so activating a source row latches its complement
  into the DCC row.

Combined, the substrate is functionally complete; NAND, NOR, XOR, and XNOR
are built by composing TRA and DCC steps.  Every step is an AAP-class
command, so operating on an 8 KiB row costs a few row cycles regardless of
how many bits it holds — the source of the throughput and energy wins.

Public API:

* :class:`repro.ambit.bitvector.BulkBitVector` — a bit vector placed in
  DRAM rows,
* :class:`repro.ambit.allocator.RowAllocator` — places vectors across
  banks/subarrays,
* :class:`repro.ambit.engine.AmbitEngine` — executes the seven bulk bitwise
  operations functionally (row level) or analytically (bulk level).
"""

from repro.ambit.allocator import RowAllocation, RowAllocator
from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AMBIT_PRIMITIVE_COUNTS, AmbitEngine
from repro.ambit.rowgroups import AmbitSubarrayLayout

__all__ = [
    "AMBIT_PRIMITIVE_COUNTS",
    "AmbitEngine",
    "AmbitSubarrayLayout",
    "BulkBitVector",
    "RowAllocation",
    "RowAllocator",
]
