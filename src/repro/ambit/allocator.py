"""Row allocation for Ambit operands.

Ambit's triple-row activation only combines rows that share a subarray, so
operands of one bulk operation must be *subarray-aligned*: the i-th row
chunk of vector A, the i-th chunk of vector B, and the i-th chunk of the
result must all live in the same subarray (in different data rows).

:class:`RowAllocator` guarantees this by placing row chunks in a fixed
round-robin order over (bank, subarray) slots: chunk ``i`` of *every*
vector goes to bank ``i mod B`` and subarray ``(i // B) mod S``.  Vectors
allocated from the same allocator are therefore always aligned, and chunks
are spread over all banks so multi-bank parallelism is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ambit.rowgroups import AmbitSubarrayLayout
from repro.dram.device import DramDevice

BankKey = Tuple[int, int, int]  # (channel, rank, bank)


@dataclass(frozen=True)
class RowPlacement:
    """Placement of one row-sized chunk of a vector.

    Attributes:
        bank_key: (channel, rank, bank) of the bank holding the chunk.
        subarray: Subarray index within the bank.
        local_row: Row index local to the subarray.
        rows_per_subarray: Geometry constant needed to form the bank row.
    """

    bank_key: BankKey
    subarray: int
    local_row: int
    rows_per_subarray: int

    @property
    def bank_row(self) -> int:
        """Bank-level row index (what ``Bank.aap`` / ``Bank.read_row`` expect)."""
        return self.subarray * self.rows_per_subarray + self.local_row


@dataclass
class RowAllocation:
    """The set of row placements backing one :class:`BulkBitVector`."""

    placements: List[RowPlacement] = field(default_factory=list)

    @property
    def num_rows(self) -> int:
        """Number of row chunks in the allocation."""
        return len(self.placements)

    def banks_used(self) -> int:
        """Number of distinct banks the allocation touches."""
        return len({p.bank_key for p in self.placements})

    def aligned_with(self, other: "RowAllocation") -> bool:
        """True when chunk ``i`` of both allocations shares (bank, subarray)."""
        if self.num_rows != other.num_rows:
            return False
        return all(
            a.bank_key == b.bank_key and a.subarray == b.subarray
            for a, b in zip(self.placements, other.placements)
        )


class RowAllocator:
    """Allocates subarray-aligned data rows for bulk bit vectors.

    Args:
        device: The DRAM device to allocate in.
        layout: The Ambit row-group layout (defaults to one derived from the
            device's rows-per-subarray).
    """

    def __init__(self, device: DramDevice, layout: AmbitSubarrayLayout = None) -> None:
        self.device = device
        geometry = device.geometry
        self.layout = layout or AmbitSubarrayLayout(geometry.rows_per_subarray)
        if self.layout.rows_per_subarray != geometry.rows_per_subarray:
            raise ValueError("layout rows_per_subarray does not match the device geometry")
        self._bank_keys: List[BankKey] = [key for key, _ in device.iter_banks()]
        # Next free data row for each (bank_key, subarray) slot.
        self._next_free: Dict[Tuple[BankKey, int], int] = {}
        # Rows below the bump pointer that were freed and can be reused.
        self._free_rows: Dict[Tuple[BankKey, int], List[int]] = {}

    @property
    def banks_total(self) -> int:
        """Number of banks available for placement."""
        return len(self._bank_keys)

    @property
    def subarrays_per_bank(self) -> int:
        """Subarrays per bank in the underlying device."""
        return self.device.geometry.subarrays_per_bank

    def _slot_for_chunk(self, chunk_index: int, bank_offset: int = 0) -> Tuple[BankKey, int]:
        shifted = chunk_index + bank_offset
        bank_key = self._bank_keys[shifted % self.banks_total]
        subarray = (shifted // self.banks_total) % self.subarrays_per_bank
        return bank_key, subarray

    def data_rows_per_slot(self) -> int:
        """Data rows available in each (bank, subarray) slot."""
        return self.layout.data_rows

    def capacity_rows(self) -> int:
        """Total data rows the allocator can hand out."""
        return self.banks_total * self.subarrays_per_bank * self.layout.data_rows

    def allocated_rows(self) -> int:
        """Rows already handed out (freed rows excluded)."""
        return sum(self._next_free.values()) - sum(
            len(rows) for rows in self._free_rows.values()
        )

    def allocate(self, num_rows: int, bank_offset: int = 0) -> RowAllocation:
        """Allocate ``num_rows`` subarray-aligned data rows.

        Args:
            num_rows: Row chunks to place.
            bank_offset: Rotate the round-robin placement so chunk 0 starts
                at bank ``bank_offset mod B``.  Vectors allocated with the
                same offset remain mutually subarray-aligned; the batch
                service layer rotates the offset per request so concurrent
                requests land on disjoint banks and genuinely overlap.

        Raises:
            MemoryError: When any required slot has no free data rows left.
        """
        if num_rows <= 0:
            raise ValueError("num_rows must be positive")
        placements: List[RowPlacement] = []
        rows_per_subarray = self.device.geometry.rows_per_subarray
        for chunk in range(num_rows):
            slot = self._slot_for_chunk(chunk, bank_offset)
            reusable = self._free_rows.get(slot)
            if reusable:
                next_row = reusable.pop()
            else:
                next_row = self._next_free.get(slot, 0)
                if next_row >= self.layout.data_rows:
                    # Roll back the chunks placed so far: a failed request
                    # must not leak rows.
                    self.free(RowAllocation(placements=placements))
                    raise MemoryError(
                        f"no free data rows left in bank {slot[0]} subarray {slot[1]}"
                    )
                self._next_free[slot] = next_row + 1
            placements.append(
                RowPlacement(
                    bank_key=slot[0],
                    subarray=slot[1],
                    local_row=next_row,
                    rows_per_subarray=rows_per_subarray,
                )
            )
        return RowAllocation(placements=placements)

    def free(self, allocation: RowAllocation) -> None:
        """Return an allocation's rows to the free pool.

        Freed rows go onto a per-slot free list and are handed out again by
        later :meth:`allocate` calls before the bump pointer advances, so
        long-running request streams (e.g. the batch service layer's
        intermediate vectors) no longer leak rows.
        """
        for placement in allocation.placements:
            slot = (placement.bank_key, placement.subarray)
            current = self._next_free.get(slot, 0)
            if current == placement.local_row + 1:
                current -= 1
                # Pop any previously freed rows now sitting at the top.
                reusable = self._free_rows.get(slot)
                while reusable and current - 1 in reusable:
                    reusable.remove(current - 1)
                    current -= 1
                self._next_free[slot] = current
            else:
                self._free_rows.setdefault(slot, []).append(placement.local_row)
