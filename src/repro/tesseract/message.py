"""The remote-function-call programming interface and a functional runtime.

Tesseract's programming model is message passing: when a vertex program
running in vault ``s`` needs to update a vertex owned by vault ``d``, it
issues a *non-blocking remote function call* — the operation (function id
plus a small payload) travels to vault ``d`` and executes there, next to
the data.  Barriers separate supersteps.

:class:`VaultProgramRuntime` is a small functional simulator of this model:
it executes a vertex program over a partitioned graph, vault by vault,
queueing remote calls and delivering them at the next barrier.  It is *not*
a timing model — its purpose is to

* validate that vertex programs expressed with remote calls produce the
  same results as the reference algorithms, and
* produce exact per-superstep message counts (local vs. intra-cube vs.
  inter-cube), which the analytical performance model in
  :mod:`repro.tesseract.runtime` is calibrated against.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.graph.graph import CsrGraph
from repro.graph.partition import GraphPartition


@dataclass
class RemoteCall:
    """One remote function call in flight.

    Attributes:
        target_vertex: Vertex the call operates on.
        function: Name of the handler to run at the destination vault.
        value: Scalar payload.
    """

    target_vertex: int
    function: str
    value: float


@dataclass
class MessageStats:
    """Counts of remote calls issued during one superstep."""

    local: int = 0
    intra_cube: int = 0
    inter_cube: int = 0

    @property
    def total(self) -> int:
        """All calls issued (including vault-local ones)."""
        return self.local + self.intra_cube + self.inter_cube

    @property
    def remote(self) -> int:
        """Calls that actually crossed a vault boundary."""
        return self.intra_cube + self.inter_cube


class VaultProgramRuntime:
    """Functional, vault-parallel execution of vertex programs.

    Args:
        graph: The graph being processed.
        partition: Vertex-to-vault assignment.
        handlers: Mapping from function name to a handler
            ``f(state, vertex, value) -> None`` that updates per-vertex
            state arrays in place.
    """

    def __init__(
        self,
        graph: CsrGraph,
        partition: GraphPartition,
        handlers: Optional[Dict[str, Callable]] = None,
    ) -> None:
        self.graph = graph
        self.partition = partition
        self.handlers: Dict[str, Callable] = handlers or {}
        self.state: Dict[str, np.ndarray] = {}
        self.superstep_stats: List[MessageStats] = []
        self._pending: Dict[int, List[RemoteCall]] = defaultdict(list)

    # ------------------------------------------------------------------
    # State and handler registration
    # ------------------------------------------------------------------
    def add_state(self, name: str, initial: np.ndarray) -> None:
        """Register a per-vertex state array."""
        array = np.asarray(initial)
        if array.shape[0] != self.graph.num_vertices:
            raise ValueError("state array must have one entry per vertex")
        self.state[name] = array.copy()

    def register_handler(self, name: str, handler: Callable) -> None:
        """Register a remote-call handler by name."""
        self.handlers[name] = handler

    # ------------------------------------------------------------------
    # Remote calls
    # ------------------------------------------------------------------
    def remote_call(self, source_vault: int, call: RemoteCall, stats: MessageStats) -> None:
        """Issue a remote call from ``source_vault`` (delivered at the barrier)."""
        target_vault = int(self.partition.assignment[call.target_vertex])
        vaults_per_cube = self.partition.vaults_per_cube
        if target_vault == source_vault:
            stats.local += 1
        elif target_vault // vaults_per_cube == source_vault // vaults_per_cube:
            stats.intra_cube += 1
        else:
            stats.inter_cube += 1
        self._pending[target_vault].append(call)

    def barrier(self) -> None:
        """Deliver every pending remote call (executes its handler)."""
        for vault in sorted(self._pending):
            for call in self._pending[vault]:
                handler = self.handlers.get(call.function)
                if handler is None:
                    raise KeyError(f"no handler registered for {call.function!r}")
                handler(self.state, call.target_vertex, call.value)
        self._pending.clear()

    # ------------------------------------------------------------------
    # Superstep driver
    # ------------------------------------------------------------------
    def run_superstep(
        self,
        vertex_program: Callable,
        active_vertices: Optional[np.ndarray] = None,
    ) -> MessageStats:
        """Run one superstep of ``vertex_program`` over the active vertices.

        The vertex program is called as
        ``vertex_program(runtime, vault, vertex, issue)`` where ``issue`` is
        a function accepting a :class:`RemoteCall`.  Remote calls issued
        during the superstep are delivered at the closing barrier.
        """
        stats = MessageStats()
        assignment = self.partition.assignment
        if active_vertices is None:
            active_vertices = np.arange(self.graph.num_vertices)
        # Process vault by vault, mirroring the per-vault cores.
        vault_of_active = assignment[active_vertices]
        for vault in range(self.partition.num_vaults):
            for vertex in active_vertices[vault_of_active == vault]:
                vertex = int(vertex)

                def issue(call: RemoteCall, _vault: int = vault) -> None:
                    self.remote_call(_vault, call, stats)

                vertex_program(self, vault, vertex, issue)
        self.barrier()
        self.superstep_stats.append(stats)
        return stats


# ----------------------------------------------------------------------
# Ready-made vertex programs (used by tests and the A2 ablation)
# ----------------------------------------------------------------------
def build_pagerank_runtime(
    graph: CsrGraph, partition: GraphPartition, damping: float = 0.85
) -> VaultProgramRuntime:
    """Build a runtime pre-configured for message-passing PageRank."""
    runtime = VaultProgramRuntime(graph, partition)
    n = graph.num_vertices
    runtime.add_state("rank", np.full(n, 1.0 / max(1, n)))
    runtime.add_state("incoming", np.zeros(n))

    def accumulate(state: Dict[str, np.ndarray], vertex: int, value: float) -> None:
        state["incoming"][vertex] += value

    runtime.register_handler("accumulate", accumulate)
    runtime.damping = damping  # type: ignore[attr-defined]
    return runtime


def pagerank_superstep(runtime: VaultProgramRuntime) -> MessageStats:
    """Execute one message-passing PageRank superstep (push model)."""
    graph = runtime.graph

    def program(rt: VaultProgramRuntime, vault: int, vertex: int, issue) -> None:
        degree = graph.out_degree(vertex)
        if degree == 0:
            return
        contribution = rt.state["rank"][vertex] / degree
        for neighbor in graph.neighbors(vertex):
            issue(RemoteCall(int(neighbor), "accumulate", contribution))

    stats = runtime.run_superstep(program)
    n = graph.num_vertices
    damping = getattr(runtime, "damping", 0.85)
    runtime.state["rank"] = (1.0 - damping) / n + damping * runtime.state["incoming"]
    runtime.state["incoming"] = np.zeros(n)
    return stats
