"""PIM core parameters for Tesseract.

Each vault hosts one simple in-order core.  The per-edge instruction
counts below are the calibration constants of the performance model: a
vertex-program edge visit on the source side (read the edge, compute the
contribution, compose and send the remote function call) and the handler
executed on the destination side (receive, load the vertex state, update,
store) are each a few tens of simple instructions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PimCoreParameters:
    """Configuration of the in-order PIM core in each vault.

    Attributes:
        frequency_ghz: Core clock.
        ipc: Sustained instructions per cycle (1.0 for a simple in-order
            core with the message-triggered prefetcher hiding memory
            latency, per the Tesseract design).
        ops_per_edge_source: Instructions executed at the source vault per
            traversed edge (edge fetch, contribution compute, message
            composition).
        ops_per_edge_handler: Instructions executed by the remote-function
            handler at the destination vault per received message.
        ops_per_vertex: Instructions per active vertex per iteration
            (state load/store, scheduling).
        dynamic_energy_per_op_j: Energy per instruction on the small core.
        static_power_w: Static/leakage power of one core plus its share of
            the vault's peripheral logic.
        message_payload_bytes: Payload of one remote function call.
    """

    frequency_ghz: float = 2.0
    ipc: float = 1.0
    ops_per_edge_source: int = 6
    ops_per_edge_handler: int = 10
    ops_per_vertex: int = 12
    dynamic_energy_per_op_j: float = 1.0e-11
    static_power_w: float = 0.03
    message_payload_bytes: int = 16

    @classmethod
    def tesseract(cls) -> "PimCoreParameters":
        """The 2 GHz single-issue in-order configuration of the paper."""
        return cls()

    @property
    def ops_per_second(self) -> float:
        """Instruction throughput of one core."""
        return self.frequency_ghz * 1e9 * self.ipc

    def compute_time_ns(self, ops: float) -> float:
        """Time for ``ops`` instructions on one core."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return ops / self.ops_per_second * 1e9

    def compute_energy_j(self, ops: float) -> float:
        """Dynamic energy for ``ops`` instructions on one core."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return ops * self.dynamic_energy_per_op_j
