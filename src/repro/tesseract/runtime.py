"""Analytical performance/energy model of a Tesseract machine.

The model executes a :class:`~repro.graph.algorithms.WorkProfile` (the
per-iteration work measured by actually running the algorithm) over a
:class:`~repro.graph.partition.GraphPartition` on a
:class:`~repro.stacked.hmc.StackedMemorySystem`.

Each iteration's time is the maximum of four components, mirroring how a
barrier-synchronized vault-parallel machine behaves:

* per-vault compute time (instructions on the in-order core, scaled by the
  measured load imbalance of the partition),
* per-vault local memory time (vault-local bytes over the TSV bus),
* network serialization time (remote function calls over the crossbars and
  the cube-to-cube links), and
* a fixed barrier/synchronization overhead.

Energy integrates dynamic memory, network, and core energy plus static
power over the execution time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.graph.algorithms import WorkProfile
from repro.graph.partition import GraphPartition
from repro.stacked.hmc import StackedMemorySystem
from repro.stacked.network import StackNetwork
from repro.tesseract.core import PimCoreParameters


@dataclass(frozen=True)
class TesseractParameters:
    """System-level configuration of the Tesseract machine.

    Attributes:
        core: Per-vault PIM core parameters.
        bytes_per_edge: Bytes read from the vault per traversed edge
            (the adjacency entry plus its share of the CSR offsets).
        bytes_per_vertex: Bytes of per-vertex state touched per activation.
        barrier_latency_ns: Cost of one global barrier.
        memory_static_power_w: Background power of each memory cube.
        prefetcher_effectiveness: Fraction of vault-local access latency the
            message-triggered and list prefetchers hide (1.0 = fully hidden,
            which is the paper's finding for streaming edge lists).
    """

    core: PimCoreParameters = field(default_factory=PimCoreParameters)
    bytes_per_edge: int = 10
    bytes_per_vertex: int = 16
    barrier_latency_ns: float = 2000.0
    memory_static_power_w: float = 1.0
    prefetcher_effectiveness: float = 1.0

    @classmethod
    def isca2015(cls) -> "TesseractParameters":
        """The configuration of the Tesseract paper (16 cubes x 32 vaults)."""
        return cls()


@dataclass
class GraphExecutionResult:
    """Outcome of executing one workload on one system model.

    Attributes:
        system: Label of the executing system.
        workload: Workload name.
        time_ns: Total execution time.
        energy_j: Total energy.
        breakdown: Named time components (ns).
        energy_breakdown: Named energy components (J).
    """

    system: str
    workload: str
    time_ns: float
    energy_j: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    energy_breakdown: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "GraphExecutionResult") -> float:
        """Speedup of this execution relative to ``other``."""
        if self.time_ns <= 0:
            raise ValueError("time must be positive")
        return other.time_ns / self.time_ns

    def energy_reduction_percent(self, other: "GraphExecutionResult") -> float:
        """Energy reduction of this execution relative to ``other`` (0-100)."""
        if other.energy_j <= 0:
            raise ValueError("baseline energy must be positive")
        return (other.energy_j - self.energy_j) / other.energy_j * 100.0


class TesseractSystem:
    """A Tesseract machine: stacked memory + per-vault PIM cores.

    Args:
        memory: Stacked memory system (defaults to 16 HMC 2.0 cubes).
        parameters: Tesseract-specific parameters.
        use_remote_function_calls: When False, remote edges are serviced by
            blocking remote reads instead of non-blocking remote function
            calls (the A2 ablation); each remote edge then exposes the
            network round-trip latency, partially overlapped by the core's
            modest memory-level parallelism.
    """

    REMOTE_READ_MLP = 4.0

    def __init__(
        self,
        memory: Optional[StackedMemorySystem] = None,
        parameters: Optional[TesseractParameters] = None,
        use_remote_function_calls: bool = True,
    ) -> None:
        self.memory = memory or StackedMemorySystem(num_stacks=16)
        self.parameters = parameters or TesseractParameters.isca2015()
        self.use_remote_function_calls = use_remote_function_calls

    @property
    def num_vaults(self) -> int:
        """Total PIM cores (one per vault)."""
        return self.memory.num_vaults

    # ------------------------------------------------------------------
    # Execution model
    # ------------------------------------------------------------------
    def execute(self, profile: WorkProfile, partition: GraphPartition) -> GraphExecutionResult:
        """Execute a work profile over a partition and return time/energy."""
        if partition.num_vaults != self.num_vaults:
            raise ValueError(
                f"partition has {partition.num_vaults} vaults, system has {self.num_vaults}"
            )
        p = self.parameters
        core = p.core
        vault_params = self.memory.stacks[0].parameters.vault
        network_params = self.memory.network.parameters

        remote_fraction = partition.remote_fraction
        inter_cube_share = (
            partition.inter_cube_remote_edges / partition.remote_edges
            if partition.remote_edges
            else 0.0
        )
        imbalance = partition.load_imbalance
        total_edges_in_graph = max(1, partition.total_edges)

        compute_ns = 0.0
        local_memory_ns = 0.0
        network_ns = 0.0
        barrier_ns = 0.0

        local_bytes_total = 0.0
        intra_cube_msg_bytes = 0.0
        inter_cube_msg_bytes = 0.0
        total_ops = 0.0

        message_bytes = core.message_payload_bytes + network_params.message_overhead_bytes

        for active, edges in zip(profile.active_vertices, profile.traversed_edges):
            # Work per vault, scaled by the measured load imbalance.
            edges_per_vault = edges / self.num_vaults * imbalance
            active_per_vault = active / self.num_vaults * imbalance

            remote_edges = edges * remote_fraction
            local_edges = edges - remote_edges

            # --- compute -------------------------------------------------
            ops_per_vault = (
                edges_per_vault * core.ops_per_edge_source
                + edges_per_vault * remote_fraction * core.ops_per_edge_handler
                + active_per_vault * core.ops_per_vertex
            )
            iteration_compute_ns = core.compute_time_ns(ops_per_vault)
            total_ops += ops_per_vault * self.num_vaults / imbalance

            # --- vault-local memory ---------------------------------------
            bytes_per_vault = (
                edges_per_vault * p.bytes_per_edge
                + active_per_vault * p.bytes_per_vertex
                + edges_per_vault * remote_fraction * p.bytes_per_vertex
            )
            iteration_memory_ns = (
                bytes_per_vault / vault_params.tsv_bandwidth_bytes_per_s * 1e9
            ) * (2.0 - p.prefetcher_effectiveness)
            local_bytes_total += bytes_per_vault * self.num_vaults / imbalance

            # --- network ---------------------------------------------------
            self.memory.network.reset()
            remote_messages = remote_edges
            self.memory.network.add_messages(
                int(remote_messages * (1.0 - inter_cube_share)),
                core.message_payload_bytes,
                crosses_cube=False,
            )
            self.memory.network.add_messages(
                int(remote_messages * inter_cube_share),
                core.message_payload_bytes,
                crosses_cube=True,
            )
            iteration_network_ns = self.memory.network.total_time_ns()
            intra_cube_msg_bytes += remote_messages * (1.0 - inter_cube_share) * message_bytes
            inter_cube_msg_bytes += remote_messages * inter_cube_share * message_bytes

            if not self.use_remote_function_calls:
                # Blocking remote reads: each remote edge exposes a network
                # round trip, overlapped only by modest MLP.
                round_trip_ns = 2 * (
                    network_params.inter_cube_latency_ns * inter_cube_share
                    + network_params.intra_cube_latency_ns * (1.0 - inter_cube_share)
                )
                remote_per_vault = edges_per_vault * remote_fraction
                iteration_compute_ns += remote_per_vault * round_trip_ns / self.REMOTE_READ_MLP

            compute_ns += iteration_compute_ns
            local_memory_ns += iteration_memory_ns
            network_ns += iteration_network_ns
            barrier_ns += p.barrier_latency_ns

        # Iteration times combine as max per iteration; summing the maxima
        # per component first and taking the max of sums is equivalent here
        # because the same component binds every iteration of a workload.
        time_ns = max(compute_ns, local_memory_ns, network_ns) + barrier_ns

        # ------------------------------------------------------------------
        # Energy
        # ------------------------------------------------------------------
        vault = self.memory.stacks[0].vaults[0]
        memory_dynamic_j = vault.transfer_energy_j(int(local_bytes_total))
        network_dynamic_j = (
            intra_cube_msg_bytes * 8 * network_params.intra_cube_energy_pj_per_bit * 1e-12
            + inter_cube_msg_bytes
            * self.memory.network.average_inter_cube_hops
            * 8
            * network_params.inter_cube_energy_pj_per_bit
            * 1e-12
        )
        core_dynamic_j = core.compute_energy_j(total_ops)
        static_power_w = (
            self.num_vaults * core.static_power_w
            + self.memory.num_stacks * p.memory_static_power_w
        )
        static_j = static_power_w * time_ns * 1e-9
        energy_j = memory_dynamic_j + network_dynamic_j + core_dynamic_j + static_j

        return GraphExecutionResult(
            system="tesseract" if self.use_remote_function_calls else "tesseract-no-rfc",
            workload=profile.name,
            time_ns=time_ns,
            energy_j=energy_j,
            breakdown={
                "compute_ns": compute_ns,
                "local_memory_ns": local_memory_ns,
                "network_ns": network_ns,
                "barrier_ns": barrier_ns,
            },
            energy_breakdown={
                "memory_j": memory_dynamic_j,
                "network_j": network_dynamic_j,
                "cores_j": core_dynamic_j,
                "static_j": static_j,
            },
        )
