"""The conventional-system baseline for graph processing.

The Tesseract comparison point is a high-end server: 32 out-of-order cores
with a conventional cache hierarchy and a DDR3-based memory system
providing 102.4 GB/s of peak bandwidth.  Graph analytics on such a machine
is memory-bound: the edge lists stream from DRAM, and the per-edge access
to the destination vertex's state is effectively random, so it misses the
caches whenever the vertex state does not fit in the last-level cache.

The model computes, per iteration of the measured work profile:

* the channel traffic (edge stream + missing vertex accesses at cache-line
  granularity + vertex state writes),
* the memory-bound time (traffic over effective bandwidth),
* the compute-bound time (instructions over aggregate issue rate),

and takes the maximum.  Energy integrates DRAM, cache, and core dynamic
energy plus the (large) static power of a server-class chip over the
execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.graph.algorithms import WorkProfile
from repro.graph.graph import CsrGraph
from repro.hostsim.energy import HostEnergyModel
from repro.tesseract.runtime import GraphExecutionResult


@dataclass(frozen=True)
class ConventionalParameters:
    """Configuration of the conventional (host-based) graph-processing system.

    Attributes:
        name: Label for reports.
        cores: Out-of-order core count.
        frequency_ghz: Core clock.
        issue_width: Sustained instructions per cycle per core for this
            pointer-heavy code (well below peak issue width).
        memory_bandwidth_bytes_per_s: Peak DRAM bandwidth (8 channels of
            DDR3-1600 in the paper's baseline).
        random_access_efficiency: Fraction of peak bandwidth achieved by
            the mixed streaming/random traffic of graph workloads.
        llc_bytes: Last-level cache capacity (determines how much of the
            vertex state stays on chip).
        cache_line_bytes: Line size for the random vertex-state accesses.
        ops_per_edge: Instructions per traversed edge.
        ops_per_vertex: Instructions per active vertex per iteration.
        core_energy_per_op_j: Energy per instruction on the big core
            (including its share of the cache hierarchy).
        static_power_w: Static + uncore power of the whole chip.
    """

    name: str = "DDR3-OoO"
    cores: int = 32
    frequency_ghz: float = 4.0
    issue_width: float = 2.0
    memory_bandwidth_bytes_per_s: float = 102.4e9
    random_access_efficiency: float = 0.70
    llc_bytes: int = 32 * 1024 * 1024
    cache_line_bytes: int = 64
    ops_per_edge: int = 16
    ops_per_vertex: int = 12
    core_energy_per_op_j: float = 3.0e-10
    static_power_w: float = 60.0

    @classmethod
    def ddr3_server(cls) -> "ConventionalParameters":
        """The 32-core, 102.4 GB/s DDR3 baseline of the Tesseract paper."""
        return cls()


class ConventionalGraphSystem:
    """Analytical baseline executor for graph work profiles."""

    def __init__(
        self,
        parameters: Optional[ConventionalParameters] = None,
        energy_model: Optional[HostEnergyModel] = None,
    ) -> None:
        self.parameters = parameters or ConventionalParameters.ddr3_server()
        self.energy_model = energy_model or HostEnergyModel.desktop()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def vertex_state_miss_rate(
        self,
        graph: CsrGraph,
        profile: WorkProfile,
        effective_num_vertices: Optional[int] = None,
    ) -> float:
        """Probability that a random destination-vertex access misses the LLC.

        Modeled as the fraction of the per-vertex state that does not fit in
        the last-level cache: for graphs much larger than the cache this
        approaches 1, for small graphs it approaches 0 — which is exactly
        why PIM targets large working sets.

        Args:
            graph: The measured graph.
            profile: The workload's per-vertex state size.
            effective_num_vertices: Override for the vertex count, used when
                a measured work profile has been scaled up to represent a
                larger graph than the one actually materialized.
        """
        num_vertices = effective_num_vertices or graph.num_vertices
        state_bytes = num_vertices * profile.vertex_state_bytes
        if state_bytes <= 0:
            return 0.0
        resident_fraction = min(1.0, self.parameters.llc_bytes / state_bytes)
        return 1.0 - resident_fraction

    def effective_bandwidth_bytes_per_s(self) -> float:
        """Sustained bandwidth for the mixed graph access pattern."""
        return (
            self.parameters.memory_bandwidth_bytes_per_s
            * self.parameters.random_access_efficiency
        )

    def aggregate_ops_per_second(self) -> float:
        """Aggregate instruction throughput of all cores."""
        p = self.parameters
        return p.cores * p.frequency_ghz * 1e9 * p.issue_width

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        graph: CsrGraph,
        profile: WorkProfile,
        effective_num_vertices: Optional[int] = None,
    ) -> GraphExecutionResult:
        """Execute a measured work profile on the conventional system.

        Args:
            graph: The measured graph (used for structure-derived statistics).
            profile: The measured work profile (possibly scaled).
            effective_num_vertices: Vertex count of the logical graph the
                profile represents when it has been scaled.
        """
        p = self.parameters
        miss_rate = self.vertex_state_miss_rate(graph, profile, effective_num_vertices)
        bandwidth = self.effective_bandwidth_bytes_per_s()
        ops_rate = self.aggregate_ops_per_second()

        memory_ns = 0.0
        compute_ns = 0.0
        dram_bytes = 0.0
        on_chip_bytes = 0.0
        total_ops = 0.0

        for active, edges in zip(profile.active_vertices, profile.traversed_edges):
            edge_stream_bytes = edges * 8  # adjacency entries stream from DRAM
            vertex_random_bytes = edges * miss_rate * p.cache_line_bytes
            vertex_hit_bytes = edges * (1.0 - miss_rate) * profile.vertex_state_bytes
            state_update_bytes = active * profile.vertex_state_bytes * miss_rate

            iteration_dram_bytes = edge_stream_bytes + vertex_random_bytes + state_update_bytes
            iteration_ops = edges * p.ops_per_edge + active * p.ops_per_vertex

            memory_ns += iteration_dram_bytes / bandwidth * 1e9
            compute_ns += iteration_ops / ops_rate * 1e9
            dram_bytes += iteration_dram_bytes
            on_chip_bytes += vertex_hit_bytes
            total_ops += iteration_ops

        time_ns = max(memory_ns, compute_ns)

        dram_energy_j = dram_bytes * self.energy_model.dram_energy_per_byte_j
        cache_energy_j = (dram_bytes + on_chip_bytes) * (
            self.energy_model.hierarchy_energy_per_byte_j(reaches_memory=False)
        )
        core_energy_j = total_ops * p.core_energy_per_op_j
        static_j = p.static_power_w * time_ns * 1e-9
        energy_j = dram_energy_j + cache_energy_j + core_energy_j + static_j

        return GraphExecutionResult(
            system=p.name,
            workload=profile.name,
            time_ns=time_ns,
            energy_j=energy_j,
            breakdown={"memory_ns": memory_ns, "compute_ns": compute_ns},
            energy_breakdown={
                "dram_j": dram_energy_j,
                "caches_j": cache_energy_j,
                "cores_j": core_energy_j,
                "static_j": static_j,
            },
        )
