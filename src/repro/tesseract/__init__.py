"""Tesseract: a scalable processing-in-memory accelerator for graph analytics.

Tesseract (Ahn et al., ISCA 2015) places a simple in-order core in the
logic layer of each vault of a 3D-stacked memory system, partitions the
graph across vaults, and programs the system with non-blocking *remote
function calls*: instead of pulling a remote vertex's data across the
network, a core sends the operation to the core that owns the data.

This subpackage provides:

* :mod:`repro.tesseract.core` — PIM core parameters,
* :mod:`repro.tesseract.message` — the remote-function-call programming
  interface and a functional vault-parallel runtime used to validate the
  message-counting model,
* :mod:`repro.tesseract.runtime` — the analytical performance/energy model
  of a full Tesseract machine executing a graph workload,
* :mod:`repro.tesseract.baseline` — the conventional (DDR3 + out-of-order
  multicore) baseline the paper compares against.
"""

from repro.tesseract.baseline import ConventionalParameters, ConventionalGraphSystem
from repro.tesseract.core import PimCoreParameters
from repro.tesseract.message import RemoteCall, VaultProgramRuntime
from repro.tesseract.runtime import GraphExecutionResult, TesseractSystem, TesseractParameters

__all__ = [
    "ConventionalGraphSystem",
    "ConventionalParameters",
    "GraphExecutionResult",
    "PimCoreParameters",
    "RemoteCall",
    "TesseractParameters",
    "TesseractSystem",
    "VaultProgramRuntime",
]
