"""The shared query-plan IR: one lowering path for every tier.

Before this module existed, "how a query becomes primitive bulk
operations" lived in three places: :meth:`QueryEngine.lower_scan` built
:class:`~repro.service.requests.ScanRequest` envelopes,
:meth:`BitmapIndex.lower_conjunction` expanded conjunctions into OR/AND
chains, and the :class:`~repro.service.planner.BatchPlanner` drove the
expansion with its own row-size bookkeeping.  The cluster tier then
repeated the dance shard-locally through
:class:`~repro.database.sharding.BitmapIndexShardView`.

This module is the single source of truth both tiers lower through:

* **Specs** — :class:`ScanSpec` and :class:`ConjunctionSpec` are the
  declarative descriptions a client hands to
  :class:`~repro.api.session.PimSession`.  A spec knows how to validate
  itself, how big its result is, how to evaluate itself functionally on
  the host (:meth:`evaluate`), and how to lower itself into the service
  request the frontends queue (:meth:`to_request`).
* **Chain lowering** — :func:`lower_conjunction_steps` expands a
  conjunction into the data-dependent chain of primitive bulk bitwise
  steps.  It is duck-typed over the bitmap source (a full
  :class:`~repro.database.bitmap_index.BitmapIndex` or a shard view), so
  the single-device planner and every cluster shard run the identical
  code path; :meth:`BitmapIndex.lower_conjunction` and the shard view
  now merely delegate here.

The step count of a lowered chain matches the conjunction's
:class:`~repro.database.bitmap_index.BitmapPlan` exactly, so charging
each step at the engine's bulk-operation cost attributes the same total
latency and energy as the plan-level cost model — the invariant the
property tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Sequence, Tuple, Union

import numpy as np

from repro.ambit.bitvector import BulkBitVector
from repro.database.bitmap_index import BitmapPlan

#: Predicate kinds a scan spec understands (dispatched to
#: :meth:`BitWeavingColumn.scan`).  The service request layer owns the
#: canonical tuple; re-exported here so API clients need only repro.api.
from repro.service.requests import SCAN_KINDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.database.bitweaving import BitWeavingColumn, ScanPlan
    from repro.service.requests import BitmapConjunctionRequest, ScanRequest
    from repro.storage.requests import AppendRequest, DeleteRequest, UpdateRequest


@dataclass(frozen=True)
class ScanSpec:
    """Declarative description of one BitWeaving predicate scan.

    Attributes:
        column: The BitWeaving/V column to scan.
        kind: Predicate kind (see :data:`SCAN_KINDS`).
        constants: One constant, or (low, high) for ``between``.
    """

    column: "BitWeavingColumn"
    kind: str
    constants: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in SCAN_KINDS:
            raise ValueError(f"unknown scan kind {self.kind!r}")
        object.__setattr__(self, "constants", tuple(self.constants))
        expected = 2 if self.kind == "between" else 1
        if len(self.constants) != expected:
            raise ValueError(
                f"{self.kind} takes {expected} constant(s), got {len(self.constants)}"
            )

    @property
    def num_rows(self) -> int:
        """Rows of the result bit vector."""
        return self.column.num_rows

    def evaluate(self) -> Tuple[np.ndarray, "ScanPlan"]:
        """(packed result bits, bulk-operation plan), evaluated on the host."""
        return self.column.scan(self.kind, *self.constants)

    def to_request(self) -> "ScanRequest":
        """Lower to the primitive service request the frontends queue."""
        from repro.service.requests import ScanRequest  # local: avoid cycle

        return ScanRequest(column=self.column, kind=self.kind, constants=self.constants)


@dataclass(frozen=True)
class ConjunctionSpec:
    """Declarative description of one bitmap-index conjunction.

    Attributes:
        index: The bitmap source (a :class:`BitmapIndex` or a shard view —
            anything with ``num_rows``, ``bitmap`` and
            ``evaluate_conjunction``).
        predicates: (column, values) pairs; each contributes an ``IN``.
    """

    index: Any
    predicates: Tuple[Tuple[str, Tuple[int, ...]], ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("predicates must not be empty")
        normalized = tuple(
            (column, tuple(values)) for column, values in self.predicates
        )
        object.__setattr__(self, "predicates", normalized)
        for column, values in self.predicates:
            if not values:
                raise ValueError(f"predicate on {column!r} has no values")

    @property
    def num_rows(self) -> int:
        """Rows of the result bit vector."""
        return self.index.num_rows

    def evaluate(self) -> Tuple[np.ndarray, BitmapPlan]:
        """(packed result bits, bulk-operation plan), evaluated on the host."""
        return self.index.evaluate_conjunction(list(self.predicates))

    def to_request(self) -> "BitmapConjunctionRequest":
        """Lower to the high-level service request the planner expands."""
        from repro.service.requests import BitmapConjunctionRequest  # local: avoid cycle

        return BitmapConjunctionRequest(index=self.index, predicates=self.predicates)


@dataclass(frozen=True)
class AppendSpec:
    """Declarative description of a row append (every column covered).

    Attributes:
        table: The table gaining rows.
        index: The bitmap index maintained over it.
        rows: Per-column code sequences, equal lengths.
    """

    table: Any
    index: Any
    rows: Any

    @property
    def num_rows(self) -> None:
        """None: a write's response value is rows affected, not a bitmap."""
        return None

    def to_request(self) -> "AppendRequest":
        """Lower to the storage write request the frontends queue."""
        from repro.storage.requests import AppendRequest  # local: avoid cycle

        return AppendRequest(table=self.table, index=self.index, rows=self.rows)


@dataclass(frozen=True)
class UpdateSpec:
    """Declarative description of ``column[row_ids] = values``.

    Row ids must be unique within one update (the incremental plane
    maintenance is ambiguous otherwise).
    """

    table: Any
    index: Any
    column: str
    row_ids: Tuple[int, ...]
    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_ids", tuple(self.row_ids))
        object.__setattr__(self, "values", tuple(self.values))
        if len(self.row_ids) != len(self.values):
            raise ValueError("row_ids and values must have equal lengths")

    @property
    def num_rows(self) -> None:
        """None: a write's response value is rows affected, not a bitmap."""
        return None

    def to_request(self) -> "UpdateRequest":
        """Lower to the storage write request the frontends queue."""
        from repro.storage.requests import UpdateRequest  # local: avoid cycle

        return UpdateRequest(
            table=self.table,
            index=self.index,
            column=self.column,
            row_ids=self.row_ids,
            values=self.values,
        )


@dataclass(frozen=True)
class DeleteSpec:
    """Declarative description of a physical row deletion (rows renumber)."""

    table: Any
    index: Any
    row_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_ids", tuple(self.row_ids))

    @property
    def num_rows(self) -> None:
        """None: a write's response value is rows affected, not a bitmap."""
        return None

    def to_request(self) -> "DeleteRequest":
        """Lower to the storage write request the frontends queue."""
        from repro.storage.requests import DeleteRequest  # local: avoid cycle

        return DeleteRequest(table=self.table, index=self.index, row_ids=self.row_ids)


#: Everything a :class:`~repro.api.session.PimSession` accepts declaratively.
QuerySpec = Union[ScanSpec, ConjunctionSpec]

#: The mutation specs :meth:`PimSession.append` / ``update`` / ``delete`` build.
WriteSpec = Union[AppendSpec, UpdateSpec, DeleteSpec]


def range_count_spec(column: "BitWeavingColumn", low: int, high: int) -> ScanSpec:
    """``SELECT COUNT(*) WHERE low <= col <= high`` as a scan spec."""
    return ScanSpec(column=column, kind="between", constants=(low, high))


def spec_for_request(request: object) -> Union[QuerySpec, WriteSpec]:
    """Recover the declarative spec of an already-lowered request.

    Lets streams of raw :class:`~repro.service.requests.ScanRequest` /
    :class:`~repro.service.requests.BitmapConjunctionRequest` (and the
    storage write requests) — the shape the arrival schedulers and the
    retry client produce — flow through the session API without
    re-wrapping by hand.
    """
    from repro.service.requests import (  # local: avoid cycle
        BitmapConjunctionRequest,
        ScanRequest,
    )
    from repro.storage.requests import (  # local: avoid cycle
        AppendRequest,
        DeleteRequest,
        UpdateRequest,
    )

    if isinstance(request, ScanRequest):
        return ScanSpec(
            column=request.column, kind=request.kind, constants=tuple(request.constants)
        )
    if isinstance(request, BitmapConjunctionRequest):
        return ConjunctionSpec(index=request.index, predicates=request.predicates)
    if isinstance(request, AppendRequest):
        return AppendSpec(table=request.table, index=request.index, rows=request.rows)
    if isinstance(request, UpdateRequest):
        return UpdateSpec(
            table=request.table,
            index=request.index,
            column=request.column,
            row_ids=tuple(request.row_ids),
            values=tuple(request.values),
        )
    if isinstance(request, DeleteRequest):
        return DeleteSpec(
            table=request.table, index=request.index, row_ids=tuple(request.row_ids)
        )
    raise TypeError(f"no query spec for request type {type(request).__name__}")


# ----------------------------------------------------------------------
# Conjunction chain lowering (shared by both tiers)
# ----------------------------------------------------------------------
#: One lowered step: ``(op, a, b, out)`` over host-only vectors.
LoweredStep = Tuple[str, BulkBitVector, BulkBitVector, BulkBitVector]


def lower_conjunction_steps(
    index: Any,
    predicates: Sequence[Tuple[str, Sequence[int]]],
    row_size_bytes: int = 8192,
) -> Tuple[List[LoweredStep], BulkBitVector, BitmapPlan]:
    """Lower a conjunction into primitive bulk bitwise steps.

    Each step is ``(op, a, b, out)`` over host-only
    :class:`BulkBitVector` operands: first the OR chain of each
    predicate's value bitmaps, then the AND chain across predicates.
    The steps are data-dependent in order (each ``out`` feeds a later
    operand), so an executor must run them in sequence.  The step count
    matches :meth:`BitmapIndex.evaluate_conjunction`'s
    :class:`BitmapPlan` exactly, so charging each step at the engine's
    bulk-operation cost attributes the same total latency and energy as
    the plan-level cost model.

    Args:
        index: The bitmap source — anything with ``num_rows`` and
            ``bitmap(column, value)``, i.e. a
            :class:`~repro.database.bitmap_index.BitmapIndex` or a
            :class:`~repro.database.sharding.BitmapIndexShardView` (which
            is how every cluster shard lowers exactly like the
            single-device planner).
        predicates: (column, values) pairs.
        row_size_bytes: Row size of the *target device* — the vectors'
            row-chunk count, and therefore the cost the executor
            charges per step, is derived from it.  Callers lowering for
            an engine must pass its device's row size or the charged
            cost diverges from the plan-level model.

    Returns:
        (steps, result vector, plan).  With one single-value predicate
        the step list is empty and the result is the bitmap itself.
    """
    if not predicates:
        raise ValueError("predicates must not be empty")
    num_rows = index.num_rows
    steps: List[LoweredStep] = []
    operations: List[Tuple[str, int]] = []
    partials: List[BulkBitVector] = []
    for column, values in predicates:
        sub_steps, acc = lower_predicate_steps(index, column, values, row_size_bytes)
        steps.extend(sub_steps)
        if sub_steps:
            operations.append(("or", len(sub_steps)))
        partials.append(acc)
    result = partials[0]
    for partial in partials[1:]:
        out = BulkBitVector(num_rows, row_size_bytes)
        steps.append(("and", result, partial, out))
        result = out
    if len(predicates) > 1:
        operations.append(("and", len(predicates) - 1))
    plan = BitmapPlan(operations=operations, result_bits=num_rows)
    return steps, result, plan


def lower_predicate_steps(
    index: Any,
    column: str,
    values: Sequence[int],
    row_size_bytes: int = 8192,
) -> Tuple[List[LoweredStep], BulkBitVector]:
    """Lower one predicate's OR chain: ``col IN values`` as bulk steps.

    The independent sub-chain of one conjunction predicate — this is the
    unit the batch plan optimizer shares across requests (CSE) and spreads
    across bank lanes (sub-chain splitting).  Steps are data-dependent in
    order; with a single value the step list is empty and the result is
    the value's bitmap vector itself.

    Args:
        index: The bitmap source (see :func:`lower_conjunction_steps`).
        column: Predicate column.
        values: The ``IN`` set (must be non-empty).
        row_size_bytes: Row size of the target device.

    Returns:
        (steps, result vector): ``len(values) - 1`` OR steps and the
        vector holding the predicate's result bitmap.
    """
    values = list(values)
    if not values:
        raise ValueError(f"predicate on {column!r} has no values")
    num_rows = index.num_rows
    steps: List[LoweredStep] = []
    acc = _bitmap_vector(index, column, values[0], row_size_bytes)
    for value in values[1:]:
        out = BulkBitVector(num_rows, row_size_bytes)
        steps.append(
            ("or", acc, _bitmap_vector(index, column, value, row_size_bytes), out)
        )
        acc = out
    return steps, acc


def _bitmap_vector(index: Any, column: str, value: int, row_size_bytes: int) -> BulkBitVector:
    """A host-only vector holding one value's packed bitmap."""
    packed = index.bitmap(column, value)
    vector = BulkBitVector(index.num_rows, row_size_bytes)
    vector.data[: packed.size] = packed
    return vector
