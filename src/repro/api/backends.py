"""The ``Backend`` protocol and the serial host-CPU backend.

PR 3's retry client already drove both the single-device
:class:`~repro.service.frontend.ServiceFrontend` and the sharded
:class:`~repro.cluster.frontend.ClusterFrontend` through an *implicit*
``offer`` / ``advance_to`` / ``drain`` / ``result`` surface.  This module
makes that contract explicit as :class:`Backend`, the protocol every
execution tier speaks and the only thing a
:class:`~repro.api.session.PimSession` needs.

Three implementations exist today:

* :class:`~repro.service.frontend.ServiceFrontend` — one device, full
  admission control, batched bank-overlapped execution;
* :class:`~repro.cluster.frontend.ClusterFrontend` — N devices behind
  scatter-gather routing;
* :class:`HostBackend` (here) — the no-PIM baseline: every scan and
  conjunction runs serially on the host CPU's cache-aware cost model.
  It admits everything (a host has no bank occupancy to protect) and
  serves each request the instant it arrives, which is exactly the
  single-server FIFO queue the legacy CPU pipeline modeled.

Because all three speak the protocol, the *same* client code — a
session, a retry client, an arrival schedule — runs an identical
workload against any tier, which is the paper's end-to-end comparison
made into an API.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, runtime_checkable

from repro.analysis.metrics import summarize_queue_records
from repro.database.queries import QueryEngine
from repro.service.frontend import PipelineResult
from repro.service.requests import (
    BitmapConjunctionRequest,
    FrontendRequest,
    QueuedRequest,
    ScanRequest,
)


@runtime_checkable
class Backend(Protocol):
    """The execution surface every tier offers a session.

    A backend owns a virtual clock (``clock_ns``), admits requests with
    :meth:`offer` (returning a duck-typed envelope carrying ``admitted``,
    ``rejected_reason``, ``completed``, ``value``, ``metrics`` and the
    wait/sojourn accounting), serves queued work as its clock advances,
    and summarizes everything served with :meth:`result`.
    """

    clock_ns: float

    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ):
        """Admit one request at its arrival time; returns its envelope."""
        ...

    def advance_to(self, until_ns: float) -> None:
        """Advance the virtual clock towards ``until_ns``, serving work."""
        ...

    def drain(self) -> None:
        """Serve everything queued."""
        ...

    def result(self, name: str = ...):
        """Summarize everything served so far."""
        ...


class HostBackend:
    """Serial host-CPU execution behind the :class:`Backend` protocol.

    The host baseline the paper argues against: scans and conjunctions
    are evaluated functionally on the host and charged at the CPU scan
    cost model (cache-resident fraction, de-rated DRAM bandwidth — see
    :meth:`QueryEngine.cpu_scan_cost`).  A single core offers no bank
    overlap, so service is a FIFO single-server queue: each request
    starts at ``max(clock, arrival)`` and occupies the server for its
    full scan latency.  Admission never rejects — the envelope surface
    (waits, sojourns, deadline misses) still fills in, so host and PIM
    tiers report through one shape.

    Args:
        coster: Query cost model supplying ``cpu_scan_cost`` (a default
            :class:`QueryEngine` is created when omitted).
    """

    def __init__(self, coster: Optional[QueryEngine] = None) -> None:
        self.coster = coster or QueryEngine()
        self.clock_ns = 0.0
        self.busy_ns = 0.0
        self.records: List[QueuedRequest] = []
        #: Requests served (each is its own "batch": no host batching).
        self.served = 0

    def offer(
        self,
        request: FrontendRequest,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        arrival_ns: Optional[float] = None,
    ) -> QueuedRequest:
        """Serve one request immediately (FIFO single server, no rejection)."""
        arrival = self.clock_ns if arrival_ns is None else float(arrival_ns)
        self.clock_ns = max(self.clock_ns, arrival)
        queued = QueuedRequest(
            request=request,
            arrival_ns=arrival,
            priority=priority,
            deadline_ns=deadline_ns,
            seq=len(self.records),
        )
        self.records.append(queued)
        value, metrics = self._execute(request)
        queued.modeled_ns = metrics.latency_ns
        queued.start_ns = self.clock_ns
        queued.finish_ns = queued.start_ns + metrics.latency_ns
        queued.metrics = metrics
        queued.value = value
        self.clock_ns = queued.finish_ns
        self.busy_ns += metrics.latency_ns
        self.served += 1
        return queued

    def _execute(self, request: FrontendRequest):
        if isinstance(request, ScanRequest):
            bits, plan = request.scan_result()
            return bits, self.coster.cpu_scan_cost(plan)
        if isinstance(request, BitmapConjunctionRequest):
            bits, plan = request.index.evaluate_conjunction(list(request.predicates))
            return bits, self.coster.cpu_scan_cost(plan)
        raise TypeError(
            f"the host backend serves scans and conjunctions, not "
            f"{type(request).__name__}"
        )

    def advance_to(self, until_ns: float) -> None:
        """No-op: host service is synchronous, nothing is ever queued."""

    def drain(self) -> None:
        """No-op: host service is synchronous, nothing is ever queued."""

    def result(self, name: str = "host") -> PipelineResult:
        """Summarize everything served so far into a :class:`PipelineResult`."""
        metrics = summarize_queue_records(
            name,
            self.records,
            makespan_ns=self.clock_ns,
            busy_ns=self.busy_ns,
            batches=self.served,
        )
        return PipelineResult(records=list(self.records), batches=[], metrics=metrics)
