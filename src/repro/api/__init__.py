"""The unified client API: sessions, futures, and the shared plan IR.

``repro.api`` is the one stable surface callers program against,
whatever executes underneath:

* :class:`PimSession` — declarative submit (``scan`` / ``conjunction`` /
  ``range_count``), :class:`Future` handles, one :class:`Response`
  shape, one :class:`SessionReport` roll-up;
* :class:`Backend` — the ``offer`` / ``advance_to`` / ``drain`` /
  ``result`` protocol every tier speaks
  (:class:`~repro.service.frontend.ServiceFrontend`,
  :class:`~repro.cluster.frontend.ClusterFrontend`, and the serial
  :class:`HostBackend` baseline);
* :mod:`repro.api.plans` — the shared plan IR both tiers lower through
  (:class:`ScanSpec`, :class:`ConjunctionSpec`,
  :func:`lower_conjunction_steps`).

The exported names below are pinned by ``tests/test_api_surface.py``;
additions are deliberate API growth, removals are breaking changes.
"""

from repro.api.backends import Backend, HostBackend
from repro.api.plans import (
    SCAN_KINDS,
    AppendSpec,
    ConjunctionSpec,
    DeleteSpec,
    QuerySpec,
    ScanSpec,
    UpdateSpec,
    WriteSpec,
    lower_conjunction_steps,
    range_count_spec,
    spec_for_request,
)
from repro.api.session import (
    ClusterDetails,
    Future,
    HostDetails,
    PimSession,
    RequestFailed,
    RequestRejected,
    Response,
    ResponseDetails,
    ServiceDetails,
    SessionReport,
    ShardUnavailable,
)

__all__ = [
    "AppendSpec",
    "Backend",
    "ClusterDetails",
    "ConjunctionSpec",
    "DeleteSpec",
    "Future",
    "HostBackend",
    "HostDetails",
    "PimSession",
    "QuerySpec",
    "RequestFailed",
    "RequestRejected",
    "Response",
    "ResponseDetails",
    "SCAN_KINDS",
    "ScanSpec",
    "ServiceDetails",
    "SessionReport",
    "ShardUnavailable",
    "UpdateSpec",
    "WriteSpec",
    "lower_conjunction_steps",
    "range_count_spec",
    "spec_for_request",
]
