"""``PimSession``: one submit/future surface over every execution tier.

Before this module, running "the same workload" against the single-device
service tier and the sharded cluster tier meant choosing among six
divergent :class:`~repro.database.queries.QueryEngine` entry points and
two frontends returning five different result shapes.  A session
collapses that to one loop::

    session = PimSession.over_cluster(num_shards=4)   # or .over_service()
    f1 = session.scan(column, "between", 10, 99, priority=1)
    f2 = session.conjunction(index, [("region", (1, 2)), ("status", (0,))])
    f3 = session.range_count(column, 32, 57)
    response = f1.result()          # drains the backend if needed
    print(response.matching_rows, response.latency_ns, response.details)
    print(session.report())         # unified SessionReport, any tier

* **Declarative constructors** (:meth:`~PimSession.scan`,
  :meth:`~PimSession.conjunction`, :meth:`~PimSession.range_count`)
  build :mod:`repro.api.plans` specs, lower them once through the shared
  plan IR, and submit them to the backend at the session's virtual
  clock.
* **Futures** wrap the backend's envelope: ``done()``, ``status``,
  ``result()`` (which virtually blocks — it drains the backend), and the
  per-request timing surface.
* **One Response shape** regardless of tier: value bits, matching rows,
  scan + host-epilogue latency/energy, queueing timestamps, and a typed
  ``details`` field carrying the tier-specific extras
  (:class:`ServiceDetails` / :class:`ClusterDetails` /
  :class:`HostDetails`).
* **Windowed reporting**: a session snapshots its backend at
  construction and :meth:`~PimSession.report` summarizes only *its own*
  traffic, so several sessions can share one long-lived backend without
  folding each other's requests into their reports.

A session works over anything speaking the
:class:`~repro.api.backends.Backend` protocol; bit-exactness of the same
workload across tiers is pinned by ``tests/test_api_session.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.metrics import (
    ClusterMetrics,
    QueueMetrics,
    summarize_queue_records,
)
from repro.api.backends import Backend, HostBackend
from repro.api.plans import (
    AppendSpec,
    ConjunctionSpec,
    DeleteSpec,
    QuerySpec,
    ScanSpec,
    UpdateSpec,
    WriteSpec,
    range_count_spec,
    spec_for_request,
)
from repro.cluster.frontend import FAILURE_REASONS
from repro.database.bitmap_index import BitmapIndex
from repro.database.queries import QueryEngine
from repro.obs import NULL_OBSERVER, Observer, resolve_observe
from repro.service.frontend import ArrivalEvent


class RequestRejected(RuntimeError):
    """Raised by :meth:`Future.result` when admission refused the request.

    Attributes:
        reason: The backend's ``rejected_reason`` (``"queue_full"``,
            ``"bank_occupancy"``, ``"shed"``, ``"cancelled"``, ...).
    """

    def __init__(self, reason: str) -> None:
        super().__init__(f"request rejected by admission control ({reason})")
        self.reason = reason


class RequestFailed(RequestRejected):
    """Raised when the request was lost to an infrastructure failure
    rather than refused by admission control.  Subclasses
    :class:`RequestRejected` so existing ``except RequestRejected``
    handlers keep working, but lets fault-aware callers distinguish
    "the system said no" from "the system broke"."""

    def __init__(self, reason: str) -> None:
        RuntimeError.__init__(self, f"request failed ({reason})")
        self.reason = reason


class ShardUnavailable(RequestFailed):
    """Raised when a request was stranded because no routable replica
    could absorb it: the shard holding its data died, drained, or was
    retired with nowhere to re-offer the work (``"shard_failed"``,
    ``"shard_unavailable"``, ``"shard_retired"``)."""


def _rejection(reason: str) -> RequestRejected:
    """Typed outcome for an unadmitted record: failure reasons from the
    cluster's fault path map to :class:`ShardUnavailable`, everything
    else stays a plain admission :class:`RequestRejected`."""
    if reason in FAILURE_REASONS:
        return ShardUnavailable(reason)
    return RequestRejected(reason)


# ----------------------------------------------------------------------
# Tier-specific response details
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ServiceDetails:
    """Service-tier extras: which batch served the request, what the
    admission model charged for it, and how the result cache treated it."""

    batch_index: int
    modeled_ns: float
    modeled_banks: Tuple = ()
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0


@dataclass(frozen=True)
class ClusterDetails:
    """Cluster-tier extras: where the request ran, what the gather cost,
    and how the shard-local result caches treated it."""

    shard_ids: Tuple[int, ...]
    fanout: int
    host_merge_ns: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    failovers: int = 0


@dataclass(frozen=True)
class HostDetails:
    """Host-tier extras (none: a single core has no placement to report)."""


ResponseDetails = Union[ServiceDetails, ClusterDetails, HostDetails]


@dataclass
class Response:
    """The unified outcome of one session request, identical across tiers.

    Collapses the legacy ``QueryResult`` / ``BatchQueryResult`` /
    ``PipelineResult`` / ``ClusterResult`` / ``BatchResult`` shapes: the
    per-request fields live here, the per-stream roll-up in
    :class:`SessionReport`.

    Attributes:
        kind: What was asked (``"scan"``, ``"range_count"``,
            ``"conjunction"``, a write — ``"append"`` / ``"update"`` /
            ``"delete"`` — or ``"request"`` for raw primitives).
        status: ``"completed"`` or ``"rejected"``.
        value: The packed result bitmap (None when rejected, or for
            requests without a bitmap result).
        matching_rows: COUNT(*) of the predicate (None when not a query).
        latency_ns: Scan service latency plus the host epilogue
            (popcount + materialization) — the end-to-end query latency.
        energy_j: Scan plus epilogue energy.
        breakdown: Latency components (``scan_ns`` / ``epilogue_ns``).
        arrival_ns / start_ns / finish_ns: Queueing timestamps on the
            backend's virtual clock (NaN when rejected).
        wait_ns / sojourn_ns: Arrival-to-start / arrival-to-finish.
        deadline_missed: True when service finished past the deadline.
        rejected_reason: Why admission refused it ("" when completed).
        details: Tier-specific extras (typed by backend tier).
        trace: Root :class:`repro.obs.Span` of the request's lifecycle
            when the backend's observability plane was recording
            (``observe=True``); None otherwise.
    """

    kind: str
    status: str
    value: Any = None
    matching_rows: Optional[int] = None
    latency_ns: float = 0.0
    energy_j: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)
    arrival_ns: float = math.nan
    start_ns: float = math.nan
    finish_ns: float = math.nan
    wait_ns: float = math.nan
    sojourn_ns: float = math.nan
    deadline_missed: bool = False
    rejected_reason: str = ""
    details: ResponseDetails = field(default_factory=HostDetails)
    trace: Any = field(default=None, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        """True when the request finished service."""
        return self.status == "completed"


class Future:
    """Handle to one submitted request.

    Cheap to hold, lazy to resolve: the backend simulates in virtual
    time, so :meth:`result` "blocks" by draining the session's backend
    and then materializes the unified :class:`Response`.

    Attributes:
        spec: The declarative spec (None for raw primitive submissions).
        request: The lowered request the backend queued.
        record: The backend's envelope (tier-specific; the protocol
            surface — ``admitted``, ``completed``, ``value``,
            ``metrics``, timing — is what the session reads).
    """

    def __init__(
        self,
        session: "PimSession",
        spec: Optional[QuerySpec],
        request: Any,
        record: Any,
        kind: str,
    ) -> None:
        self._session = session
        self.spec = spec
        self.request = request
        self.record = record
        self.kind = kind
        self._response: Optional[Response] = None

    def done(self) -> bool:
        """True once the request has been served (never for rejected ones)."""
        return bool(self.record.completed)

    @property
    def status(self) -> str:
        """``"queued"``, ``"completed"``, or ``"rejected"``."""
        if not self.record.admitted:
            return "rejected"
        return "completed" if self.record.completed else "queued"

    @property
    def metrics(self) -> Any:
        """The backend-charged service cost (None before service)."""
        return self.record.metrics

    @property
    def wait_ns(self) -> float:
        """Arrival to service start (NaN before service)."""
        return self.record.wait_ns

    @property
    def sojourn_ns(self) -> float:
        """Arrival to completion (NaN before service)."""
        return self.record.sojourn_ns

    @property
    def trace(self) -> Any:
        """Root :class:`repro.obs.Span` of this request's lifecycle, or
        None unless the backend records with ``observe=True``."""
        return getattr(self.record, "trace", None)

    def result(self) -> Response:
        """The unified response; drains the backend when still queued.

        Raises:
            RequestRejected: When admission refused the request — at the
                door, by load shedding, or by an all-or-nothing scatter.
            ShardUnavailable: When an infrastructure failure stranded it
                — the shard holding its data died or was retired with no
                routable replica to absorb the re-offer.
        """
        if self._response is not None and self._response.completed:
            return self._response
        if not self.record.admitted:
            raise _rejection(self.record.rejected_reason)
        if not self.record.completed:
            self._session.drain()
        if not self.record.admitted:  # e.g. shed or cancelled while queued
            raise _rejection(self.record.rejected_reason)
        if not self.record.completed:
            raise RuntimeError("request did not complete after drain")
        self._response = self._session._build_response(self)
        return self._response

    def response(self) -> Response:
        """Like :meth:`result`, but rejections return a ``"rejected"``
        response instead of raising."""
        try:
            return self.result()
        except RequestRejected:
            return Response(
                kind=self.kind,
                status="rejected",
                rejected_reason=self.record.rejected_reason,
                arrival_ns=self.record.arrival_ns,
                details=self._session._details_for(self.record),
                trace=self.trace,
            )


_SHARED_METRIC_FIELDS = (
    "offered",
    "admitted",
    "rejected",
    "shed",
    "completed",
    "deadline_misses",
    "wait_p50_ns",
    "wait_p99_ns",
    "sojourn_p50_ns",
    "sojourn_p99_ns",
    "makespan_ns",
    "busy_ns",
    "serial_latency_ns",
    "energy_j",
    "host_merge_ns",
    "ops_eliminated",
    "shared_subchains",
    "cache_hits",
    "cache_misses",
    "cache_invalidations",
)


@dataclass
class SessionReport:
    """The unified per-stream roll-up, identical in shape across tiers.

    The common queueing surface (counts, percentiles, makespan, busy
    time, serial latency, energy) reads directly off the report; the
    full tier-specific metrics object stays available in ``details`` —
    :class:`~repro.analysis.metrics.QueueMetrics` for the service and
    host tiers, :class:`~repro.analysis.metrics.ClusterMetrics` (with
    utilization, imbalance, fan-out, host merge cost) for the cluster.

    Attributes:
        name: Label of the report.
        tier: ``"service"``, ``"cluster"``, or ``"host"``.
        requests: Futures this session submitted.
        details: The underlying tier metrics object.
        obs: Metrics-registry snapshot
            (``{"counters", "gauges", "histograms"}``) when the session's
            observability plane is recording; None otherwise.  Note the
            registry is plane-wide: a shared backend accumulates across
            sessions, unlike the windowed fields above.
    """

    name: str
    tier: str
    requests: int
    details: Union[QueueMetrics, ClusterMetrics]
    obs: Optional[Dict[str, Any]] = None

    def __getattr__(self, item: str) -> Any:
        # Delegate the shared queueing surface to the tier metrics; keeps
        # one report shape without duplicating fifteen fields.
        if item in _SHARED_METRIC_FIELDS or item in (
            "rejection_rate",
            "deadline_miss_rate",
        ):
            return getattr(self.details, item)
        raise AttributeError(item)


class PimSession:
    """One submit/future client surface over any :class:`Backend`.

    Args:
        backend: The execution tier — a
            :class:`~repro.service.frontend.ServiceFrontend`, a
            :class:`~repro.cluster.frontend.ClusterFrontend`, or a
            :class:`~repro.api.backends.HostBackend` (anything speaking
            the protocol).
        coster: Host-side query cost model for the epilogue (popcount +
            materialization).  Defaults to a :class:`QueryEngine` sharing
            the backend's engine, so session responses price epilogues
            exactly as the legacy entry points did.
        name: Default label of this session's reports.
        observe: Observability plane (``repro.obs``): ``True`` binds a
            fresh recording :class:`~repro.obs.Observer` to the backend
            (span trees per request, counters/histograms in
            ``report().obs``); an observer shares a plane.  ``False``
            (the default) adopts whatever plane the backend already
            carries, so ``PimSession.over_service(observe=True)`` — the
            knob forwarded to the frontend — also lights up the session
            surface.  The host backend has no spans (it executes
            immediately); a session over it records nothing.
    """

    def __init__(
        self,
        backend: Backend,
        coster: Optional[QueryEngine] = None,
        name: str = "session",
        observe: Union[bool, Observer] = False,
    ) -> None:
        self.backend = backend
        self.name = name
        self.tier = self._tier_of(backend)
        if observe is False:
            self.obs = getattr(backend, "obs", NULL_OBSERVER)
        else:
            self.obs = resolve_observe(observe)
            binder = getattr(backend, "bind_observer", None)
            if binder is not None:
                binder(self.obs)
        self.futures: List[Future] = []
        self._coster = coster or self._default_coster()
        # Window snapshot: report() covers only this session's traffic.
        self._clock0 = backend.clock_ns
        if self.tier == "cluster":
            # Per-shard window origins: never before the session itself
            # (an idle shard's clock lags the cluster), never before the
            # shard's own clock (it may be mid-batch past the origin).
            self._shard_clock0 = [
                max(s.clock_ns, self._clock0) for s in backend.shards
            ]

    # ------------------------------------------------------------------
    # Construction conveniences
    # ------------------------------------------------------------------
    @classmethod
    def over_service(
        cls, engine=None, coster=None, name="service_session", pipeline=True, **kwargs
    ) -> "PimSession":
        """A session over a fresh single-device :class:`ServiceFrontend`.

        ``engine`` is the :class:`~repro.ambit.engine.AmbitEngine` to
        execute on (a vectorized default is built when omitted);
        ``pipeline`` selects lane-pipelined vs batch-synchronous dispatch
        (see :class:`~repro.service.executor.BatchExecutor`); other
        keyword arguments go to the frontend (``policy``,
        ``max_queue_depth``, ``max_backlog_ns``, ``functional``,
        ``shed_low_priority``, ``optimize`` for the batch plan
        optimizer, ``observe`` for the observability plane — the session
        adopts the frontend's plane automatically).
        """
        from repro.service.executor import BatchExecutor  # local: avoid cycle
        from repro.service.frontend import ServiceFrontend  # local: avoid cycle

        frontend = ServiceFrontend(
            executor=BatchExecutor(engine=engine, pipeline=pipeline), **kwargs
        )
        return cls(frontend, coster=coster, name=name)

    @classmethod
    def over_cluster(
        cls,
        num_shards: int = 2,
        coster: Optional[QueryEngine] = None,
        name: str = "cluster_session",
        **kwargs: Any,
    ) -> "PimSession":
        """A session over a fresh N-shard :class:`ClusterFrontend`.

        Keyword arguments go to the cluster frontend (``router``,
        ``engine_factory``, ``policy``, admission knobs,
        ``merge_ns_per_op``, ``optimize`` for shard-local batch plan
        optimizers, ``observe`` for a cluster-wide observability plane —
        the session adopts the cluster's plane automatically).
        """
        from repro.cluster.frontend import ClusterFrontend  # local: avoid cycle

        return cls(ClusterFrontend(num_shards=num_shards, **kwargs), coster=coster, name=name)

    @classmethod
    def over_host(
        cls, coster: Optional[QueryEngine] = None, name: str = "host_session"
    ) -> "PimSession":
        """A session over the serial host-CPU baseline backend."""
        return cls(HostBackend(coster=coster), coster=coster, name=name)

    # ------------------------------------------------------------------
    # Declarative constructors
    # ------------------------------------------------------------------
    def scan(
        self,
        column,
        kind: str,
        *constants: int,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit one BitWeaving predicate scan; returns its future."""
        spec = ScanSpec(column=column, kind=kind, constants=tuple(constants))
        return self._submit_spec(spec, "scan", priority, deadline_ns, at_ns)

    def range_count(
        self,
        column,
        low: int,
        high: int,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit ``SELECT COUNT(*) WHERE low <= col <= high``."""
        spec = range_count_spec(column, low, high)
        return self._submit_spec(spec, "range_count", priority, deadline_ns, at_ns)

    def conjunction(
        self,
        index,
        predicates: Sequence[Tuple[str, Sequence[int]]],
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit a bitmap-index conjunction of per-column ``IN`` predicates."""
        spec = ConjunctionSpec(
            index=index,
            predicates=tuple((column, tuple(values)) for column, values in predicates),
        )
        return self._submit_spec(spec, "conjunction", priority, deadline_ns, at_ns)

    def append(
        self,
        table,
        index,
        rows,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit a row append; the response value is rows appended."""
        spec = AppendSpec(table=table, index=index, rows=rows)
        return self._submit_spec(spec, "append", priority, deadline_ns, at_ns)

    def update(
        self,
        table,
        index,
        column: str,
        row_ids: Sequence[int],
        values: Sequence[int],
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit ``column[row_ids] = values``; the response value is rows
        overwritten.  Row ids must be unique within one update."""
        spec = UpdateSpec(
            table=table,
            index=index,
            column=column,
            row_ids=tuple(row_ids),
            values=tuple(values),
        )
        return self._submit_spec(spec, "update", priority, deadline_ns, at_ns)

    def delete(
        self,
        table,
        index,
        row_ids: Sequence[int],
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit a physical row deletion; the response value is rows
        removed (rows after them renumber down)."""
        spec = DeleteSpec(table=table, index=index, row_ids=tuple(row_ids))
        return self._submit_spec(spec, "delete", priority, deadline_ns, at_ns)

    def submit(
        self,
        work,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        at_ns: Optional[float] = None,
    ) -> Future:
        """Submit a plan-IR spec or an already-lowered frontend request.

        Specs lower through :mod:`repro.api.plans`; raw requests (the
        shape arrival schedulers produce) pass through untouched so their
        cached evaluations are preserved.
        """
        if isinstance(work, (ScanSpec, ConjunctionSpec, AppendSpec, UpdateSpec, DeleteSpec)):
            return self._submit_spec(
                work, self._kind_of_spec(work), priority, deadline_ns, at_ns
            )
        try:
            spec = spec_for_request(work)
            kind = self._kind_of_spec(spec)
        except TypeError:
            spec, kind = None, "request"
        return self._submit(spec, work, kind, priority, deadline_ns, at_ns)

    @staticmethod
    def _kind_of_spec(spec: Union[QuerySpec, WriteSpec]) -> str:
        if isinstance(spec, ConjunctionSpec):
            return "conjunction"
        if isinstance(spec, ScanSpec):
            return "scan"
        if isinstance(spec, AppendSpec):
            return "append"
        if isinstance(spec, UpdateSpec):
            return "update"
        return "delete"

    def submit_stream(self, events: Iterable[ArrivalEvent]) -> List[Future]:
        """Submit a whole arrival stream; futures come back in event order.

        Arrivals are processed in virtual-time order (the backend serves
        whatever its policy closes between them), exactly like the
        frontends' own ``run`` loops.
        """
        events = list(events)
        futures: List[Optional[Future]] = [None] * len(events)
        order = sorted(range(len(events)), key=lambda i: events[i].arrival_ns)
        for i in order:
            event = events[i]
            futures[i] = self.submit(
                event.request,
                priority=event.priority,
                deadline_ns=event.deadline_ns,
                at_ns=event.arrival_ns,
            )
        return futures  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Clock and lifecycle
    # ------------------------------------------------------------------
    @property
    def clock_ns(self) -> float:
        """The backend's virtual clock."""
        return self.backend.clock_ns

    def advance_to(self, until_ns: float) -> None:
        """Advance the backend's clock towards ``until_ns``, serving work."""
        self.backend.advance_to(until_ns)

    def drain(self) -> None:
        """Serve everything queued (futures become resolvable)."""
        self.backend.drain()

    def close(self) -> None:
        """Drain the backend and hand pooled device rows back.

        Call when the session owns a one-shot backend; a shared backend
        should instead be closed by whoever owns it.
        """
        self.drain()
        for executor in self._executors():
            executor.pool.drain()

    def responses(self) -> List[Response]:
        """Every future's response, submission order (rejections included)."""
        self.drain()
        return [future.response() for future in self.futures]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, name: Optional[str] = None) -> SessionReport:
        """Summarize this session's own traffic into a unified report.

        Both ends of the window are the session's own: the start is the
        backend clock at construction, and — once every future is
        terminal — the end is the last own completion (for the service
        and host tiers, busy time and batch counts come from the batches
        that served *this session's* requests).  Traffic other sessions
        push through a shared backend before or after therefore never
        leaks into the time-based fields, matching the counts.
        """
        label = name or self.name
        records = [future.record for future in self.futures]
        if self.tier == "cluster":
            self.backend.gather()
            parts_by_shard: Dict[int, List] = {}
            for record in records:
                for shard_id, part in zip(record.shard_ids, record.parts):
                    parts_by_shard.setdefault(shard_id, []).append(part)
            per_shard = [
                self._shard_window(f"{label}/shard{i}", shard, parts_by_shard.get(i, []), i)
                for i, shard in enumerate(self.backend.shards)
            ]
            merge_ops = sum(
                max(0, len(r.parts) - 1) for r in records if r.completed
            )
            elastic = getattr(self.backend, "elastic_summary", None)
            metrics: Union[QueueMetrics, ClusterMetrics] = ClusterMetrics.from_records(
                label,
                records,
                per_shard,
                merge_ops=merge_ops,
                clock_offset=self._clock0,
                # Failover/scale accounting is cluster-lifetime, not
                # windowed: shard deaths reshape every session's traffic.
                elastic=elastic() if callable(elastic) else None,
            )
        else:
            metrics = summarize_queue_records(
                label,
                records,
                makespan_ns=self._window_makespan(records),
                busy_ns=self._window_busy(records),
                batches=self._window_batches(records),
            )
        return SessionReport(
            name=label,
            tier=self.tier,
            requests=len(self.futures),
            details=metrics,
            obs=self.obs.snapshot() if self.obs.enabled else None,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _tier_of(backend: Backend) -> str:
        if hasattr(backend, "shards"):
            return "cluster"
        if isinstance(backend, HostBackend):
            return "host"
        return "service"

    def _default_coster(self) -> QueryEngine:
        if self.tier == "host":
            return self.backend.coster
        if self.tier == "cluster":
            return QueryEngine(ambit=self.backend.shards[0].executor.engine)
        return QueryEngine(ambit=self.backend.executor.engine)

    def _executors(self) -> List[Any]:
        if self.tier == "cluster":
            return [shard.executor for shard in self.backend.shards]
        if self.tier == "service":
            return [self.backend.executor]
        return []

    # -- Session-window accounting -------------------------------------
    #
    # Both window ends belong to the session: makespan runs from the
    # construction-time clock to the last own completion (falling back to
    # the live clock while futures are still queued), and busy time /
    # batch counts are attributed through the batches that actually
    # served this session's requests (shared batches split by
    # serial-latency share) — so a shared backend's other traffic never
    # leaks into the time-based fields.

    @staticmethod
    def _all_terminal(records: Sequence[Any]) -> bool:
        return all((not r.admitted) or r.completed for r in records)

    def _window_makespan(self, records: Sequence[Any]) -> float:
        completed = [r for r in records if r.completed]
        if records and self._all_terminal(records):
            return max((r.finish_ns - self._clock0 for r in completed), default=0.0)
        # Mid-stream: cover the in-flight lane horizon, not just the
        # dispatch clock — a pipelined backend's clock lags completions.
        return getattr(self.backend, "completion_ns", self.backend.clock_ns) - self._clock0

    def _window_busy(self, records: Sequence[Any]) -> float:
        completed = [r for r in records if r.completed]
        if self.tier == "host":
            return sum(r.metrics.latency_ns for r in completed)
        return self._apportioned_busy(self.backend, completed)

    def _window_batches(self, records: Sequence[Any]) -> int:
        completed = [r for r in records if r.completed]
        if self.tier == "host":
            return len(completed)
        return len(self._own_batches(self.backend, completed))

    @staticmethod
    def _own_batches(frontend: Any, completed: Sequence[Any]) -> List[int]:
        """Indices of the frontend batches that served ``completed``."""
        return sorted(
            {r.batch_index for r in completed if 0 <= r.batch_index < len(frontend.batches)}
        )

    @staticmethod
    def _apportioned_busy(frontend: Any, completed: Sequence[Any]) -> float:
        """Executor busy time attributed to ``completed``'s batches.

        A batch that also served another session's requests is split by
        serial-latency share, so concurrently interleaved sessions over
        one backend sum to the backend's actual busy time instead of each
        counting the shared batch in full.  Each batch contributes its
        overlap-aware device-busy time (:attr:`BatchMetrics.busy_ns`):
        under lane pipelining that is the busy-union the batch *added*,
        so completion time a batch spent overlapped with its predecessor
        on other banks is never double-counted; for a batch-synchronous
        backend it is exactly the batch makespan, the single-session
        legacy accounting.
        """
        own_serial: Dict[int, float] = {}
        for record in completed:
            if 0 <= record.batch_index < len(frontend.batches):
                own_serial[record.batch_index] = (
                    own_serial.get(record.batch_index, 0.0) + record.metrics.latency_ns
                )
        busy = 0.0
        for index, serial in own_serial.items():
            batch = frontend.batches[index].metrics
            if batch.serial_latency_ns > 0:
                busy += batch.busy_ns * min(1.0, serial / batch.serial_latency_ns)
        return busy

    def _shard_window(self, label: str, shard, own_parts, shard_id: int) -> QueueMetrics:
        """One shard's queueing summary over this session's own parts."""
        # Shards joined elastically after the session opened have no
        # recorded origin; their window starts at the session's own.
        clock0 = (
            self._shard_clock0[shard_id]
            if shard_id < len(self._shard_clock0)
            else self._clock0
        )
        completed = [p for p in own_parts if p.completed]
        if own_parts and self._all_terminal(own_parts):
            makespan = max((p.finish_ns - clock0 for p in completed), default=0.0)
        elif own_parts:
            makespan = shard.completion_ns - clock0
        else:
            makespan = 0.0
        return summarize_queue_records(
            label,
            own_parts,
            makespan_ns=makespan,
            busy_ns=self._apportioned_busy(shard, completed),
            batches=len(self._own_batches(shard, completed)),
        )

    def _submit_spec(self, spec, kind, priority, deadline_ns, at_ns) -> Future:
        return self._submit(spec, spec.to_request(), kind, priority, deadline_ns, at_ns)

    def _submit(self, spec, request, kind, priority, deadline_ns, at_ns) -> Future:
        arrival = self.backend.clock_ns if at_ns is None else float(at_ns)
        # Serve whatever the policy closes before this arrival, so
        # admission sees the live queue — identical to the frontends'
        # own run() loops.
        self.backend.advance_to(arrival)
        record = self.backend.offer(
            request, priority=priority, deadline_ns=deadline_ns, arrival_ns=arrival
        )
        if self.obs.enabled:
            trace = getattr(record, "trace", None)
            if trace is not None:
                trace.set(submitted=kind, session=self.name)
        future = Future(self, spec, request, record, kind)
        self.futures.append(future)
        return future

    def _details_for(self, record) -> ResponseDetails:
        if self.tier == "cluster":
            return ClusterDetails(
                shard_ids=tuple(record.shard_ids),
                fanout=len(record.shard_ids),
                host_merge_ns=getattr(record, "host_merge_ns", 0.0),
                cache_hits=getattr(record, "cache_hits", 0),
                cache_misses=getattr(record, "cache_misses", 0),
                cache_invalidations=getattr(record, "cache_invalidations", 0),
                failovers=getattr(record, "failovers", 0),
            )
        if self.tier == "host":
            return HostDetails()
        return ServiceDetails(
            batch_index=record.batch_index,
            modeled_ns=record.modeled_ns,
            modeled_banks=tuple(record.modeled_banks),
            cache_hits=getattr(record, "cache_hits", 0),
            cache_misses=getattr(record, "cache_misses", 0),
            cache_invalidations=getattr(record, "cache_invalidations", 0),
        )

    def _build_response(self, future: Future) -> Response:
        record = future.record
        if self.tier == "cluster" and math.isnan(record.finish_ns):
            self.backend.gather()
        scan = record.metrics
        value = record.value
        matching: Optional[int] = None
        epilogue_ns = 0.0
        epilogue_j = 0.0
        num_rows = future.spec.num_rows if future.spec is not None else None
        if num_rows is not None and value is not None:
            matching = BitmapIndex.count(value, num_rows)
            epilogue = self._coster.epilogue_cost(num_rows, matching)
            epilogue_ns = epilogue.latency_ns
            epilogue_j = epilogue.energy_j
        return Response(
            kind=future.kind,
            status="completed",
            value=value,
            matching_rows=matching,
            latency_ns=scan.latency_ns + epilogue_ns,
            energy_j=scan.energy_j + epilogue_j,
            breakdown={"scan_ns": scan.latency_ns, "epilogue_ns": epilogue_ns},
            arrival_ns=record.arrival_ns,
            start_ns=record.start_ns,
            finish_ns=record.finish_ns,
            wait_ns=record.wait_ns,
            sojourn_ns=record.sojourn_ns,
            deadline_missed=record.deadline_missed,
            details=self._details_for(record),
            trace=getattr(record, "trace", None),
        )
