"""DRAM command vocabulary, including the PIM command extensions.

Conventional commands (ACT, PRE, RD, WR, REF) are what a standard memory
controller issues.  The PIM extensions are the two command sequences the
paper's "minimally changing memory chips" approach relies on:

* ``AAP`` — ACTIVATE source row, immediately ACTIVATE destination row,
  PRECHARGE.  This copies a row through the sense amplifiers and is the
  building block of RowClone-FPM and of every Ambit operation.
* ``TRA`` — triple-row activation: simultaneously activate three rows of a
  designated subarray region so charge sharing computes the bitwise
  majority, which yields AND/OR depending on the third row's initial value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class CommandKind(enum.Enum):
    """All command types the model's memory controller can issue."""

    ACTIVATE = "ACT"
    PRECHARGE = "PRE"
    READ = "RD"
    WRITE = "WR"
    REFRESH = "REF"
    AAP = "AAP"
    TRA = "TRA"

    @property
    def is_pim(self) -> bool:
        """True for the PIM command extensions (AAP / TRA)."""
        return self in (CommandKind.AAP, CommandKind.TRA)


@dataclass(frozen=True)
class Command:
    """One command addressed to a specific bank.

    Attributes:
        kind: Which command this is.
        channel: Channel index.
        rank: Rank index within the channel.
        bank: Bank index within the rank.
        row: Row address (for ACT/AAP/TRA: the primary/source row).
        column: Column address in 64 B granularity (for RD/WR).
        aux_row: Secondary row (AAP destination, or TRA's second row).
        aux_row2: Tertiary row (TRA's third row).
    """

    kind: CommandKind
    channel: int = 0
    rank: int = 0
    bank: int = 0
    row: Optional[int] = None
    column: Optional[int] = None
    aux_row: Optional[int] = None
    aux_row2: Optional[int] = None

    def __post_init__(self) -> None:
        needs_row = (
            CommandKind.ACTIVATE,
            CommandKind.AAP,
            CommandKind.TRA,
        )
        if self.kind in needs_row and self.row is None:
            raise ValueError(f"{self.kind.value} requires a row address")
        if self.kind in (CommandKind.READ, CommandKind.WRITE) and self.column is None:
            raise ValueError(f"{self.kind.value} requires a column address")
        if self.kind is CommandKind.AAP and self.aux_row is None:
            raise ValueError("AAP requires a destination row (aux_row)")
        if self.kind is CommandKind.TRA and (self.aux_row is None or self.aux_row2 is None):
            raise ValueError("TRA requires three row addresses")

    def describe(self) -> str:
        """Short human-readable form, e.g. ``AAP ch0/ra0/ba3 r12->r840``."""
        location = f"ch{self.channel}/ra{self.rank}/ba{self.bank}"
        if self.kind is CommandKind.AAP:
            return f"AAP {location} r{self.row}->r{self.aux_row}"
        if self.kind is CommandKind.TRA:
            return f"TRA {location} r{self.row},r{self.aux_row},r{self.aux_row2}"
        if self.kind in (CommandKind.READ, CommandKind.WRITE):
            return f"{self.kind.value} {location} r{self.row} c{self.column}"
        if self.kind is CommandKind.ACTIVATE:
            return f"ACT {location} r{self.row}"
        return f"{self.kind.value} {location}"
