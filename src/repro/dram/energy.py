"""IDD-based DRAM energy model.

The model follows the standard Micron power-calculation methodology: each
command class (activate/precharge pair, read burst, write burst, refresh)
has an energy derived from the device's IDD currents and supply voltage,
and moving bits over the channel adds I/O and termination energy per bit.

Two derived quantities matter for the reproduction:

* ``energy_per_byte_channel_j`` — the processor-centric cost of moving a
  byte from a DRAM row to the CPU (activation amortized over the row, read
  burst, I/O, plus the on-chip interconnect cost accounted by the host
  model), and
* ``aap_energy_j`` — the cost of one in-DRAM AAP primitive, which touches
  an entire row without moving anything over the channel.

The 35x energy claim for Ambit (and RowClone's energy win) falls out of the
ratio between these two.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnergyBreakdown:
    """Accumulator for energy spent in different parts of the memory system.

    All values are in joules.
    """

    activation_j: float = 0.0
    read_j: float = 0.0
    write_j: float = 0.0
    io_j: float = 0.0
    refresh_j: float = 0.0
    background_j: float = 0.0

    @property
    def total_j(self) -> float:
        """Total energy across all components."""
        return (
            self.activation_j
            + self.read_j
            + self.write_j
            + self.io_j
            + self.refresh_j
            + self.background_j
        )

    def add(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        """Return a new breakdown that is the element-wise sum of two."""
        return EnergyBreakdown(
            activation_j=self.activation_j + other.activation_j,
            read_j=self.read_j + other.read_j,
            write_j=self.write_j + other.write_j,
            io_j=self.io_j + other.io_j,
            refresh_j=self.refresh_j + other.refresh_j,
            background_j=self.background_j + other.background_j,
        )

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a new breakdown with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            activation_j=self.activation_j * factor,
            read_j=self.read_j * factor,
            write_j=self.write_j * factor,
            io_j=self.io_j * factor,
            refresh_j=self.refresh_j * factor,
            background_j=self.background_j * factor,
        )


@dataclass(frozen=True)
class DramEnergyParameters:
    """Current/voltage parameters of one DRAM device plus derived energies.

    Current values follow typical DDR3-1600 datasheet figures (per device;
    a x8 device, eight devices per rank).  The derived per-command energies
    are rank-level (i.e. already multiplied by the devices per rank).

    Attributes:
        name: Label of the device/speed bin the parameters describe.
        vdd: Supply voltage (V).
        idd0_ma: Activate-precharge current (one bank cycling), mA/device.
        idd2n_ma: Precharge standby current, mA/device.
        idd3n_ma: Active standby current, mA/device.
        idd4r_ma: Burst read current, mA/device.
        idd4w_ma: Burst write current, mA/device.
        idd5_ma: Refresh burst current, mA/device.
        devices_per_rank: DRAM chips ganged to form a 64-bit rank.
        io_pj_per_bit: Off-chip I/O + termination energy per transferred bit.
        t_rc_ns: Row cycle time used to convert IDD0 into an ACT/PRE energy.
        t_burst_ns: Burst duration used to convert IDD4R/W into burst energy.
        row_size_bytes: Row size used to amortize activation over bytes.
    """

    name: str = "DDR3-1600-x8"
    vdd: float = 1.5
    idd0_ma: float = 55.0
    idd2n_ma: float = 32.0
    idd3n_ma: float = 38.0
    idd4r_ma: float = 157.0
    idd4w_ma: float = 128.0
    idd5_ma: float = 235.0
    devices_per_rank: int = 8
    io_pj_per_bit: float = 4.5
    t_rc_ns: float = 48.75
    t_burst_ns: float = 5.0
    row_size_bytes: int = 8192

    # ------------------------------------------------------------------
    # Per-command energies (rank level)
    # ------------------------------------------------------------------
    @property
    def activation_energy_j(self) -> float:
        """Energy of one ACTIVATE + PRECHARGE pair for the whole rank.

        Uses the standard (IDD0 - IDD3N) * tRC formulation so that standby
        power is not double counted, then adds the array restore charge
        implicitly captured by IDD0.
        """
        delta_ma = max(self.idd0_ma - self.idd3n_ma, 0.0)
        per_device_j = delta_ma * 1e-3 * self.vdd * self.t_rc_ns * 1e-9
        return per_device_j * self.devices_per_rank

    @property
    def read_burst_energy_j(self) -> float:
        """Array + peripheral energy of one BL8 read burst (64 B), rank level."""
        delta_ma = max(self.idd4r_ma - self.idd3n_ma, 0.0)
        per_device_j = delta_ma * 1e-3 * self.vdd * self.t_burst_ns * 1e-9
        return per_device_j * self.devices_per_rank

    @property
    def write_burst_energy_j(self) -> float:
        """Array + peripheral energy of one BL8 write burst (64 B), rank level."""
        delta_ma = max(self.idd4w_ma - self.idd3n_ma, 0.0)
        per_device_j = delta_ma * 1e-3 * self.vdd * self.t_burst_ns * 1e-9
        return per_device_j * self.devices_per_rank

    @property
    def io_energy_per_byte_j(self) -> float:
        """Off-chip I/O and termination energy for one byte on the channel."""
        return self.io_pj_per_bit * 8 * 1e-12

    @property
    def refresh_energy_j(self) -> float:
        """Energy of one refresh command (all banks), rank level."""
        delta_ma = max(self.idd5_ma - self.idd3n_ma, 0.0)
        # Refresh occupies roughly tRFC; use 260 ns as the DDR3 4 Gb figure.
        per_device_j = delta_ma * 1e-3 * self.vdd * 260e-9
        return per_device_j * self.devices_per_rank

    # ------------------------------------------------------------------
    # Derived per-byte costs
    # ------------------------------------------------------------------
    @property
    def activation_energy_per_byte_j(self) -> float:
        """Activation energy amortized over every byte of the open row."""
        return self.activation_energy_j / self.row_size_bytes

    def channel_transfer_energy_j(self, num_bytes: int, *, is_write: bool = False) -> float:
        """Energy to move ``num_bytes`` over the channel in 64 B bursts.

        Includes the read or write burst energy plus I/O energy, but not the
        activation (callers add activations according to their row-locality
        assumptions).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        bursts = (num_bytes + 63) // 64
        burst_energy = self.write_burst_energy_j if is_write else self.read_burst_energy_j
        return bursts * burst_energy + num_bytes * self.io_energy_per_byte_j

    @property
    def aap_energy_j(self) -> float:
        """Energy of one AAP (activate-activate-precharge) primitive.

        Two activations and a precharge; nothing crosses the channel, so
        there is no I/O or burst component.  RowClone and Ambit pay this for
        an entire row (``row_size_bytes`` of data) at a time.
        """
        return 2.0 * self.activation_energy_j

    @property
    def tra_energy_j(self) -> float:
        """Energy of one triple-row-activation AAP used by Ambit.

        The simultaneous activation of three rows raises the charge
        restored per activation; we model that as a 1.5x factor on the
        first activation, matching the Ambit paper's observation that TRA
        energy is modestly higher than a regular activation.
        """
        return 1.5 * self.activation_energy_j + self.activation_energy_j

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def ddr3_1600(cls) -> "DramEnergyParameters":
        """Typical DDR3-1600 x8 datasheet values (the Ambit/RowClone config)."""
        return cls()

    @classmethod
    def ddr4_2400(cls) -> "DramEnergyParameters":
        """Typical DDR4-2400 x8 values (lower voltage, similar currents)."""
        return cls(
            name="DDR4-2400-x8",
            vdd=1.2,
            idd0_ma=58.0,
            idd2n_ma=34.0,
            idd3n_ma=44.0,
            idd4r_ma=150.0,
            idd4w_ma=130.0,
            idd5_ma=190.0,
            devices_per_rank=8,
            io_pj_per_bit=7.0,
            t_rc_ns=46.16,
            t_burst_ns=3.33,
            row_size_bytes=8192,
        )

    @classmethod
    def hmc_internal(cls) -> "DramEnergyParameters":
        """Energy parameters for the DRAM layers of an HMC-like stack.

        TSV I/O is roughly an order of magnitude cheaper per bit than
        off-chip DDR I/O; rows are much smaller.
        """
        return cls(
            name="HMC-internal",
            vdd=1.2,
            idd0_ma=45.0,
            idd2n_ma=30.0,
            idd3n_ma=36.0,
            idd4r_ma=120.0,
            idd4w_ma=110.0,
            idd5_ma=180.0,
            devices_per_rank=1,
            io_pj_per_bit=1.0,
            t_rc_ns=46.75,
            t_burst_ns=1.6,
            row_size_bytes=1024,
        )
