"""DRAM refresh overhead model.

Refresh matters to the paper's story in two ways: it is part of the
background cost every DRAM-based design pays (so the analytical bandwidth
efficiencies used elsewhere already discount it), and in-DRAM computing
mechanisms must interleave with it — an AAP-heavy bulk operation cannot
postpone refresh indefinitely.  The model below quantifies the fraction of
time and bandwidth a device spends refreshing and the energy that costs, so
benches and users can check that the efficiency factors used by the
controller's streaming model are consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dram.energy import DramEnergyParameters
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters


@dataclass(frozen=True)
class RefreshOverhead:
    """Summary of the refresh burden on one rank.

    Attributes:
        time_fraction: Fraction of wall-clock time the rank is unavailable
            because a refresh command is in flight.
        commands_per_second: REF commands issued per second.
        power_w: Average power drawn by refresh activity.
        bandwidth_loss_bytes_per_s: Peak bandwidth lost to refresh.
    """

    time_fraction: float
    commands_per_second: float
    power_w: float
    bandwidth_loss_bytes_per_s: float


class RefreshScheduler:
    """Computes steady-state refresh overheads for a DRAM configuration.

    Args:
        geometry: Device organization (per-rank overheads are reported).
        timing: Timing parameters providing ``tREFI`` and ``tRFC``.
        energy: Energy parameters providing the per-REF energy.
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[DramTimingParameters] = None,
        energy: Optional[DramEnergyParameters] = None,
    ) -> None:
        self.geometry = geometry or DramGeometry.ddr3_dimm()
        self.timing = timing or DramTimingParameters.ddr3_1600()
        self.energy = energy or DramEnergyParameters.ddr3_1600()

    def overhead(self) -> RefreshOverhead:
        """Steady-state refresh overhead of one rank."""
        timing = self.timing
        commands_per_second = 1e9 / timing.t_refi_ns
        time_fraction = timing.t_rfc_ns / timing.t_refi_ns
        power_w = commands_per_second * self.energy.refresh_energy_j
        per_channel_bw = timing.channel_bandwidth_bytes_per_s(
            self.geometry.channel_width_bits
        )
        return RefreshOverhead(
            time_fraction=time_fraction,
            commands_per_second=commands_per_second,
            power_w=power_w,
            bandwidth_loss_bytes_per_s=per_channel_bw * time_fraction,
        )

    def refresh_energy_per_second_j(self) -> float:
        """Energy spent refreshing one rank for one second."""
        return self.overhead().power_w

    def available_time_fraction(self) -> float:
        """Fraction of time the rank can serve requests or PIM operations."""
        return 1.0 - self.overhead().time_fraction

    def max_postponed_operations(self, operation_ns: float, max_postponed_refreshes: int = 8) -> int:
        """How many back-to-back in-DRAM operations fit before refresh must run.

        JEDEC allows postponing up to eight REF commands; a PIM-aware
        controller can therefore run a burst of AAP/TRA operations of up to
        ``8 * tREFI`` before it must yield the bank for refresh.

        Args:
            operation_ns: Duration of one in-DRAM operation (e.g. one AAP).
            max_postponed_refreshes: REF commands that may be deferred.
        """
        if operation_ns <= 0:
            raise ValueError("operation_ns must be positive")
        if max_postponed_refreshes < 0:
            raise ValueError("max_postponed_refreshes must be non-negative")
        window_ns = self.timing.t_refi_ns * max_postponed_refreshes
        return int(window_ns // operation_ns)
