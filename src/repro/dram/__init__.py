"""DRAM substrate: geometry, timing, energy, and a functional device model.

This subpackage models a conventional DDRx main-memory system at the level
of detail the paper's arguments rely on:

* :mod:`repro.dram.geometry` — physical organization (channels, ranks,
  banks, subarrays, rows, columns),
* :mod:`repro.dram.timing` — DDR timing parameters and derived latencies,
* :mod:`repro.dram.energy` — IDD-based current/energy model with per-command
  and per-bit energies,
* :mod:`repro.dram.commands` — the DRAM command vocabulary, including the
  PIM extensions used by RowClone and Ambit (``AAP`` and ``TRA``),
* :mod:`repro.dram.bank` / :mod:`repro.dram.subarray` — functional row
  storage plus per-bank state machines,
* :mod:`repro.dram.address` — address mapping between linear physical
  addresses and (channel, rank, bank, row, column) coordinates,
* :mod:`repro.dram.controller` — a memory controller with an FR-FCFS
  scheduler and latency/energy accounting,
* :mod:`repro.dram.device` — the composed :class:`DramDevice`.
"""

from repro.dram.address import AddressMapper, DramCoordinate
from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandKind
from repro.dram.controller import MemoryController, Request, RequestKind
from repro.dram.device import DramDevice
from repro.dram.energy import DramEnergyParameters, EnergyBreakdown
from repro.dram.geometry import DramGeometry
from repro.dram.refresh import RefreshOverhead, RefreshScheduler
from repro.dram.subarray import Subarray
from repro.dram.timing import DramTimingParameters

__all__ = [
    "AddressMapper",
    "Bank",
    "BankState",
    "Command",
    "CommandKind",
    "DramCoordinate",
    "DramDevice",
    "DramEnergyParameters",
    "DramGeometry",
    "DramTimingParameters",
    "EnergyBreakdown",
    "MemoryController",
    "RefreshOverhead",
    "RefreshScheduler",
    "Request",
    "RequestKind",
    "Subarray",
]
