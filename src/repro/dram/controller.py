"""Memory controller with request scheduling and latency/energy accounting.

The controller is deliberately first-order: it tracks per-bank open rows,
per-channel bus occupancy, and classifies each access as a row hit, row
miss, or closed-bank access.  That is the level of detail the paper's
processor-centric baseline costs depend on (streaming traffic is dominated
by bus occupancy; random traffic by row misses).

Two usage modes are supported:

* *Functional requests* — :meth:`MemoryController.submit` /
  :meth:`MemoryController.drain` move real bytes through the banks and
  return per-request latencies (used by tests and small examples).
* *Analytical accounting* — :meth:`MemoryController.stream_time_ns` and
  :meth:`MemoryController.random_access_time_ns` estimate the time and
  energy of bulk access patterns without materializing every request (used
  by the benchmark harnesses where vectors are tens of MiB).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.dram.address import CACHE_LINE_BYTES, AddressMapper, DramCoordinate
from repro.dram.bank import Bank
from repro.dram.energy import DramEnergyParameters, EnergyBreakdown
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters


class RequestKind(enum.Enum):
    """Memory request types accepted by the controller."""

    READ = "read"
    WRITE = "write"


@dataclass
class Request:
    """One cache-line-granularity memory request.

    Attributes:
        kind: READ or WRITE.
        address: Byte address (aligned down to a cache line internally).
        data: For writes, exactly 64 bytes of payload.
        issue_time_ns: Time the request entered the controller queue.
        completion_time_ns: Filled in when the request is serviced.
        result: For reads, the 64 bytes returned.
        row_hit: Whether the access hit an already-open row.
    """

    kind: RequestKind
    address: int
    data: Optional[np.ndarray] = None
    issue_time_ns: float = 0.0
    completion_time_ns: Optional[float] = None
    result: Optional[np.ndarray] = None
    row_hit: Optional[bool] = None

    @property
    def latency_ns(self) -> Optional[float]:
        """Queue-to-completion latency, available after servicing."""
        if self.completion_time_ns is None:
            return None
        return self.completion_time_ns - self.issue_time_ns


@dataclass
class ControllerStats:
    """Aggregate statistics for one controller instance."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_closed: int = 0
    activations: int = 0
    precharges: int = 0
    busy_time_ns: float = 0.0
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        total = self.row_hits + self.row_misses + self.row_closed
        return self.row_hits / total if total else 0.0


class MemoryController:
    """Controller for one DRAM system (all channels).

    Args:
        geometry: Physical organization.
        timing: Speed-bin timing parameters.
        energy: Current/energy parameters.
        mapping_policy: Address-mapping policy name (see
            :class:`repro.dram.address.AddressMapper`).
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[DramTimingParameters] = None,
        energy: Optional[DramEnergyParameters] = None,
        mapping_policy: str = "row_interleaved",
    ) -> None:
        self.geometry = geometry or DramGeometry.ddr3_dimm()
        self.timing = timing or DramTimingParameters.ddr3_1600()
        self.energy_params = energy or DramEnergyParameters.ddr3_1600()
        self.mapper = AddressMapper(self.geometry, mapping_policy)
        self.banks: Dict[Tuple[int, int, int], Bank] = {}
        g = self.geometry
        for channel in range(g.channels):
            for rank in range(g.ranks_per_channel):
                for bank in range(g.banks_per_rank):
                    self.banks[(channel, rank, bank)] = Bank(
                        subarrays=g.subarrays_per_bank,
                        rows_per_subarray=g.rows_per_subarray,
                        row_size_bytes=g.row_size_bytes,
                        index=bank,
                    )
        self._queue: Deque[Request] = deque()
        self._now_ns: float = 0.0
        self._channel_free_ns: List[float] = [0.0] * g.channels
        self._bank_free_ns: Dict[Tuple[int, int, int], float] = {
            key: 0.0 for key in self.banks
        }
        self.stats = ControllerStats()

    # ------------------------------------------------------------------
    # Functional request path
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """Current simulated time (advances as requests drain)."""
        return self._now_ns

    def bank_for(self, coordinate: DramCoordinate) -> Bank:
        """Return the bank object a coordinate refers to."""
        return self.banks[(coordinate.channel, coordinate.rank, coordinate.bank)]

    def submit(self, request: Request) -> None:
        """Enqueue a request at the current simulated time."""
        if request.kind is RequestKind.WRITE:
            if request.data is None or len(request.data) != CACHE_LINE_BYTES:
                raise ValueError("WRITE requests need exactly 64 bytes of data")
        request.issue_time_ns = self._now_ns
        self._queue.append(request)

    def drain(self) -> List[Request]:
        """Service every queued request in FR-FCFS order and return them.

        FR-FCFS is approximated per drain batch: among queued requests, ones
        that hit the currently open row of their bank are serviced before
        older requests that would require a row miss.
        """
        serviced: List[Request] = []
        while self._queue:
            request = self._pick_next()
            self._service(request)
            serviced.append(request)
        return serviced

    def _pick_next(self) -> Request:
        """Pick the next request: oldest row-hit first, else oldest overall."""
        for i, request in enumerate(self._queue):
            coordinate = self.mapper.decode(request.address)
            bank = self.bank_for(coordinate)
            if bank.open_row == coordinate.row:
                del self._queue[i]
                return request
        return self._queue.popleft()

    def _service(self, request: Request) -> None:
        coordinate = self.mapper.decode(request.address)
        bank = self.bank_for(coordinate)
        key = (coordinate.channel, coordinate.rank, coordinate.bank)
        timing = self.timing
        energy = self.energy_params

        start = max(self._now_ns, self._bank_free_ns[key], request.issue_time_ns)
        access_energy = EnergyBreakdown()

        if bank.open_row == coordinate.row:
            latency = timing.row_hit_read_latency_ns
            request.row_hit = True
            self.stats.row_hits += 1
        elif bank.open_row is None:
            bank.activate(coordinate.row)
            latency = timing.row_empty_read_latency_ns
            request.row_hit = False
            self.stats.row_closed += 1
            self.stats.activations += 1
            access_energy.activation_j += energy.activation_energy_j
        else:
            bank.precharge()
            bank.activate(coordinate.row)
            latency = timing.row_miss_read_latency_ns
            request.row_hit = False
            self.stats.row_misses += 1
            self.stats.activations += 1
            self.stats.precharges += 1
            access_energy.activation_j += energy.activation_energy_j

        column_bytes = coordinate.column * CACHE_LINE_BYTES
        if request.kind is RequestKind.READ:
            request.result = bank.read(coordinate.row, column_bytes, CACHE_LINE_BYTES)
            access_energy.read_j += energy.read_burst_energy_j
            self.stats.reads += 1
        else:
            bank.write(coordinate.row, column_bytes, request.data)
            access_energy.write_j += energy.write_burst_energy_j
            latency = latency - timing.t_cas_ns + timing.t_wr_ns
            self.stats.writes += 1
        access_energy.io_j += CACHE_LINE_BYTES * energy.io_energy_per_byte_j

        # Channel occupancy: the data burst must serialize on the channel.
        channel_ready = self._channel_free_ns[coordinate.channel]
        burst_start = max(start + latency - timing.burst_time_ns, channel_ready)
        completion = burst_start + timing.burst_time_ns

        self._channel_free_ns[coordinate.channel] = completion
        self._bank_free_ns[key] = start + timing.t_rc_ns
        self._now_ns = max(self._now_ns, completion)
        request.completion_time_ns = completion

        self.stats.busy_time_ns = self._now_ns
        self.stats.energy = self.stats.energy.add(access_energy)

    # ------------------------------------------------------------------
    # Analytical accounting for bulk access patterns
    # ------------------------------------------------------------------
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak channel bandwidth of the system."""
        per_channel = self.timing.channel_bandwidth_bytes_per_s(
            self.geometry.channel_width_bits
        )
        return per_channel * self.geometry.channels

    def stream_time_ns(self, num_bytes: int, efficiency: float = 0.85) -> float:
        """Time to stream ``num_bytes`` over the channels at ``efficiency``.

        ``efficiency`` captures the fraction of peak bandwidth that a real
        streaming access achieves after refresh, bus turnarounds, and
        row-miss gaps (0.7–0.9 is typical for well-mapped streams).
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        if not 0 < efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        bandwidth = self.peak_bandwidth_bytes_per_s() * efficiency
        return num_bytes / bandwidth * 1e9

    def stream_energy(self, num_bytes: int, *, is_write: bool = False) -> EnergyBreakdown:
        """Energy of streaming ``num_bytes`` (row activations amortized)."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        energy = self.energy_params
        rows = max(1, (num_bytes + self.geometry.row_size_bytes - 1) // self.geometry.row_size_bytes)
        bursts = (num_bytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
        breakdown = EnergyBreakdown()
        breakdown.activation_j = rows * energy.activation_energy_j
        if is_write:
            breakdown.write_j = bursts * energy.write_burst_energy_j
        else:
            breakdown.read_j = bursts * energy.read_burst_energy_j
        breakdown.io_j = num_bytes * energy.io_energy_per_byte_j
        return breakdown

    def random_access_time_ns(self, num_accesses: int, bytes_per_access: int = 64) -> float:
        """Time for ``num_accesses`` independent random accesses.

        Random accesses are row misses with probability close to one; the
        system overlaps them across banks, so throughput is limited by the
        per-bank row-cycle time multiplied across all banks (or by channel
        bandwidth, whichever binds first).
        """
        if num_accesses < 0:
            raise ValueError("num_accesses must be non-negative")
        t_rc_s = self.timing.t_rc_ns * 1e-9
        bank_limited_rate = self.geometry.banks_total / t_rc_s
        channel_limited_rate = self.peak_bandwidth_bytes_per_s() / bytes_per_access
        rate = min(bank_limited_rate, channel_limited_rate)
        return num_accesses / rate * 1e9

    def random_access_energy(self, num_accesses: int, bytes_per_access: int = 64) -> EnergyBreakdown:
        """Energy for ``num_accesses`` random accesses (one activation each)."""
        energy = self.energy_params
        breakdown = EnergyBreakdown()
        breakdown.activation_j = num_accesses * energy.activation_energy_j
        bursts_per_access = (bytes_per_access + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES
        breakdown.read_j = num_accesses * bursts_per_access * energy.read_burst_energy_j
        breakdown.io_j = num_accesses * bytes_per_access * energy.io_energy_per_byte_j
        return breakdown
