"""Per-bank state machine and functional storage.

A bank groups multiple subarrays, has a single global row decoder and a
global sense-amplifier interface to the chip's I/O, and can have at most one
row open at a time.  The bank tracks which row is open so the controller's
latency accounting distinguishes row hits, row misses, and closed-bank
accesses — the distinction the paper's data-movement-cost arguments (random
vs. streaming access) build on.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple

import numpy as np

from repro.dram.subarray import Subarray


class BankState(enum.Enum):
    """Bank-level state: either all rows closed or exactly one row open."""

    PRECHARGED = "precharged"
    ACTIVE = "active"


class Bank:
    """One DRAM bank: several subarrays plus bank-level open-row state.

    Args:
        subarrays: Number of subarrays in the bank.
        rows_per_subarray: Rows per subarray.
        row_size_bytes: Bytes per row.
        index: Bank index within its rank (for diagnostics).
    """

    def __init__(
        self,
        subarrays: int,
        rows_per_subarray: int,
        row_size_bytes: int,
        index: int = 0,
    ) -> None:
        if subarrays <= 0:
            raise ValueError("subarrays must be positive")
        self.index = index
        self.rows_per_subarray = rows_per_subarray
        self.row_size_bytes = row_size_bytes
        self.subarrays: List[Subarray] = [
            Subarray(rows_per_subarray, row_size_bytes, index=i) for i in range(subarrays)
        ]
        self.state = BankState.PRECHARGED
        self._open_row: Optional[int] = None
        # Counters used by the controller's statistics.
        self.activations = 0
        self.precharges = 0
        self.row_hits = 0
        self.row_misses = 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Total rows in the bank."""
        return len(self.subarrays) * self.rows_per_subarray

    def locate(self, row: int) -> Tuple[Subarray, int]:
        """Map a bank-level row index to (subarray, local row index)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")
        subarray_index, local_row = divmod(row, self.rows_per_subarray)
        return self.subarrays[subarray_index], local_row

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """True when the two bank-level rows live in the same subarray."""
        return row_a // self.rows_per_subarray == row_b // self.rows_per_subarray

    @property
    def open_row(self) -> Optional[int]:
        """Bank-level index of the open row, or None when precharged."""
        return self._open_row

    # ------------------------------------------------------------------
    # Conventional commands
    # ------------------------------------------------------------------
    def activate(self, row: int) -> None:
        """Open ``row`` (the bank must be precharged)."""
        if self.state is BankState.ACTIVE:
            raise RuntimeError(
                f"bank {self.index}: ACT issued while row {self._open_row} is open"
            )
        subarray, local_row = self.locate(row)
        subarray.activate(local_row)
        self._open_row = row
        self.state = BankState.ACTIVE
        self.activations += 1

    def precharge(self) -> None:
        """Close the open row (no-op if already precharged)."""
        if self.state is BankState.ACTIVE:
            subarray, _ = self.locate(self._open_row)  # type: ignore[arg-type]
            subarray.precharge()
            self.precharges += 1
        self._open_row = None
        self.state = BankState.PRECHARGED

    def read(self, row: int, column: int, length: int = 64) -> np.ndarray:
        """Read ``length`` bytes at ``column`` (byte offset) from ``row``.

        The row must already be open; the controller is responsible for
        issuing the activation.
        """
        self._require_open(row)
        subarray, local_row = self.locate(row)
        return subarray.read_row_slice(local_row, column, length)

    def write(self, row: int, column: int, data: np.ndarray) -> None:
        """Write ``data`` at byte offset ``column`` into the open ``row``."""
        self._require_open(row)
        subarray, local_row = self.locate(row)
        subarray.write_row_slice(local_row, column, data)

    def _require_open(self, row: int) -> None:
        if self.state is not BankState.ACTIVE or self._open_row != row:
            raise RuntimeError(
                f"bank {self.index}: access to row {row} but open row is {self._open_row}"
            )

    # ------------------------------------------------------------------
    # Whole-row access (used by the PIM engines and tests)
    # ------------------------------------------------------------------
    def read_row(self, row: int) -> np.ndarray:
        """Return a copy of the full contents of ``row`` (no state change)."""
        subarray, local_row = self.locate(row)
        return subarray.read_row(local_row)

    def write_row(self, row: int, data: np.ndarray) -> None:
        """Directly overwrite the full contents of ``row`` (no state change)."""
        subarray, local_row = self.locate(row)
        subarray.write_row(local_row, data)

    # ------------------------------------------------------------------
    # PIM primitives
    # ------------------------------------------------------------------
    def aap(self, source_row: int, dest_row: int) -> None:
        """ACTIVATE ``source_row``, ACTIVATE ``dest_row``, PRECHARGE.

        Both rows must be in the same subarray (the sense amplifiers are
        local); the destination ends up with the source's contents.
        """
        if not self.same_subarray(source_row, dest_row):
            raise ValueError(
                "AAP requires source and destination rows in the same subarray"
            )
        if self.state is BankState.ACTIVE:
            raise RuntimeError("AAP issued while a row is open; precharge first")
        subarray, local_source = self.locate(source_row)
        _, local_dest = self.locate(dest_row)
        subarray.activate(local_source)
        subarray.activate_onto_open_buffer(local_dest)
        subarray.precharge()
        self.activations += 2
        self.precharges += 1

    def triple_row_activate(self, row_a: int, row_b: int, row_c: int) -> np.ndarray:
        """Simultaneously activate three same-subarray rows (Ambit TRA).

        Returns the bitwise majority that the charge sharing produces; all
        three rows are overwritten with it.
        """
        if not (self.same_subarray(row_a, row_b) and self.same_subarray(row_a, row_c)):
            raise ValueError("TRA requires all three rows in the same subarray")
        if self.state is BankState.ACTIVE:
            raise RuntimeError("TRA issued while a row is open; precharge first")
        subarray, local_a = self.locate(row_a)
        _, local_b = self.locate(row_b)
        _, local_c = self.locate(row_c)
        result = subarray.triple_activate(local_a, local_b, local_c)
        subarray.precharge()
        self.activations += 1
        self.precharges += 1
        return result
