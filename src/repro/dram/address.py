"""Address mapping between linear physical addresses and DRAM coordinates.

The mapping policy determines how much bank- and channel-level parallelism a
streaming access pattern can exploit, which in turn sets the baseline
(processor-centric) bandwidth that PIM is compared against.

Two standard policies are provided:

* ``row_interleaved`` (RoBaRaCoCh-like): consecutive cache lines walk
  through the channels, then the columns of one row, so a stream keeps every
  channel busy and enjoys high row-buffer locality.
* ``bank_interleaved`` (RoCoRaBaCh-like): consecutive cache lines also walk
  across banks, which maximizes bank-level parallelism for random access at
  the cost of row locality for small strides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DramGeometry

CACHE_LINE_BYTES = 64


@dataclass(frozen=True)
class DramCoordinate:
    """Fully decoded location of one cache line in the memory system."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int  # in units of cache lines within the row

    def as_tuple(self) -> tuple:
        """Return (channel, rank, bank, row, column)."""
        return (self.channel, self.rank, self.bank, self.row, self.column)


class AddressMapper:
    """Maps linear physical addresses to :class:`DramCoordinate` and back.

    Args:
        geometry: The DRAM organization to map into.
        policy: ``"row_interleaved"`` or ``"bank_interleaved"``.
    """

    POLICIES = ("row_interleaved", "bank_interleaved")

    def __init__(self, geometry: DramGeometry, policy: str = "row_interleaved") -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {self.POLICIES}")
        self.geometry = geometry
        self.policy = policy
        self._lines_per_row = geometry.row_size_bytes // CACHE_LINE_BYTES

    @property
    def capacity_bytes(self) -> int:
        """Total mappable capacity."""
        return self.geometry.total_capacity_bytes

    def decode(self, address: int) -> DramCoordinate:
        """Decode a byte address into a :class:`DramCoordinate`.

        The address is first truncated to cache-line granularity.
        """
        if address < 0 or address >= self.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside device capacity {self.capacity_bytes:#x}"
            )
        g = self.geometry
        line = address // CACHE_LINE_BYTES
        if self.policy == "row_interleaved":
            # line = ((((row * banks + bank) * ranks + rank) * columns + column)
            #          * channels + channel)
            channel = line % g.channels
            line //= g.channels
            column = line % self._lines_per_row
            line //= self._lines_per_row
            rank = line % g.ranks_per_channel
            line //= g.ranks_per_channel
            bank = line % g.banks_per_rank
            line //= g.banks_per_rank
            row = line
        else:  # bank_interleaved
            channel = line % g.channels
            line //= g.channels
            bank = line % g.banks_per_rank
            line //= g.banks_per_rank
            rank = line % g.ranks_per_channel
            line //= g.ranks_per_channel
            column = line % self._lines_per_row
            line //= self._lines_per_row
            row = line
        if row >= g.rows_per_bank:
            raise ValueError(f"address {address:#x} decodes past the last row")
        return DramCoordinate(channel=channel, rank=rank, bank=bank, row=row, column=column)

    def encode(self, coordinate: DramCoordinate) -> int:
        """Encode a :class:`DramCoordinate` back into a byte address."""
        g = self.geometry
        self._validate(coordinate)
        if self.policy == "row_interleaved":
            line = coordinate.row
            line = line * g.banks_per_rank + coordinate.bank
            line = line * g.ranks_per_channel + coordinate.rank
            line = line * self._lines_per_row + coordinate.column
            line = line * g.channels + coordinate.channel
        else:
            line = coordinate.row
            line = line * self._lines_per_row + coordinate.column
            line = line * g.ranks_per_channel + coordinate.rank
            line = line * g.banks_per_rank + coordinate.bank
            line = line * g.channels + coordinate.channel
        return line * CACHE_LINE_BYTES

    def _validate(self, coordinate: DramCoordinate) -> None:
        g = self.geometry
        checks = (
            (coordinate.channel, g.channels, "channel"),
            (coordinate.rank, g.ranks_per_channel, "rank"),
            (coordinate.bank, g.banks_per_rank, "bank"),
            (coordinate.row, g.rows_per_bank, "row"),
            (coordinate.column, self._lines_per_row, "column"),
        )
        for value, bound, name in checks:
            if not 0 <= value < bound:
                raise ValueError(f"{name} {value} out of range [0, {bound})")
