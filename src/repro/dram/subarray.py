"""Functional model of one DRAM subarray.

A subarray is a stripe of rows that shares a set of local sense amplifiers.
This is the unit within which RowClone's Fast-Parallel Mode and Ambit's
triple-row activation can operate, because both rely on rows being connected
to the *same* sense amplifiers.

Row contents are stored as NumPy ``uint8`` arrays and allocated lazily:
untouched rows cost no host memory, which keeps multi-gigabyte simulated
devices cheap to instantiate.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np


class Subarray:
    """Functional storage and sense-amplifier behaviour for one subarray.

    Args:
        rows: Number of rows in this subarray.
        row_size_bytes: Bytes per row.
        index: Position of this subarray within its bank (for diagnostics).
    """

    def __init__(self, rows: int, row_size_bytes: int, index: int = 0) -> None:
        if rows <= 0 or row_size_bytes <= 0:
            raise ValueError("rows and row_size_bytes must be positive")
        self.rows = rows
        self.row_size_bytes = row_size_bytes
        self.index = index
        self._storage: Dict[int, np.ndarray] = {}
        # Contents of the sense amplifiers (the "row buffer") after the most
        # recent activation, or None when the subarray is precharged.
        self._row_buffer: Optional[np.ndarray] = None
        self._open_row: Optional[int] = None

    # ------------------------------------------------------------------
    # Storage access
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} out of range [0, {self.rows})")

    def read_row(self, row: int) -> np.ndarray:
        """Return a copy of the contents of ``row`` (zeros if never written)."""
        self._check_row(row)
        data = self._storage.get(row)
        if data is None:
            return np.zeros(self.row_size_bytes, dtype=np.uint8)
        return data.copy()

    def write_row(self, row: int, data: np.ndarray) -> None:
        """Overwrite ``row`` with ``data`` (must be exactly one row long)."""
        self._check_row(row)
        array = np.asarray(data, dtype=np.uint8)
        if array.shape != (self.row_size_bytes,):
            raise ValueError(
                f"row data must have shape ({self.row_size_bytes},), got {array.shape}"
            )
        self._storage[row] = array.copy()

    def write_row_slice(self, row: int, offset: int, data: np.ndarray) -> None:
        """Overwrite part of ``row`` starting at byte ``offset``."""
        self._check_row(row)
        array = np.asarray(data, dtype=np.uint8)
        if offset < 0 or offset + array.size > self.row_size_bytes:
            raise ValueError("slice does not fit in the row")
        current = self._storage.get(row)
        if current is None:
            current = np.zeros(self.row_size_bytes, dtype=np.uint8)
        current = current.copy()
        current[offset : offset + array.size] = array
        self._storage[row] = current

    def read_row_slice(self, row: int, offset: int, length: int) -> np.ndarray:
        """Return ``length`` bytes of ``row`` starting at ``offset``."""
        self._check_row(row)
        if offset < 0 or length < 0 or offset + length > self.row_size_bytes:
            raise ValueError("slice does not fit in the row")
        return self.read_row(row)[offset : offset + length]

    @property
    def allocated_rows(self) -> int:
        """Number of rows that have actually been written (backing storage)."""
        return len(self._storage)

    def iter_written_rows(self) -> Iterator[int]:
        """Iterate over the indices of rows with backing storage."""
        return iter(sorted(self._storage))

    # ------------------------------------------------------------------
    # Sense-amplifier behaviour
    # ------------------------------------------------------------------
    @property
    def open_row(self) -> Optional[int]:
        """Row currently latched in the sense amplifiers, or None if closed."""
        return self._open_row

    def activate(self, row: int) -> np.ndarray:
        """Latch ``row`` into the sense amplifiers and return its contents."""
        self._check_row(row)
        self._row_buffer = self.read_row(row)
        self._open_row = row
        return self._row_buffer.copy()

    def activate_onto_open_buffer(self, row: int) -> None:
        """Second activation of an AAP: copy the latched data into ``row``.

        DRAM semantics: when a second row is activated while the sense
        amplifiers still hold strong values, the amplifiers overpower the
        newly connected cells, so the destination row takes on the buffer's
        contents.
        """
        self._check_row(row)
        if self._row_buffer is None:
            raise RuntimeError("AAP second activation with no latched row buffer")
        self.write_row(row, self._row_buffer)
        self._open_row = row

    def triple_activate(self, row_a: int, row_b: int, row_c: int) -> np.ndarray:
        """Simultaneously activate three rows; charge sharing computes majority.

        Returns the resulting bitwise majority, which is also restored into
        all three activated rows (this is why Ambit operates on designated
        copy rows rather than the original data).
        """
        for row in (row_a, row_b, row_c):
            self._check_row(row)
        a = self.read_row(row_a)
        b = self.read_row(row_b)
        c = self.read_row(row_c)
        # Bitwise majority of three values: (a & b) | (a & c) | (b & c).
        majority = (a & b) | (a & c) | (b & c)
        for row in (row_a, row_b, row_c):
            self.write_row(row, majority)
        self._row_buffer = majority.copy()
        self._open_row = row_a
        return majority.copy()

    def precharge(self) -> None:
        """Close the subarray (invalidate the sense-amplifier contents)."""
        self._row_buffer = None
        self._open_row = None
