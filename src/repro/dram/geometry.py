"""Physical organization of a DRAM device.

The geometry determines the two quantities the paper's in-DRAM computing
arguments revolve around:

* the *row size* (the amount of data a single activation operates on), and
* the *number of banks* (the amount of row-level parallelism available to
  RowClone and Ambit).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramGeometry:
    """Describes the physical organization of one DRAM system.

    Attributes:
        channels: Independent memory channels (each with its own bus).
        ranks_per_channel: Ranks sharing a channel bus.
        banks_per_rank: Independently operable banks per rank.
        subarrays_per_bank: Subarrays (local sense-amplifier stripes) per
            bank.  RowClone's Fast-Parallel Mode and Ambit's triple-row
            activation only work between rows of the same subarray.
        rows_per_subarray: DRAM rows per subarray.
        row_size_bytes: Bytes per row (per bank), i.e. the unit of a bulk
            in-DRAM operation.
        channel_width_bits: Data bus width of one channel.
    """

    channels: int = 2
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    subarrays_per_bank: int = 64
    rows_per_subarray: int = 512
    row_size_bytes: int = 8192
    channel_width_bits: int = 64

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "ranks_per_channel",
            "banks_per_rank",
            "subarrays_per_bank",
            "rows_per_subarray",
            "row_size_bytes",
            "channel_width_bits",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.row_size_bytes % 64 != 0:
            raise ValueError("row_size_bytes must be a multiple of the 64 B cache line")

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------
    @property
    def rows_per_bank(self) -> int:
        """Total rows in one bank (across all of its subarrays)."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def banks_total(self) -> int:
        """Total independently operable banks in the system."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def bank_capacity_bytes(self) -> int:
        """Capacity of one bank in bytes."""
        return self.rows_per_bank * self.row_size_bytes

    @property
    def total_capacity_bytes(self) -> int:
        """Capacity of the whole memory system in bytes."""
        return self.banks_total * self.bank_capacity_bytes

    @property
    def row_size_bits(self) -> int:
        """Bits per row — the width of one bulk in-DRAM operation."""
        return self.row_size_bytes * 8

    @property
    def cache_lines_per_row(self) -> int:
        """Number of 64 B cache lines that fit in one row."""
        return self.row_size_bytes // 64

    def describe(self) -> str:
        """Human-readable one-line summary of the organization."""
        gib = self.total_capacity_bytes / (1 << 30)
        return (
            f"{gib:.1f} GiB: {self.channels} ch x {self.ranks_per_channel} rank x "
            f"{self.banks_per_rank} banks, {self.subarrays_per_bank} subarrays/bank, "
            f"{self.rows_per_subarray} rows/subarray, {self.row_size_bytes} B rows"
        )

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def ddr3_dimm(cls) -> "DramGeometry":
        """A dual-channel DDR3-style configuration (8 GiB)."""
        return cls(
            channels=2,
            ranks_per_channel=1,
            banks_per_rank=8,
            subarrays_per_bank=64,
            rows_per_subarray=512,
            row_size_bytes=8192,
            channel_width_bits=64,
        )

    @classmethod
    def ddr4_dimm(cls) -> "DramGeometry":
        """A dual-channel DDR4-style configuration (16 GiB, 16 banks/rank)."""
        return cls(
            channels=2,
            ranks_per_channel=1,
            banks_per_rank=16,
            subarrays_per_bank=64,
            rows_per_subarray=512,
            row_size_bytes=8192,
            channel_width_bits=64,
        )

    @classmethod
    def hmc_vault_bank(cls) -> "DramGeometry":
        """Geometry of the banks inside a single HMC vault.

        HMC banks use much smaller rows than DDRx devices (the HMC 2.0
        specification uses 256 B pages; we model 1 KiB to fold in the
        per-vault bank grouping), which is why Ambit-in-HMC gains come from
        bank count rather than row width.
        """
        return cls(
            channels=1,
            ranks_per_channel=1,
            banks_per_rank=16,
            subarrays_per_bank=16,
            rows_per_subarray=1024,
            row_size_bytes=1024,
            channel_width_bits=32,
        )
