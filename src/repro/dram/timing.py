"""DRAM timing parameters and derived latencies.

Values are expressed in nanoseconds.  The presets correspond to published
JEDEC speed bins (DDR3-1600, DDR4-2400) and are the calibration points for
every latency/bandwidth ratio in the reproduction: the paper's in-DRAM
computing results are, at their core, arguments about the ratio between

* the time to stream a row's worth of data over the channel, and
* the time to operate on an entire row inside the bank (one or a few
  activate/precharge cycles).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DramTimingParameters:
    """JEDEC-style timing parameters for one DRAM speed bin.

    Attributes:
        name: Human-readable speed-bin name.
        tck_ns: Clock period of the data bus clock (ns).
        data_rate_mtps: Data transfers per second, in MT/s (DDR: 2 per clock).
        t_rcd_ns: ACT-to-column-command delay.
        t_ras_ns: ACT-to-PRE minimum row-open time.
        t_rp_ns: Precharge latency.
        t_cas_ns: Column access (read) latency.
        t_wr_ns: Write recovery time.
        t_rrd_ns: ACT-to-ACT delay between different banks.
        t_faw_ns: Four-activate window.
        t_refi_ns: Average refresh interval.
        t_rfc_ns: Refresh cycle time.
        burst_length: Transfers per column command (BL8 for DDR3/DDR4).
    """

    name: str = "DDR3-1600"
    tck_ns: float = 1.25
    data_rate_mtps: float = 1600.0
    t_rcd_ns: float = 13.75
    t_ras_ns: float = 35.0
    t_rp_ns: float = 13.75
    t_cas_ns: float = 13.75
    t_wr_ns: float = 15.0
    t_rrd_ns: float = 6.0
    t_faw_ns: float = 30.0
    t_refi_ns: float = 7800.0
    t_rfc_ns: float = 260.0
    burst_length: int = 8

    def __post_init__(self) -> None:
        numeric_fields = (
            "tck_ns",
            "data_rate_mtps",
            "t_rcd_ns",
            "t_ras_ns",
            "t_rp_ns",
            "t_cas_ns",
            "t_wr_ns",
            "t_rrd_ns",
            "t_faw_ns",
            "t_refi_ns",
            "t_rfc_ns",
        )
        for field_name in numeric_fields:
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value!r}")
        if self.burst_length <= 0:
            raise ValueError("burst_length must be positive")

    # ------------------------------------------------------------------
    # Derived latencies
    # ------------------------------------------------------------------
    @property
    def t_rc_ns(self) -> float:
        """Row cycle time: minimum time between activations of one bank."""
        return self.t_ras_ns + self.t_rp_ns

    @property
    def burst_time_ns(self) -> float:
        """Time to transfer one burst (BL transfers at the data rate)."""
        return self.burst_length / (self.data_rate_mtps * 1e6) * 1e9

    @property
    def row_miss_read_latency_ns(self) -> float:
        """Latency of a read that must close one row and open another."""
        return self.t_rp_ns + self.t_rcd_ns + self.t_cas_ns + self.burst_time_ns

    @property
    def row_hit_read_latency_ns(self) -> float:
        """Latency of a read that hits the currently open row."""
        return self.t_cas_ns + self.burst_time_ns

    @property
    def row_empty_read_latency_ns(self) -> float:
        """Latency of a read into a precharged (closed) bank."""
        return self.t_rcd_ns + self.t_cas_ns + self.burst_time_ns

    def channel_bandwidth_bytes_per_s(self, channel_width_bits: int = 64) -> float:
        """Peak bandwidth of one channel of the given width."""
        return self.data_rate_mtps * 1e6 * channel_width_bits / 8

    # ------------------------------------------------------------------
    # In-DRAM operation primitives (RowClone / Ambit)
    # ------------------------------------------------------------------
    @property
    def ap_ns(self) -> float:
        """Duration of an ACTIVATE followed by a PRECHARGE (one row cycle)."""
        return self.t_rc_ns

    @property
    def aap_ns(self) -> float:
        """Duration of the ACTIVATE–ACTIVATE–PRECHARGE (AAP) primitive.

        AAP is the command sequence RowClone-FPM and Ambit are built from:
        the first activation drives a source row onto the bitlines, the
        back-to-back second activation connects the destination row so the
        sense amplifiers overwrite it, and the precharge closes the bank.
        The second activation can begin once the sense amplifiers have
        latched (approximately ``tRAS``), so the full primitive occupies
        roughly two row-open intervals plus one precharge.
        """
        return 2.0 * self.t_ras_ns + self.t_rp_ns

    @property
    def tra_ns(self) -> float:
        """Duration of one triple-row-activation (TRA) based AAP for Ambit.

        Ambit's charge-sharing majority operation is performed by an
        activation that connects three rows; its timing envelope matches an
        ordinary AAP because the extra wordline does not lengthen sensing
        appreciably (the Ambit paper reports the same command timing works
        in SPICE even under process variation).
        """
        return self.aap_ns

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def ddr3_1600(cls) -> "DramTimingParameters":
        """DDR3-1600 (PC3-12800), the configuration used by Ambit/RowClone."""
        return cls()

    @classmethod
    def ddr4_2400(cls) -> "DramTimingParameters":
        """DDR4-2400, the speed bin of the Skylake baseline system."""
        return cls(
            name="DDR4-2400",
            tck_ns=0.833,
            data_rate_mtps=2400.0,
            t_rcd_ns=14.16,
            t_ras_ns=32.0,
            t_rp_ns=14.16,
            t_cas_ns=14.16,
            t_wr_ns=15.0,
            t_rrd_ns=4.9,
            t_faw_ns=21.0,
            t_refi_ns=7800.0,
            t_rfc_ns=350.0,
            burst_length=8,
        )

    @classmethod
    def hmc_internal(cls) -> "DramTimingParameters":
        """Timing of the DRAM layers inside an HMC-like 3D stack.

        The stacked DRAM arrays use similar core timings to DDR devices;
        the bandwidth advantage comes from the many narrow, short vertical
        channels (TSVs), not faster cells.
        """
        return cls(
            name="HMC-internal",
            tck_ns=0.8,
            data_rate_mtps=2500.0,
            t_rcd_ns=13.75,
            t_ras_ns=33.0,
            t_rp_ns=13.75,
            t_cas_ns=13.75,
            t_wr_ns=15.0,
            t_rrd_ns=5.0,
            t_faw_ns=25.0,
            t_refi_ns=7800.0,
            t_rfc_ns=260.0,
            burst_length=4,
        )
