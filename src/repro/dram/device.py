"""The composed DRAM device: geometry + timing + energy + controller.

:class:`DramDevice` is the object the rest of the stack builds on.  The
RowClone and Ambit engines reach into its banks to perform row-level
operations; the host baselines use its analytical streaming/random access
accounting; the functional read/write path is used by tests and examples
that need real data to move end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.dram.address import CACHE_LINE_BYTES, DramCoordinate
from repro.dram.bank import Bank
from repro.dram.controller import MemoryController, Request, RequestKind
from repro.dram.energy import DramEnergyParameters, EnergyBreakdown
from repro.dram.geometry import DramGeometry
from repro.dram.timing import DramTimingParameters


@dataclass
class DeviceAccessResult:
    """Outcome of a functional bulk read or write on the device."""

    latency_ns: float
    energy: EnergyBreakdown
    data: Optional[np.ndarray] = None


class DramDevice:
    """A complete DRAM memory system with functional and analytical access.

    Args:
        geometry: Physical organization (defaults to a dual-channel DDR3 DIMM).
        timing: Speed-bin timings (defaults to DDR3-1600).
        energy: Energy parameters (defaults to DDR3-1600 x8 devices).
        mapping_policy: Address mapping policy.
    """

    def __init__(
        self,
        geometry: Optional[DramGeometry] = None,
        timing: Optional[DramTimingParameters] = None,
        energy: Optional[DramEnergyParameters] = None,
        mapping_policy: str = "row_interleaved",
    ) -> None:
        self.geometry = geometry or DramGeometry.ddr3_dimm()
        self.timing = timing or DramTimingParameters.ddr3_1600()
        self.energy_params = energy or DramEnergyParameters.ddr3_1600()
        self.controller = MemoryController(
            self.geometry, self.timing, self.energy_params, mapping_policy
        )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def ddr3(cls) -> "DramDevice":
        """Dual-channel DDR3-1600 system (the Ambit/RowClone configuration)."""
        return cls(
            DramGeometry.ddr3_dimm(),
            DramTimingParameters.ddr3_1600(),
            DramEnergyParameters.ddr3_1600(),
        )

    @classmethod
    def ddr4(cls) -> "DramDevice":
        """Dual-channel DDR4-2400 system (the Skylake baseline configuration)."""
        return cls(
            DramGeometry.ddr4_dimm(),
            DramTimingParameters.ddr4_2400(),
            DramEnergyParameters.ddr4_2400(),
        )

    @classmethod
    def hmc_vault(cls) -> "DramDevice":
        """The DRAM of a single HMC-like vault (used by the stacked model)."""
        return cls(
            DramGeometry.hmc_vault_bank(),
            DramTimingParameters.hmc_internal(),
            DramEnergyParameters.hmc_internal(),
        )

    # ------------------------------------------------------------------
    # Capacity / addressing helpers
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Total device capacity."""
        return self.geometry.total_capacity_bytes

    def decode(self, address: int) -> DramCoordinate:
        """Decode a byte address into (channel, rank, bank, row, column)."""
        return self.controller.mapper.decode(address)

    def bank_at(self, channel: int, rank: int, bank: int) -> Bank:
        """Return a bank object by its coordinates."""
        return self.controller.banks[(channel, rank, bank)]

    def iter_banks(self):
        """Iterate over ((channel, rank, bank), Bank) pairs."""
        return iter(self.controller.banks.items())

    # ------------------------------------------------------------------
    # Functional bulk access through the channel
    # ------------------------------------------------------------------
    def write_bytes(self, address: int, data: np.ndarray) -> DeviceAccessResult:
        """Write ``data`` starting at ``address`` through the memory channel.

        Data is split into 64 B cache-line requests; returns functional
        latency and energy for the whole transfer.
        """
        payload = np.asarray(data, dtype=np.uint8)
        if address % CACHE_LINE_BYTES != 0:
            raise ValueError("bulk writes must be cache-line aligned")
        if payload.size % CACHE_LINE_BYTES != 0:
            padded = np.zeros(
                ((payload.size + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES) * CACHE_LINE_BYTES,
                dtype=np.uint8,
            )
            padded[: payload.size] = payload
            payload = padded
        start_time = self.controller.now_ns
        start_energy = self.controller.stats.energy.total_j
        for offset in range(0, payload.size, CACHE_LINE_BYTES):
            self.controller.submit(
                Request(
                    kind=RequestKind.WRITE,
                    address=address + offset,
                    data=payload[offset : offset + CACHE_LINE_BYTES],
                )
            )
        self.controller.drain()
        elapsed = self.controller.now_ns - start_time
        spent = self.controller.stats.energy.total_j - start_energy
        return DeviceAccessResult(latency_ns=elapsed, energy=EnergyBreakdown(io_j=spent))

    def read_bytes(self, address: int, length: int) -> DeviceAccessResult:
        """Read ``length`` bytes starting at ``address`` through the channel."""
        if address % CACHE_LINE_BYTES != 0:
            raise ValueError("bulk reads must be cache-line aligned")
        if length < 0:
            raise ValueError("length must be non-negative")
        start_time = self.controller.now_ns
        start_energy = self.controller.stats.energy.total_j
        padded_length = ((length + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES) * CACHE_LINE_BYTES
        requests = []
        for offset in range(0, padded_length, CACHE_LINE_BYTES):
            request = Request(kind=RequestKind.READ, address=address + offset)
            self.controller.submit(request)
            requests.append(request)
        self.controller.drain()
        data = np.concatenate([r.result for r in requests]) if requests else np.zeros(0, dtype=np.uint8)
        elapsed = self.controller.now_ns - start_time
        spent = self.controller.stats.energy.total_j - start_energy
        return DeviceAccessResult(
            latency_ns=elapsed,
            energy=EnergyBreakdown(io_j=spent),
            data=data[:length],
        )

    # ------------------------------------------------------------------
    # Analytical accounting shortcuts (delegate to the controller)
    # ------------------------------------------------------------------
    def peak_bandwidth_bytes_per_s(self) -> float:
        """Aggregate peak channel bandwidth."""
        return self.controller.peak_bandwidth_bytes_per_s()

    def stream_time_ns(self, num_bytes: int, efficiency: float = 0.85) -> float:
        """Time to stream ``num_bytes`` through the channels."""
        return self.controller.stream_time_ns(num_bytes, efficiency)

    def stream_energy(self, num_bytes: int, *, is_write: bool = False) -> EnergyBreakdown:
        """Energy to stream ``num_bytes`` through the channels."""
        return self.controller.stream_energy(num_bytes, is_write=is_write)

    def random_access_time_ns(self, num_accesses: int, bytes_per_access: int = 64) -> float:
        """Time for random cache-line-granularity accesses."""
        return self.controller.random_access_time_ns(num_accesses, bytes_per_access)

    def random_access_energy(self, num_accesses: int, bytes_per_access: int = 64) -> EnergyBreakdown:
        """Energy for random cache-line-granularity accesses."""
        return self.controller.random_access_energy(num_accesses, bytes_per_access)
