"""A1 — How Ambit throughput scales with the number of DRAM banks.

Design-choice ablation from DESIGN.md: the 44x headline (E1) assumes 8-bank
parallelism on a DDR module.  This sweep shows throughput scaling from 1 to
64 banks and where the advantage over the CPU baseline starts (already at a
single bank for row-wide operations).
"""

from __future__ import annotations

import pytest

from repro.ambit.bitvector import BulkBitVector
from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.dram.device import DramDevice
from repro.hostsim.cpu import HostCpu

from _bench_utils import emit

BANK_COUNTS = (1, 2, 4, 8, 16, 32, 64)
VECTOR_BITS = 32 * 1024 * 1024 * 8


def _run_experiment():
    device = DramDevice.ddr3()
    cpu = HostCpu(dram=device)
    cpu_metrics = cpu.bulk_bitwise("and", VECTOR_BITS // 8)
    table = ResultTable(
        title="A1: bulk AND throughput vs. number of banks used by Ambit",
        columns=["banks", "ambit_gbps", "speedup_vs_cpu"],
    )
    speedups = []
    for banks in BANK_COUNTS:
        engine = AmbitEngine(device, AmbitConfig(banks_parallel=banks))
        a = BulkBitVector(VECTOR_BITS)
        b = BulkBitVector(VECTOR_BITS)
        _, metrics = engine.execute("and", a, b)
        speedup = metrics.throughput_bytes_per_s / cpu_metrics.throughput_bytes_per_s
        speedups.append(speedup)
        table.add_row(banks, metrics.throughput_bytes_per_s / 1e9, speedup)
    return table, speedups


@pytest.mark.benchmark(group="A1-bank-scaling")
def test_a1_throughput_scales_with_banks(benchmark):
    table, speedups = benchmark(_run_experiment)
    emit(table)
    # Row-wide operation beats the channel-bound CPU even with one bank, and
    # throughput scales linearly with the bank count.
    assert speedups[0] > 3
    for previous, current in zip(speedups, speedups[1:]):
        assert current == pytest.approx(2 * previous, rel=0.05)
