"""Service-layer batching: 64 BitWeaving scans batched vs. sequential.

The batch scheduler may only speed a batch up through bank-level overlap —
per-request latency and total energy are pinned to sequential execution by
the service-layer property tests.  This benchmark quantifies that overlap
on the paper's DDR3 configuration (16 banks): 64 predicate scans over 16
BitWeaving columns, whose single-row bit vectors land on distinct banks,
executed one at a time vs. as one batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.tables import ResultTable
from repro.database.bitweaving import BitWeavingColumn
from repro.database.queries import QueryEngine

from _bench_utils import emit

NUM_COLUMNS = 16
SCANS_PER_COLUMN = 4
ROWS_PER_COLUMN = 65536  # one 8 KiB DRAM row per bit vector
CODE_BITS = 8


def _build_columns(seed: int = 7):
    rng = np.random.default_rng(seed)
    return [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS_PER_COLUMN), CODE_BITS)
        for _ in range(NUM_COLUMNS)
    ]


def _build_scans(columns):
    scans = []
    for index, column in enumerate(columns):
        scans.append((column, "between", (10, 17 + index * 8)))
        scans.append((column, "equal", (index * 13 % (1 << CODE_BITS),)))
        scans.append((column, "less_than", (1 + index * 9 % (1 << CODE_BITS),)))
        scans.append((column, "less_equal", (index * 5 % (1 << CODE_BITS),)))
    return scans


def _run_experiment(system):
    from repro.service import BatchScheduler

    ambit = system["ambit"]
    columns = _build_columns()
    scans = _build_scans(columns)
    assert len(scans) == NUM_COLUMNS * SCANS_PER_COLUMN == 64

    # Sequential: each scan alone, one after another (the seed's behavior).
    query_engine = QueryEngine(ambit=ambit)
    sequential_ns = 0.0
    sequential_energy = 0.0
    result_bytes = 0
    for column, kind, constants in scans:
        _, plan = column.scan(kind, *constants)
        cost = query_engine.ambit_scan_cost(plan)
        sequential_ns += cost.latency_ns
        sequential_energy += cost.energy_j
        result_bytes += cost.bytes_produced

    # Batched: all 64 scans through the scheduler.
    scheduler = BatchScheduler(engine=ambit)
    for column, kind, constants in scans:
        scheduler.submit_scan(column, kind, *constants)
    batch = scheduler.execute()

    sequential_tput = result_bytes / (sequential_ns * 1e-9)
    batched_tput = batch.metrics.throughput_bytes_per_s
    speedup = batched_tput / sequential_tput

    table = ResultTable(
        title=f"Service batching: {len(scans)} scans over {NUM_COLUMNS} columns, "
        f"{ambit.config.banks_parallel} banks",
        columns=["mode", "latency_ms", "energy_mj", "GB/s", "speedup"],
    )
    table.add_row("sequential", sequential_ns / 1e6, sequential_energy * 1e3,
                  sequential_tput / 1e9, 1.0)
    table.add_row("batched", batch.metrics.latency_ns / 1e6,
                  batch.metrics.energy_j * 1e3, batched_tput / 1e9, speedup)
    return table, batch, sequential_ns, sequential_energy, speedup


@pytest.mark.benchmark(group="service-batching")
def test_service_batch_throughput(benchmark, ddr3_ambit_system):
    table, batch, sequential_ns, sequential_energy, speedup = benchmark(
        _run_experiment, ddr3_ambit_system
    )
    emit(table)
    emit(f"batched throughput is {speedup:.1f}x sequential")
    # Acceptance: >= 2x throughput for a 64-scan batch on a multi-bank config.
    assert speedup >= 2.0
    # Batching is free in energy and never loses latency.
    assert batch.metrics.energy_j == pytest.approx(sequential_energy)
    assert batch.metrics.latency_ns <= sequential_ns
