"""A3 — Offload-decision crossover as compute intensity rises.

Design-choice ablation from DESIGN.md: the adoption layer's offload planner
(Section 4 of the paper: runtime scheduling of code on PIM logic) should
send data-movement-bound kernels to PIM and keep compute-bound kernels on
the host.  This sweep varies a kernel's operations-per-byte ratio and
reports the chosen target, the projected speedup, and the projected energy
reduction, locating the crossover point.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import ResultTable
from repro.core.offload import ExecutionTarget, KernelDescriptor, OffloadPlanner

from _bench_utils import emit

OPS_PER_BYTE = (0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128)
MEMORY_BYTES = 512 * 1024 * 1024


def _run_experiment():
    planner = OffloadPlanner()
    table = ResultTable(
        title="A3: offload decision vs. kernel compute intensity (ops/byte)",
        columns=["ops_per_byte", "target", "projected_speedup", "projected_energy_red_%"],
    )
    targets = []
    for intensity in OPS_PER_BYTE:
        kernel = KernelDescriptor(
            name=f"kernel_{intensity}",
            instructions=intensity * MEMORY_BYTES,
            memory_bytes=MEMORY_BYTES,
            streaming_fraction=0.6,
        )
        decision = planner.plan(kernel)
        targets.append(decision.target)
        table.add_row(
            intensity,
            decision.target.value,
            decision.projected_speedup,
            decision.projected_energy_reduction_percent,
        )
    return table, targets


@pytest.mark.benchmark(group="A3-offload-crossover")
def test_a3_offload_crossover(benchmark):
    table, targets = benchmark(_run_experiment)
    emit(table)
    # Data-movement-bound kernels are offloaded; compute-bound kernels stay
    # on the host; the crossover is monotone.
    assert targets[0] is not ExecutionTarget.HOST
    assert targets[-1] is ExecutionTarget.HOST
    first_host = targets.index(ExecutionTarget.HOST)
    assert all(t is ExecutionTarget.HOST for t in targets[first_host:])
    assert 0 < first_host < len(targets) - 1
