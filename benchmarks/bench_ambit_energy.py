"""E2 — DRAM energy of bulk bitwise operations: DDR3 vs. Ambit.

Paper claim (Section 2): compared to DDR3 DRAM, Ambit reduces the energy of
bulk bitwise operations by 35x on average.

The comparison, like the original, is a DRAM-interface energy accounting:
the processor-centric execution pays activation + burst + I/O energy for
every byte moved over the channel (reads of both operands plus the streamed
write of the result), while Ambit pays a few row-wide AAP/TRA operations per
8 KiB row and never uses the channel.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import ResultTable
from repro.dram.device import DramDevice

from _bench_utils import emit

OPERATIONS = ("not", "and", "or", "nand", "nor", "xor", "xnor")
#: Channel bytes moved per result byte in the processor-centric execution
#: (operand reads plus a streaming, non-temporal store of the result).
CHANNEL_TRAFFIC = {"not": 2.0, "and": 3.0, "or": 3.0, "nand": 3.0, "nor": 3.0, "xor": 3.0, "xnor": 3.0}
VECTOR_BYTES = 32 * 1024 * 1024


def _run_experiment(system):
    device: DramDevice = system["device"]
    ambit = system["ambit"]
    energy = device.energy_params
    table = ResultTable(
        title="E2: DRAM energy per KiB of result (nJ/KiB), DDR3 channel vs. Ambit",
        columns=["op", "ddr3_nj_per_kib", "ambit_nj_per_kib", "reduction"],
    )
    reductions = []
    for op in OPERATIONS:
        traffic_bytes = int(CHANNEL_TRAFFIC[op] * VECTOR_BYTES)
        rows_touched = traffic_bytes // device.geometry.row_size_bytes
        ddr3_energy = (
            rows_touched * energy.activation_energy_j
            + energy.channel_transfer_energy_j(traffic_bytes)
        )
        rows = VECTOR_BYTES // device.geometry.row_size_bytes
        ambit_energy = rows * ambit.per_row_energy_j(op)
        reduction = ddr3_energy / ambit_energy
        reductions.append(reduction)
        kib = VECTOR_BYTES / 1024
        table.add_row(op, ddr3_energy / kib * 1e9, ambit_energy / kib * 1e9, reduction)
    mean_reduction = arithmetic_mean(reductions)
    table.add_row("average", "-", "-", mean_reduction)
    return table, mean_reduction


@pytest.mark.benchmark(group="E2-ambit-energy")
def test_e2_ambit_energy_reduction_vs_ddr3(benchmark, ddr3_ambit_system):
    table, mean_reduction = benchmark(_run_experiment, ddr3_ambit_system)
    emit(table)
    emit(f"paper: 35x average energy reduction | measured: {mean_reduction:.1f}x")
    # Shape check: an order-of-magnitude-plus reduction, in the tens.
    assert 20 < mean_reduction < 80
