"""E8 — RowClone: in-DRAM bulk copy and initialization.

Paper claim (Section 2): RowClone enables fast and energy-efficient in-DRAM
bulk data copy and initialization (the substrate Ambit builds on).  The
published RowClone results are ~11.6x latency and ~74x DRAM-energy reduction
for a single page copy in Fast-Parallel Mode, with larger aggregate gains
for bulk operations that span many banks.

This benchmark regenerates the copy/initialize latency and energy series for
a range of region sizes, for the CPU baseline (memcpy/memset through the
channel), RowClone-PSM (inter-bank), and RowClone-FPM (intra-subarray).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import ResultTable
from repro.dram.device import DramDevice
from repro.hostsim.cpu import HostCpu
from repro.rowclone.engine import CopyMode, RowCloneEngine

from _bench_utils import emit

SIZES = (8 * 1024, 64 * 1024, 1 << 20, 16 << 20, 64 << 20)


def _run_experiment():
    device = DramDevice.ddr3()
    engine = RowCloneEngine(device)
    cpu = HostCpu(dram=device)

    copy_table = ResultTable(
        title="E8a: bulk copy latency (us) — CPU vs. RowClone PSM / FPM",
        columns=["bytes", "cpu_us", "psm_us", "fpm_us", "fpm_speedup", "fpm_energy_reduction"],
    )
    page_speedup = None
    for size in SIZES:
        cpu_metrics = cpu.bulk_copy(size)
        psm = engine.bulk_copy(size, CopyMode.PSM)
        fpm = engine.bulk_copy(size, CopyMode.FPM)
        speedup = cpu_metrics.latency_ns / fpm.latency_ns
        energy_reduction = cpu_metrics.energy_j / fpm.energy_j
        if size == 8 * 1024:
            page_speedup = speedup
        copy_table.add_row(
            size,
            cpu_metrics.latency_ns / 1e3,
            psm.latency_ns / 1e3,
            fpm.latency_ns / 1e3,
            speedup,
            energy_reduction,
        )

    fill_table = ResultTable(
        title="E8b: bulk zero-initialization latency (us) — CPU vs. RowClone",
        columns=["bytes", "cpu_us", "rowclone_us", "speedup", "energy_reduction"],
    )
    for size in SIZES:
        cpu_metrics = cpu.bulk_fill(size)
        fill = engine.bulk_fill(size)
        fill_table.add_row(
            size,
            cpu_metrics.latency_ns / 1e3,
            fill.latency_ns / 1e3,
            cpu_metrics.latency_ns / fill.latency_ns,
            cpu_metrics.energy_j / fill.energy_j,
        )
    return copy_table, fill_table, page_speedup


@pytest.mark.benchmark(group="E8-rowclone")
def test_e8_rowclone_copy_and_fill(benchmark):
    copy_table, fill_table, page_speedup = benchmark(_run_experiment)
    emit(copy_table)
    emit(fill_table)
    emit(f"paper: ~11.6x single-page copy latency reduction | measured: {page_speedup:.1f}x")
    # Single-page FPM copy speedup in the published ballpark.
    assert 5 < page_speedup < 40
    # Bulk copies spanning every bank gain considerably more.
    largest_speedup = copy_table.column("fpm_speedup")[-1]
    assert largest_speedup > 50
