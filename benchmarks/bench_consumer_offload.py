"""E7 — Offloading the consumer workloads' target functions to PIM logic.

Paper claims (Section 3):

* the PIM core and PIM accelerator occupy no more than 9.4% and 35.4% of
  the area available per vault in the HMC-like logic layer, and
* offloading the target functions reduces total system energy by 55.4% and
  execution time by 54.2% on average across the four workloads.
"""

from __future__ import annotations

import pytest

from repro.consumer.analysis import ConsumerStudy

from _bench_utils import emit


def _run_experiment():
    study = ConsumerStudy()
    offload_table = study.offload_table()
    area_table = study.area_table()
    averages = study.average_reductions()
    comparisons = study.offload_comparisons()
    core_area_fraction = comparisons[0].pim_core.area_fraction
    accel_area_fraction = comparisons[0].pim_accelerator.area_fraction
    return offload_table, area_table, averages, core_area_fraction, accel_area_fraction


@pytest.mark.benchmark(group="E7-consumer-offload")
def test_e7_pim_offload_reductions_and_area(benchmark):
    offload_table, area_table, averages, core_area, accel_area = benchmark(_run_experiment)
    emit(area_table)
    emit(offload_table)
    emit(
        "paper: areas 9.4% / 35.4% of a vault's budget; -55.4% energy, -54.2% time | "
        f"measured: areas {core_area * 100:.1f}% / {accel_area * 100:.1f}%; "
        f"PIM core -{averages['pim_core_energy_reduction_percent']:.1f}% energy, "
        f"-{averages['pim_core_time_reduction_percent']:.1f}% time; "
        f"PIM accel -{averages['pim_accelerator_energy_reduction_percent']:.1f}% energy, "
        f"-{averages['pim_accelerator_time_reduction_percent']:.1f}% time"
    )
    # Area fractions are the paper's figures by construction of the site models.
    assert core_area == pytest.approx(0.094, abs=0.01)
    assert accel_area == pytest.approx(0.354, abs=0.02)
    # Energy/time reductions land in a generous band around the paper's ~55%/54%.
    assert 35 < averages["pim_core_energy_reduction_percent"] < 70
    assert 35 < averages["pim_core_time_reduction_percent"] < 80
    assert 35 < averages["pim_accelerator_energy_reduction_percent"] < 70
    assert 50 < averages["pim_accelerator_time_reduction_percent"] < 95
