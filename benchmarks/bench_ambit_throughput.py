"""E1 — Ambit bulk bitwise throughput vs. Skylake CPU and GTX 745 GPU.

Paper claim (Section 2): averaged across the seven bulk bitwise operations
(NOT, AND, OR, NAND, NOR, XOR, XNOR), Ambit with 8 DRAM banks improves
throughput by 44x over an Intel Skylake CPU and 32x over an NVIDIA GTX 745.

This benchmark regenerates the per-operation throughput series (in GOps/s of
64-bit words, the paper's metric) and the cross-operation average ratios.
"""

from __future__ import annotations

import pytest

from repro.ambit.bitvector import BulkBitVector
from repro.analysis.metrics import arithmetic_mean
from repro.analysis.tables import ResultTable

from _bench_utils import emit

OPERATIONS = ("not", "and", "or", "nand", "nor", "xor", "xnor")
VECTOR_BITS = 32 * 1024 * 1024 * 8  # 32 MiB operands, as in the Ambit evaluation


def _run_experiment(system):
    ambit, cpu, gpu = system["ambit"], system["cpu"], system["gpu"]
    table = ResultTable(
        title="E1: bulk bitwise throughput (GOps/s of 64-bit words), 32 MiB vectors",
        columns=["op", "cpu", "gpu", "ambit_8banks", "ambit/cpu", "ambit/gpu"],
    )
    cpu_ratios, gpu_ratios = [], []
    for op in OPERATIONS:
        a = BulkBitVector(VECTOR_BITS)
        b = None if op == "not" else BulkBitVector(VECTOR_BITS)
        _, ambit_metrics = ambit.execute(op, a, b)
        cpu_metrics = cpu.bulk_bitwise(op, VECTOR_BITS // 8)
        gpu_metrics = gpu.bulk_bitwise(op, VECTOR_BITS // 8)
        cpu_ratio = ambit_metrics.throughput_gops64 / cpu_metrics.throughput_gops64
        gpu_ratio = ambit_metrics.throughput_gops64 / gpu_metrics.throughput_gops64
        cpu_ratios.append(cpu_ratio)
        gpu_ratios.append(gpu_ratio)
        table.add_row(
            op,
            cpu_metrics.throughput_gops64,
            gpu_metrics.throughput_gops64,
            ambit_metrics.throughput_gops64,
            cpu_ratio,
            gpu_ratio,
        )
    mean_cpu = arithmetic_mean(cpu_ratios)
    mean_gpu = arithmetic_mean(gpu_ratios)
    table.add_row("average", "-", "-", "-", mean_cpu, mean_gpu)
    return table, mean_cpu, mean_gpu


@pytest.mark.benchmark(group="E1-ambit-throughput")
def test_e1_ambit_throughput_vs_cpu_and_gpu(benchmark, ddr3_ambit_system):
    table, mean_cpu, mean_gpu = benchmark(_run_experiment, ddr3_ambit_system)
    emit(table)
    emit(
        f"paper: 44x vs CPU, 32x vs GPU | measured: {mean_cpu:.1f}x vs CPU, "
        f"{mean_gpu:.1f}x vs GPU"
    )
    # Shape check: Ambit wins by tens of x against both baselines.
    assert 25 < mean_cpu < 70
    assert 18 < mean_gpu < 55
