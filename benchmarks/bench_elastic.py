"""Elastic fault tolerance: kill one of four shards under Poisson overload.

The cluster runs the same Poisson scan/conjunction stream twice over four
shards with replication factor 2: once healthy, once with shard 1 killed
a quarter of the way into the stream and revived near its end.  The kill
lands mid-burst, so queued parts on the victim migrate to surviving
replicas through the failover path while dispatched batches complete in
place (fail-stop at the dispatch boundary).

The acceptance bar: **zero lost requests** — every request offered to
the faulted cluster terminates, completed bit-exact with the healthy
run (replication factor 2 keeps every key routable with one shard
down) — with failovers actually exercised, recovery visible in the
fault log, and the throughput dip bounded.  ``BENCH_elastic.json``
captures both runs plus the failover accounting for CI diffing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ambit.engine import AmbitConfig, AmbitEngine
from repro.analysis.tables import ResultTable
from repro.cluster import ClusterFrontend, ShardRouter, kill_revive_schedule
from repro.database.bitmap_index import BitmapIndex
from repro.database.bitweaving import BitWeavingColumn
from repro.database.tables import ColumnTable
from repro.dram.device import DramDevice
from repro.service import BatchPolicy, BitmapConjunctionRequest, ScanRequest, poisson_schedule

from _bench_utils import emit, emit_json

NUM_SHARDS = 4
REPLICATION = 2
NUM_COLUMNS = 16
ROWS = 16384
CODE_BITS = 8
NUM_REQUESTS = 256
ARRIVAL_RATE_PER_S = 12e6        # past the 4-shard service rate: overload
MAX_BATCH = 32
MAX_QUEUE_DEPTH = 96
BANKS_PER_SHARD = 8
KILL_FRACTION = 0.25             # kill a quarter of the way into the stream
REVIVE_FRACTION = 0.85


def _build_requests(seed: int = 17):
    rng = np.random.default_rng(seed)
    columns = [
        BitWeavingColumn(rng.integers(0, 1 << CODE_BITS, size=ROWS), CODE_BITS)
        for _ in range(NUM_COLUMNS)
    ]
    table = ColumnTable("sales", ROWS)
    table.add_column("region", rng.integers(0, 8, size=ROWS), cardinality=8)
    table.add_column("status", rng.integers(0, 4, size=ROWS), cardinality=4)
    index = BitmapIndex(table, ["region", "status"])
    kinds = ("less_than", "less_equal", "equal", "between")
    requests = []
    for i in range(NUM_REQUESTS):
        if i % 4 == 3:
            # Every fourth request scatters across shards: the failover
            # path re-scatters these sub-conjunctions on a kill.
            requests.append(
                BitmapConjunctionRequest(
                    index=index,
                    predicates=(
                        ("region", tuple(sorted(set(map(int, rng.integers(0, 8, 2)))))),
                        ("status", (int(rng.integers(0, 4)),)),
                    ),
                )
            )
        else:
            column = columns[i % NUM_COLUMNS]
            kind = kinds[i % len(kinds)]
            if kind == "between":
                low = int(rng.integers(0, 100))
                requests.append(
                    ScanRequest(column=column, kind=kind, constants=(low, low + 64))
                )
            else:
                requests.append(
                    ScanRequest(
                        column=column, kind=kind,
                        constants=(int(rng.integers(0, 1 << CODE_BITS)),),
                    )
                )
    return requests, index


def _build_cluster(faults=None) -> ClusterFrontend:
    return ClusterFrontend(
        num_shards=NUM_SHARDS,
        router=ShardRouter(NUM_SHARDS, replication_factor=REPLICATION),
        engine_factory=lambda: AmbitEngine(
            DramDevice.ddr3(), AmbitConfig(banks_parallel=BANKS_PER_SHARD)
        ),
        policy=BatchPolicy(max_batch=MAX_BATCH, window_ns=None),
        max_queue_depth=MAX_QUEUE_DEPTH,
        faults=faults,
        # sanitize: every failover re-offer is certified by the
        # repro.verify failover lint alongside the usual plan checks.
        sanitize=True,
    )


def _expected_value(request, index):
    if isinstance(request, ScanRequest):
        expected, _ = request.column.scan(request.kind, *request.constants)
    else:
        expected, _ = index.evaluate_conjunction(list(request.predicates))
    return expected


def _mode_stats(result):
    metrics = result.metrics
    makespan_s = metrics.makespan_ns * 1e-9
    return {
        "offered": metrics.offered,
        "completed": metrics.completed,
        "rejected": metrics.rejected,
        "makespan_ms": metrics.makespan_ns / 1e6,
        "throughput_krps": (metrics.completed / makespan_s) / 1e3 if makespan_s else 0.0,
        "sojourn_p99_us": metrics.sojourn_p99_ns / 1e3,
    }


def _run_experiment():
    requests, index = _build_requests()
    events = lambda: poisson_schedule(requests, rate_per_s=ARRIVAL_RATE_PER_S, seed=19)

    healthy = _build_cluster()
    healthy_result = healthy.run(events())

    # Pin the fault window to the healthy run's observed span so the kill
    # lands mid-burst regardless of machine-independent model drift.
    span = healthy_result.metrics.makespan_ns
    kill_ns = KILL_FRACTION * span
    revive_ns = REVIVE_FRACTION * span
    plan = kill_revive_schedule([(1, kill_ns, revive_ns)])
    faulted = _build_cluster(faults=plan)
    faulted_result = faulted.run(events())

    return requests, index, healthy_result, faulted, faulted_result, plan, kill_ns


@pytest.mark.benchmark(group="elastic")
def test_failover_loses_nothing_under_overload(benchmark):
    requests, index, healthy_result, faulted, faulted_result, plan, kill_ns = (
        benchmark(_run_experiment)
    )
    healthy = _mode_stats(healthy_result)
    faulted_stats = _mode_stats(faulted_result)
    summary = faulted.elastic_summary()

    kill_log = [e for e in plan.log if e.action == "kill"]
    revive_log = [e for e in plan.log if e.action == "revive"]
    recovery_ns = (revive_log[0].at_ns - kill_log[0].at_ns) if revive_log else 0.0

    table = ResultTable(
        title=(
            f"Kill shard 1 of {NUM_SHARDS} (rf={REPLICATION}) under Poisson overload "
            f"({ARRIVAL_RATE_PER_S / 1e6:.0f} M req/s offered)"
        ),
        columns=[
            "mode", "completed", "rejected", "makespan_ms", "krps", "p99_sojourn_us",
        ],
    )
    for mode, stats in (("healthy", healthy), ("faulted", faulted_stats)):
        table.add_row(
            mode,
            stats["completed"],
            stats["rejected"],
            round(stats["makespan_ms"], 3),
            round(stats["throughput_krps"], 1),
            round(stats["sojourn_p99_us"], 1),
        )
    emit(table)
    emit(
        f"failovers={summary['failovers']} migrated records survived; "
        f"kill at {kill_ns / 1e3:.1f} us, recovery window {recovery_ns / 1e3:.1f} us"
    )

    throughput_ratio = (
        faulted_stats["throughput_krps"] / healthy["throughput_krps"]
        if healthy["throughput_krps"]
        else 0.0
    )
    lost = faulted_stats["offered"] - faulted_stats["completed"] - faulted_stats["rejected"]
    emit_json(
        "elastic",
        {
            "healthy": healthy,
            "faulted": faulted_stats,
            "kill_us": kill_ns / 1e3,
            "recovery_us": recovery_ns / 1e3,
            "lost_requests": lost,
            "failovers": summary["failovers"],
            "migrated_parts": summary["failovers"],
            "shard_failures": summary["shard_failures"],
            "shard_revivals": summary["shard_revivals"],
            "throughput_ratio": throughput_ratio,
        },
    )

    # Acceptance: the fault was real, and nothing was lost to it.
    assert faulted_result.metrics.shard_failures == 1
    assert faulted_result.metrics.shard_revivals == 1
    assert summary["failovers"] > 0, "the kill must land mid-burst"
    assert lost == 0
    assert faulted_stats["completed"] + faulted_stats["rejected"] == NUM_REQUESTS
    assert faulted_result.metrics.failover_failures == 0

    # With rf=2 and one dead shard, every request completes bit-exact
    # with the healthy run (admission may differ under overload only for
    # rejected requests — none here must be rejected for capacity either
    # way, since the queue depth covers the burst).
    healthy_by_seq = {r.seq: r for r in healthy_result.completed()}
    for record in faulted_result.completed():
        expected = _expected_value(record.request, index)
        assert np.array_equal(record.value, expected)
        twin = healthy_by_seq.get(record.seq)
        if twin is not None:
            assert np.array_equal(record.value, twin.value)

    # Post-failure recovery: the faulted run still moves the stream at a
    # bounded dip from healthy throughput.
    assert throughput_ratio > 0.5
