"""A2 — Where Tesseract's win comes from: bandwidth vs. the programming model.

Design-choice ablation from DESIGN.md: Tesseract couples (1) the raw
bandwidth of vault-local access with (2) non-blocking remote function calls
that move computation to data instead of pulling data across the network.
This ablation compares the full design against a variant that services
remote edges with blocking remote reads, isolating the contribution of the
communication interface.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import ResultTable
from repro.graph.algorithms import pagerank
from repro.graph.generators import erdos_renyi
from repro.graph.partition import partition_graph
from repro.stacked.hmc import StackedMemorySystem
from repro.tesseract.baseline import ConventionalGraphSystem
from repro.tesseract.runtime import TesseractSystem

from _bench_utils import emit

SCALE_FACTOR = 256


def _prepare():
    graph = erdos_renyi(1 << 16, avg_degree=16, seed=3)
    partition = partition_graph(graph, 512, vaults_per_cube=32, strategy="degree_balanced")
    _, profile = pagerank(graph, max_iterations=10)
    return graph, partition, profile.scaled(SCALE_FACTOR)


def _run_experiment(graph, partition, profile):
    baseline = ConventionalGraphSystem()
    with_rfc = TesseractSystem(StackedMemorySystem(num_stacks=16))
    without_rfc = TesseractSystem(
        StackedMemorySystem(num_stacks=16), use_remote_function_calls=False
    )
    host = baseline.execute(
        graph, profile, effective_num_vertices=graph.num_vertices * SCALE_FACTOR
    )
    full = with_rfc.execute(profile, partition)
    reads_only = without_rfc.execute(profile, partition)

    table = ResultTable(
        title="A2: PageRank on Tesseract with and without remote function calls",
        columns=["system", "time_ms", "speedup_vs_host"],
    )
    table.add_row("DDR3-OoO host", host.time_ns / 1e6, 1.0)
    table.add_row("Tesseract (remote reads)", reads_only.time_ns / 1e6, reads_only.speedup_over(host))
    table.add_row("Tesseract (remote function calls)", full.time_ns / 1e6, full.speedup_over(host))
    rfc_benefit = reads_only.time_ns / full.time_ns
    return table, full.speedup_over(host), reads_only.speedup_over(host), rfc_benefit


@pytest.mark.benchmark(group="A2-tesseract-rfc")
def test_a2_remote_function_call_contribution(benchmark):
    graph, partition, profile = _prepare()
    table, full_speedup, reads_speedup, rfc_benefit = benchmark.pedantic(
        _run_experiment, args=(graph, partition, profile), rounds=1, iterations=1
    )
    emit(table)
    emit(
        f"remote function calls contribute a {rfc_benefit:.1f}x improvement over "
        "blocking remote reads on the same hardware"
    )
    assert full_speedup > reads_speedup
    assert rfc_benefit > 1.3
