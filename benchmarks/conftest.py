"""Shared fixtures and reporting helpers for the benchmark harness.

Each benchmark module regenerates one experiment from DESIGN.md (E1–E8 and
the ablations A1–A3).  Benchmarks print the same rows/series the paper
reports and assert that the headline ratios fall in the expected band, so a
green benchmark run doubles as a reproduction check.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def emit(table_or_text) -> None:
    """Print a result table (or text) so it appears in the benchmark log."""
    text = table_or_text.render() if hasattr(table_or_text, "render") else str(table_or_text)
    print("\n" + text)


@pytest.fixture(scope="session")
def ddr3_ambit_system():
    """The Ambit configuration of the paper: DDR3-1600 with 8 banks used."""
    from repro.ambit.engine import AmbitConfig, AmbitEngine
    from repro.dram.device import DramDevice
    from repro.hostsim.cpu import HostCpu
    from repro.hostsim.gpu import HostGpu

    device = DramDevice.ddr3()
    return {
        "device": device,
        "ambit": AmbitEngine(device, AmbitConfig(banks_parallel=8)),
        "cpu": HostCpu(dram=device),
        "gpu": HostGpu(),
    }
